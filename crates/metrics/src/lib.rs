//! `qn-metrics` — the zero-dependency telemetry core.
//!
//! Serving "heavy traffic from millions of users" starts with being
//! able to *see* the server: request rates, error classes, queue
//! behaviour, latency percentiles. This crate is the measurement
//! substrate the rest of the workspace instruments against, built
//! under the same compat-shim discipline as everything else — **std
//! only**, no external crates, so it works in the offline build
//! environment and adds nothing to the dependency surface.
//!
//! # Design
//!
//! - **Lock-light.** Every metric operation ([`Counter::inc`],
//!   [`Gauge::add`], [`Histogram::observe`]) is a handful of relaxed
//!   atomic ops — no locks, no allocation, safe to call from any
//!   thread at any rate. The only mutex in the crate guards metric
//!   *registration* and exposition, which are cold paths.
//! - **Fixed-shape histograms.** [`Histogram`] buckets by base-2
//!   magnitude (bucket *i* holds values whose bit length is *i*, so
//!   bucket bounds are `[2^(i-1), 2^i - 1]`), 64 buckets covering all
//!   of `u64`. Percentiles (p50/p95/p99/p999) are estimated by rank
//!   interpolation inside the target bucket, with the bucket bounds
//!   clamped to the observed min/max — exact at the extremes and
//!   within one bucket's resolution (±50 %) everywhere else, which is
//!   plenty for latency work where percentiles differ by orders of
//!   magnitude.
//! - **Byte-stable exposition.** [`Registry::to_json`] emits a
//!   single-line JSON object with sorted keys and integer-only values
//!   (no float formatting), so identical metric states serialise to
//!   identical bytes on every platform — the property the stats tests
//!   and the `STATS` RPC lean on. [`Registry::to_prometheus`] renders
//!   the same state as Prometheus-style text for scrapers.
//!
//! # Determinism caveat
//!
//! Counters and gauges are exact and assertable; durations are
//! wall-clock and are **not** — tests pin counts and histogram
//! *shapes* (bucket boundaries, percentile math on synthetic values),
//! never the timings of real runs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Relaxed ordering everywhere: metrics need atomicity, not
/// synchronisation — readers tolerate being a few updates behind.
const ORD: Ordering = Ordering::Relaxed;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A free-standing counter (registry-less, for client-side use).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Count one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, ORD);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.value.load(ORD)
    }
}

/// An instantaneous level that can move both ways (in-flight requests,
/// cache residency).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A free-standing gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the level outright.
    pub fn set(&self, v: i64) {
        self.value.store(v, ORD);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, ORD);
    }

    /// Lower the level by `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, ORD);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(ORD)
    }
}

/// Number of base-2 magnitude buckets (all of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log₂ histogram of `u64` observations (latencies in
/// nanoseconds, sizes in bytes, …) with rank-interpolated percentile
/// estimation. All operations are lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Smallest observation (`u64::MAX` until the first observe).
    min: AtomicU64,
    /// Largest observation.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A free-standing histogram (registry-less, e.g. for a load
    /// generator's client-side latency tally).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a value lands in: its bit length (0 for 0),
    /// capped at the last bucket.
    pub fn bucket_index(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// The inclusive `[lo, hi]` value range of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            _ if i < HISTOGRAM_BUCKETS => (1u64 << (i - 1), (((1u128 << i) - 1) as u64)),
            _ => panic!("bucket index {i} out of range"),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, ORD);
        self.count.fetch_add(1, ORD);
        self.sum.fetch_add(v, ORD);
        self.min.fetch_min(v, ORD);
        self.max.fetch_max(v, ORD);
    }

    /// Record a duration in whole nanoseconds (saturating).
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(ORD)
    }

    /// Sum of all observations (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(ORD)
    }

    /// Smallest observation (0 while empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(ORD);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest observation (0 while empty).
    pub fn max(&self) -> u64 {
        self.max.load(ORD)
    }

    /// Raw bucket counts (index = [`Histogram::bucket_index`]).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(ORD))
    }

    /// Estimate the `pm`‰ quantile (`500` = p50, `999` = p999; values
    /// above 1000 clamp). The estimate is the rank-interpolated
    /// position inside the bucket holding the target rank, with the
    /// bucket's bounds clamped to the observed min/max:
    ///
    /// ```text
    /// target = max(1, ceil(count · pm / 1000))      (1-based rank)
    /// r      = target − (observations below the bucket)
    /// value  = lo + (hi − lo) · r / bucket_count
    /// ```
    ///
    /// Exact at the extremes (p0 → min-side, p100 → max) and
    /// deterministic on a quiesced histogram. Returns 0 while empty.
    pub fn quantile_per_mille(&self, pm: u32) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let pm = u128::from(pm.min(1000));
        let target = ((u128::from(count) * pm).div_ceil(1000).max(1)) as u64;
        let (min, max) = (self.min(), self.max());
        let mut below = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            let c = self.buckets[i].load(ORD);
            if c == 0 {
                continue;
            }
            if below + c >= target {
                let (bucket_lo, bucket_hi) = Self::bucket_bounds(i);
                // An occupied bucket always intersects [min, max].
                let lo = bucket_lo.max(min);
                let hi = bucket_hi.min(max);
                let r = target - below;
                return lo + ((u128::from(hi - lo) * u128::from(r)) / u128::from(c)) as u64;
            }
            below += c;
        }
        max // racing observers moved count past the buckets read
    }
}

/// The Arc'd handle kinds a registry hands out.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: base name, label pairs and the live handle.
#[derive(Debug, Clone)]
struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    /// Canonical exposition key: `name` or `name{k=v,k2=v2}` — also
    /// the identity registration dedupes on.
    key: String,
    metric: Metric,
}

/// A named collection of metrics with idempotent registration and
/// byte-stable exposition. Cheap to share behind an [`Arc`]; handles
/// stay valid (and lock-free) for the registry's lifetime.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

/// Build the canonical key for a name + label set: `name{k=v,...}`
/// with labels in the given order (callers keep a fixed order, so the
/// key — and the exposition byte stream — is stable).
fn canonical_key(name: &str, labels: &[(&str, &str)]) -> String {
    assert!(
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "metric name {name:?} must be non-empty [A-Za-z0-9_:]"
    );
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        assert!(
            !k.is_empty()
                && k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                && v.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "_-.:/ ".contains(c)),
            "label {k}={v:?} must be [A-Za-z0-9_]=[A-Za-z0-9_\\-.:/ ]"
        );
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push('=');
        key.push_str(v);
    }
    key.push('}');
    key
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Metric) -> Metric {
        let key = canonical_key(name, labels);
        let mut entries = self.entries.lock().expect("metrics registry lock");
        if let Some(e) = entries.iter().find(|e| e.key == key) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            key,
            metric: metric.clone(),
        });
        metric
    }

    /// The counter registered under `name` (created on first use;
    /// later calls return the same handle).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind, or
    /// is not a legal metric name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// A labelled counter, e.g. `counter_with("requests_total",
    /// &[("op", "encode")])`. See [`Registry::counter`].
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, labels, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!(
                "metric {name:?} is registered as a {}, not a counter",
                other.kind()
            ),
        }
    }

    /// The gauge registered under `name`. See [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// A labelled gauge. See [`Registry::counter`].
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, labels, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!(
                "metric {name:?} is registered as a {}, not a gauge",
                other.kind()
            ),
        }
    }

    /// The histogram registered under `name`. See [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// A labelled histogram. See [`Registry::counter`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.register(name, labels, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            other => panic!(
                "metric {name:?} is registered as a {}, not a histogram",
                other.kind()
            ),
        }
    }

    /// Registered metric count (all kinds).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("metrics registry lock").len()
    }

    /// Whether nothing is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries sorted by canonical key — the one ordering every
    /// exposition format uses.
    fn sorted_entries(&self) -> Vec<Entry> {
        let mut entries = self.entries.lock().expect("metrics registry lock").clone();
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        entries
    }

    /// Single-line JSON with sorted keys and integer-only values:
    ///
    /// ```text
    /// {"counters":{"requests_total{op=encode}":5,...},
    ///  "gauges":{"inflight":0,...},
    ///  "histograms":{"latency_ns{op=encode}":
    ///     {"count":5,"sum":123,"min":2,"max":80,
    ///      "p50":12,"p95":71,"p99":79,"p999":80},...}}
    /// ```
    ///
    /// Byte-stable: the same metric state always serialises to the
    /// same bytes (keys sorted, no floats, no timestamps).
    pub fn to_json(&self) -> String {
        let entries = self.sorted_entries();
        let mut out = String::with_capacity(256 + entries.len() * 48);
        out.push('{');
        for (section, kind) in [
            ("counters", "counter"),
            ("gauges", "gauge"),
            ("histograms", "histogram"),
        ] {
            if !out.ends_with('{') {
                out.push(',');
            }
            out.push('"');
            out.push_str(section);
            out.push_str("\":{");
            let mut first = true;
            for e in entries.iter().filter(|e| e.metric.kind() == kind) {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push('"');
                out.push_str(&e.key); // key charset needs no JSON escaping
                out.push_str("\":");
                match &e.metric {
                    Metric::Counter(c) => out.push_str(&c.get().to_string()),
                    Metric::Gauge(g) => out.push_str(&g.get().to_string()),
                    Metric::Histogram(h) => {
                        let count = h.count();
                        out.push_str(&format!(
                            "{{\"count\":{count},\"sum\":{},\"min\":{},\"max\":{},\
                             \"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
                            h.sum(),
                            h.min(),
                            h.max(),
                            h.quantile_per_mille(500),
                            h.quantile_per_mille(950),
                            h.quantile_per_mille(990),
                            h.quantile_per_mille(999),
                        ));
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Prometheus-style text exposition: `# TYPE` lines per family,
    /// labelled samples, histograms as cumulative `_bucket{le=...}`
    /// series (occupied buckets plus `+Inf`) with `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let entries = self.sorted_entries();
        let mut out = String::with_capacity(256 + entries.len() * 96);
        let mut last_family = String::new();
        for e in &entries {
            if e.name != last_family {
                out.push_str("# TYPE ");
                out.push_str(&e.name);
                out.push(' ');
                out.push_str(e.metric.kind());
                out.push('\n');
                last_family.clone_from(&e.name);
            }
            let labels = |extra: Option<(&str, String)>| -> String {
                let mut pairs: Vec<String> = e
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect();
                if let Some((k, v)) = extra {
                    pairs.push(format!("{k}=\"{v}\""));
                }
                if pairs.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", pairs.join(","))
                }
            };
            match &e.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", e.name, labels(None), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{}{} {}\n", e.name, labels(None), g.get()));
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let (_, hi) = Histogram::bucket_bounds(i);
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            e.name,
                            labels(Some(("le", hi.to_string())))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {cum}\n",
                        e.name,
                        labels(Some(("le", "+Inf".to_string())))
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", e.name, labels(None), h.sum()));
                    out.push_str(&format!("{}_count{} {}\n", e.name, labels(None), h.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_and_stay_monotonic() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauges_move_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), -2);
        g.set(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Hand-computed: bucket i holds exactly the values with bit
        // length i.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(10), (512, 1023));
        assert_eq!(Histogram::bucket_bounds(63), (1 << 62, u64::MAX >> 1));
        // Every boundary pair is adjacent and exhaustive.
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, _) = Histogram::bucket_bounds(i);
            let (_, prev_hi) = Histogram::bucket_bounds(i - 1);
            assert_eq!(
                lo,
                prev_hi + 1,
                "bucket {i} must start after bucket {}",
                i - 1
            );
            assert_eq!(Histogram::bucket_index(lo), i);
            let (_, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(hi), i);
        }
    }

    #[test]
    fn percentiles_of_1_to_100_are_exact_fixtures() {
        // Hand-computed fixture: observing 1..=100, the clamped
        // rank-interpolation lands exactly on pN = N for the pinned
        // quantiles. Worked example for p50: target rank 50 falls in
        // bucket [32,63] with 32 items and 31 items below, so
        // 32 + (63−32)·(50−31)/32 = 32 + 18 = 50.
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.quantile_per_mille(500), 50);
        assert_eq!(h.quantile_per_mille(950), 95);
        assert_eq!(h.quantile_per_mille(990), 99);
        assert_eq!(h.quantile_per_mille(999), 100);
        assert_eq!(h.quantile_per_mille(1000), 100);
        // Clamping: quantiles above 1000‰ behave as 1000‰.
        assert_eq!(h.quantile_per_mille(5000), 100);
    }

    #[test]
    fn percentile_edge_cases_are_pinned() {
        // Empty → 0 everywhere.
        let h = Histogram::new();
        assert_eq!(h.quantile_per_mille(500), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);

        // A single value is every percentile.
        let h = Histogram::new();
        h.observe(7777);
        for pm in [1, 500, 990, 999, 1000] {
            assert_eq!(h.quantile_per_mille(pm), 7777);
        }

        // Repeats of one value: min/max clamping collapses the bucket.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.observe(300);
        }
        assert_eq!(h.quantile_per_mille(500), 300);
        assert_eq!(h.quantile_per_mille(999), 300);

        // Bimodal: p50 stays in the low mode, p999 reaches the high
        // one. 99 × 10 plus 1 × 1_000_000: rank 50 interpolates to
        // 10 + (15−10)·50/99 = 12 inside the clamped [10,15] bucket
        // (within-bucket resolution), rank 100 is the huge value.
        let h = Histogram::new();
        for _ in 0..99 {
            h.observe(10);
        }
        h.observe(1_000_000);
        assert_eq!(h.quantile_per_mille(500), 12);
        assert_eq!(h.quantile_per_mille(999), 1_000_000);

        // Zero observations land in the zero bucket.
        let h = Histogram::new();
        h.observe(0);
        h.observe(0);
        assert_eq!(h.quantile_per_mille(500), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_handles_are_idempotent_and_kind_checked() {
        let r = Registry::new();
        let a = r.counter_with("requests_total", &[("op", "encode")]);
        let b = r.counter_with("requests_total", &[("op", "encode")]);
        a.inc();
        assert_eq!(b.get(), 1, "same key must return the same handle");
        assert_eq!(r.len(), 1);
        let other = r.counter_with("requests_total", &[("op", "decode")]);
        assert_eq!(other.get(), 0, "different labels are a different series");
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics_at_registration() {
        let r = Registry::new();
        let _ = r.counter("x_total");
        let _ = r.gauge("x_total");
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn illegal_metric_names_are_rejected() {
        let r = Registry::new();
        let _ = r.counter("bad name with spaces");
    }

    #[test]
    fn json_is_byte_stable_and_sorted_at_fixed_inputs() {
        let build = || {
            let r = Registry::new();
            // Registered in scrambled order: exposition must sort.
            r.counter_with("zz_total", &[]).add(3);
            r.gauge("inflight").set(2);
            r.counter_with("requests_total", &[("op", "encode")]).add(7);
            r.counter_with("requests_total", &[("op", "decode")]).add(1);
            let h = r.histogram_with("latency_ns", &[("op", "encode")]);
            for v in 1..=100 {
                h.observe(v);
            }
            r
        };
        let json = build().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"requests_total{op=decode}\":1,\
             \"requests_total{op=encode}\":7,\"zz_total\":3},\
             \"gauges\":{\"inflight\":2},\
             \"histograms\":{\"latency_ns{op=encode}\":\
             {\"count\":100,\"sum\":5050,\"min\":1,\"max\":100,\
             \"p50\":50,\"p95\":95,\"p99\":99,\"p999\":100}}}"
        );
        // Two identical states serialise to identical bytes.
        assert_eq!(build().to_json(), json);
    }

    #[test]
    fn prometheus_exposition_carries_types_labels_and_cumulative_buckets() {
        let r = Registry::new();
        r.counter_with("requests_total", &[("op", "encode")]).add(5);
        r.gauge("inflight").set(1);
        let h = r.histogram("latency_ns");
        h.observe(3); // bucket [2,3]
        h.observe(3);
        h.observe(900); // bucket [512,1023]
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE requests_total counter"), "{text}");
        assert!(text.contains("requests_total{op=\"encode\"} 5"), "{text}");
        assert!(text.contains("# TYPE inflight gauge"), "{text}");
        assert!(text.contains("inflight 1"), "{text}");
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"3\"} 2"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"1023\"} 3"), "{text}");
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("latency_ns_sum 906"), "{text}");
        assert!(text.contains("latency_ns_count 3"), "{text}");
    }

    #[test]
    fn concurrent_observers_never_lose_counts() {
        let r = Arc::new(Registry::new());
        let c = r.counter("hits_total");
        let h = r.histogram("lat_ns");
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let (c, h) = (Arc::clone(&c), Arc::clone(&h));
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8000);
    }

    #[test]
    fn durations_observe_as_nanoseconds() {
        let h = Histogram::new();
        h.observe_duration(Duration::from_nanos(1500));
        assert_eq!(h.sum(), 1500);
        assert_eq!(h.count(), 1);
        // Saturation far beyond u64 nanoseconds.
        h.observe_duration(Duration::from_secs(u64::MAX / 1000));
        assert_eq!(h.max(), u64::MAX);
    }
}
