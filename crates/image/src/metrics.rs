//! Image-quality metrics, including the paper's accuracy definition.

use crate::image::GrayImage;

/// Mean squared error between two images.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn mse(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "mse: image dimensions differ"
    );
    if a.is_empty() {
        return 0.0;
    }
    a.pixels()
        .iter()
        .zip(b.pixels())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        / a.len() as f64
}

/// Peak signal-to-noise ratio in dB (peak = 1.0). Returns `f64::INFINITY`
/// for identical images.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    let m = mse(a, b);
    if m == 0.0 {
        return f64::INFINITY;
    }
    -10.0 * m.log10()
}

/// Global SSIM (single window covering the whole image — appropriate for
/// the tiny 4×4…16×16 images in this workspace).
///
/// # Panics
/// Panics on dimension mismatch.
pub fn ssim(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "ssim: image dimensions differ"
    );
    let n = a.len() as f64;
    if n == 0.0 {
        return 1.0;
    }
    let mean = |img: &GrayImage| img.pixels().iter().sum::<f64>() / n;
    let mu_a = mean(a);
    let mu_b = mean(b);
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for (&x, &y) in a.pixels().iter().zip(b.pixels()) {
        var_a += (x - mu_a) * (x - mu_a);
        var_b += (y - mu_b) * (y - mu_b);
        cov += (x - mu_a) * (y - mu_b);
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    // Standard stabilisation constants for dynamic range 1.0.
    let c1 = 0.01_f64.powi(2);
    let c2 = 0.03_f64.powi(2);
    ((2.0 * mu_a * mu_b + c1) * (2.0 * cov + c2))
        / ((mu_a * mu_a + mu_b * mu_b + c1) * (var_a + var_b + c2))
}

/// The paper's accuracy (Eq. 10): the fraction of pixel positions where
/// `|x̂ − x| ≤ tol` (paper uses `tol = 0.01`), as a percentage. The paper
/// applies its snap adjustment (≤0.01→0, ≥0.99→1) to the reconstruction
/// before counting; pass the output of [`GrayImage::snapped`] to follow
/// §IV-B exactly.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn pixel_accuracy(reconstruction: &GrayImage, target: &GrayImage, tol: f64) -> f64 {
    assert_eq!(
        (reconstruction.width(), reconstruction.height()),
        (target.width(), target.height()),
        "accuracy: image dimensions differ"
    );
    if reconstruction.is_empty() {
        return 100.0;
    }
    let similar = reconstruction
        .pixels()
        .iter()
        .zip(target.pixels())
        .filter(|(x, y)| (*x - *y).abs() <= tol)
        .count();
    similar as f64 / reconstruction.len() as f64 * 100.0
}

/// Mean accuracy over a dataset (Eq. 10 averaged over the M samples).
///
/// # Panics
/// Panics on length or dimension mismatch.
pub fn mean_pixel_accuracy(reconstructions: &[GrayImage], targets: &[GrayImage], tol: f64) -> f64 {
    assert_eq!(
        reconstructions.len(),
        targets.len(),
        "accuracy: sample counts differ"
    );
    if reconstructions.is_empty() {
        return 100.0;
    }
    reconstructions
        .iter()
        .zip(targets)
        .map(|(r, t)| pixel_accuracy(r, t, tol))
        .sum::<f64>()
        / reconstructions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(pixels: &[f64]) -> GrayImage {
        GrayImage::from_pixels(pixels.len(), 1, pixels.to_vec()).unwrap()
    }

    #[test]
    fn mse_and_psnr_basics() {
        let a = img(&[0.0, 1.0]);
        let b = img(&[0.0, 1.0]);
        assert_eq!(mse(&a, &b), 0.0);
        assert_eq!(psnr(&a, &b), f64::INFINITY);
        let c = img(&[0.5, 1.0]);
        assert!((mse(&a, &c) - 0.125).abs() < 1e-15);
        assert!((psnr(&a, &c) - (-10.0 * 0.125_f64.log10())).abs() < 1e-12);
    }

    #[test]
    fn ssim_bounds_and_identity() {
        let a = img(&[0.1, 0.9, 0.4, 0.6]);
        assert!((ssim(&a, &a) - 1.0).abs() < 1e-12);
        let b = img(&[0.9, 0.1, 0.6, 0.4]); // anti-correlated
        assert!(ssim(&a, &b) < 0.5);
    }

    #[test]
    fn psnr_of_identical_images_is_the_infinity_sentinel() {
        // The documented sentinel for a lossless reconstruction is
        // +∞ (not NaN, not a large finite cap): the eval harness maps
        // it to its JSON sentinel and relies on `is_infinite()`.
        let a = img(&[0.0, 0.25, 0.5, 0.75, 1.0]);
        let p = psnr(&a, &a.clone());
        assert!(p.is_infinite() && p > 0.0);
        // One ulp of difference must already be finite.
        let mut b = a.clone();
        b.pixels_mut()[2] = 0.5 + 1e-9;
        assert!(psnr(&a, &b).is_finite());
        assert!(psnr(&a, &b) > 150.0);
    }

    #[test]
    fn ssim_is_stable_on_constant_images() {
        // Zero variance and zero covariance: only the stabilisation
        // constants keep the ratio defined. Identical constants → 1.
        let a = img(&[0.5; 6]);
        assert!((ssim(&a, &a.clone()) - 1.0).abs() < 1e-15);
        let zero = img(&[0.0; 6]);
        assert!((ssim(&zero, &zero.clone()) - 1.0).abs() < 1e-15);
        // Different constants: finite, in (0, 1), and exactly the
        // luminance term 0.4201/0.5801 (contrast term cancels to 1).
        let b = img(&[0.3; 6]);
        let c = img(&[0.7; 6]);
        let s = ssim(&b, &c);
        assert!(s.is_finite());
        assert!((s - 0.4201 / 0.5801).abs() < 1e-12, "ssim {s}");
    }

    #[test]
    fn ssim_known_value_fixtures() {
        // Hand-computed through the global-SSIM definition with
        // c1 = 1e-4, c2 = 9e-4 — these pin the eval subsystem's SSIM
        // numbers at the metric level.
        //
        // a = [0, 1], b = [0, 0.5]: μa = 0.5, μb = 0.25, σa² = 0.25,
        // σb² = 0.0625, cov = 0.125 →
        //   (0.2501·0.2509)/(0.3126·0.3134) = 0.06275009/0.09796884.
        let a = img(&[0.0, 1.0]);
        let b = img(&[0.0, 0.5]);
        assert!((ssim(&a, &b) - 0.06275009 / 0.09796884).abs() < 1e-12);
        assert!((ssim(&a, &b) - 0.640_510_7).abs() < 1e-6);
        // Orthogonal patterns (cov = 0), equal means and variances:
        //   (0.5001·0.0009)/(0.5001·0.1259) = 0.0009/0.1259.
        let c = img(&[0.25, 0.75, 0.25, 0.75]);
        let d = img(&[0.25, 0.25, 0.75, 0.75]);
        assert!((ssim(&c, &d) - 0.0009 / 0.1259).abs() < 1e-12);
        assert!((ssim(&c, &d) - 0.007_148_5).abs() < 1e-6);
        // Symmetry holds on both fixtures.
        assert_eq!(ssim(&a, &b), ssim(&b, &a));
        assert_eq!(ssim(&c, &d), ssim(&d, &c));
    }

    #[test]
    fn paper_accuracy_counts_close_pixels() {
        let target = img(&[0.0, 1.0, 1.0, 0.0]);
        let recon = img(&[0.005, 0.995, 0.5, 0.0]);
        // With the paper's snap rule the first two become exact.
        let snapped = recon.snapped();
        let acc = pixel_accuracy(&snapped, &target, 0.01);
        assert!((acc - 75.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_reconstruction_is_100_percent() {
        let t = img(&[0.0, 1.0, 1.0]);
        assert_eq!(pixel_accuracy(&t, &t, 0.01), 100.0);
    }

    #[test]
    fn mean_accuracy_averages() {
        let t = img(&[0.0, 1.0]);
        let perfect = t.clone();
        let half = img(&[0.0, 0.5]);
        let acc = mean_pixel_accuracy(&[perfect, half], &[t.clone(), t], 0.01);
        assert!((acc - 75.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn dimension_mismatch_panics() {
        mse(&img(&[0.0]), &img(&[0.0, 1.0]));
    }
}
