//! Noise injection for robustness experiments.

use crate::image::GrayImage;
use rand::Rng;

/// Flip each pixel to 0 or 1 with probability `p` (half salt, half
/// pepper). Standard corruption model for binary images.
pub fn salt_and_pepper(img: &GrayImage, p: f64, rng: &mut impl Rng) -> GrayImage {
    let mut out = img.clone();
    for px in out.pixels_mut() {
        let r: f64 = rng.random();
        if r < p / 2.0 {
            *px = 0.0;
        } else if r < p {
            *px = 1.0;
        }
    }
    out
}

/// Add iid Gaussian noise with standard deviation `sigma`, clamped back to
/// `[0, 1]`.
pub fn gaussian(img: &GrayImage, sigma: f64, rng: &mut impl Rng) -> GrayImage {
    let mut out = img.clone();
    for px in out.pixels_mut() {
        // Box–Muller (rand_distr is outside the allowed dependency set).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        *px = (*px + sigma * z).clamp(0.0, 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_img() -> GrayImage {
        GrayImage::from_pixels(8, 8, vec![0.5; 64]).unwrap()
    }

    #[test]
    fn zero_probability_is_identity() {
        let img = test_img();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(salt_and_pepper(&img, 0.0, &mut rng), img);
    }

    #[test]
    fn full_probability_binarises() {
        let img = test_img();
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = salt_and_pepper(&img, 1.0, &mut rng);
        assert!(noisy.is_binary(0.0));
        // Both salt and pepper appear.
        assert!(noisy.pixels().contains(&0.0));
        assert!(noisy.pixels().contains(&1.0));
    }

    #[test]
    fn gaussian_noise_stays_in_range_and_is_seeded() {
        let img = test_img();
        let mut rng = StdRng::seed_from_u64(3);
        let a = gaussian(&img, 0.3, &mut rng);
        assert!(a.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
        let mut rng2 = StdRng::seed_from_u64(3);
        let b = gaussian(&img, 0.3, &mut rng2);
        assert_eq!(a, b);
        // Noise actually changed something.
        assert_ne!(a, img);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let img = test_img();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gaussian(&img, 0.0, &mut rng), img);
    }
}
