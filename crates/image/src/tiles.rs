//! Tiling large images into fixed-size patches.
//!
//! The paper's network operates on N = 16 amplitudes (4×4 images), yet
//! its introduction motivates "large-scale image data". The standard
//! bridge — identical to how JPEG applies an 8×8 transform — is tiling:
//! split a big image into 4×4 patches, push every patch through the
//! trained autoencoder, and stitch the reconstructions back together.
//! [`tile`]/[`untile`] implement that bridge losslessly (edge tiles are
//! zero-padded and cropped back).

use crate::image::GrayImage;

/// A tiling of an image into `tile_size × tile_size` patches, remembering
/// the original dimensions for reassembly.
#[derive(Debug, Clone)]
pub struct Tiling {
    /// Patches in row-major tile order, each `tile_size × tile_size`.
    pub tiles: Vec<GrayImage>,
    /// Patch edge length.
    pub tile_size: usize,
    /// Original image width.
    pub width: usize,
    /// Original image height.
    pub height: usize,
    /// Tiles per row.
    pub tiles_x: usize,
    /// Tiles per column.
    pub tiles_y: usize,
}

/// Split an image into `tile_size × tile_size` patches (zero-padding the
/// right/bottom edges when dimensions are not multiples of the tile size).
///
/// # Panics
/// Panics when `tile_size == 0`.
pub fn tile(img: &GrayImage, tile_size: usize) -> Tiling {
    assert!(tile_size > 0, "tile size must be positive");
    let tiles_x = img.width().div_ceil(tile_size).max(1);
    let tiles_y = img.height().div_ceil(tile_size).max(1);
    let src = img.pixels();
    let mut tiles = Vec::with_capacity(tiles_x * tiles_y);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let mut patch = GrayImage::zeros(tile_size, tile_size);
            let x0 = tx * tile_size;
            let y0 = ty * tile_size;
            // Rows are contiguous in both the image and the patch, so
            // interior tiles copy whole spans; edge tiles copy the
            // clipped prefix and leave the zero padding untouched.
            let span_w = tile_size.min(img.width().saturating_sub(x0));
            let span_h = tile_size.min(img.height().saturating_sub(y0));
            let dst = patch.pixels_mut();
            for py in 0..span_h {
                let s = (y0 + py) * img.width() + x0;
                let d = py * tile_size;
                dst[d..d + span_w].copy_from_slice(&src[s..s + span_w]);
            }
            tiles.push(patch);
        }
    }
    Tiling {
        tiles,
        tile_size,
        width: img.width(),
        height: img.height(),
        tiles_x,
        tiles_y,
    }
}

/// Reassemble an image from (possibly transformed) patches. The patch
/// list must have the layout produced by [`tile`]; padding is cropped.
///
/// # Panics
/// Panics when the patch count or patch dimensions disagree with the
/// tiling metadata.
pub fn untile(tiling: &Tiling, patches: &[GrayImage]) -> GrayImage {
    assert_eq!(
        patches.len(),
        tiling.tiles_x * tiling.tiles_y,
        "patch count mismatch"
    );
    let ts = tiling.tile_size;
    let mut out = GrayImage::zeros(tiling.width, tiling.height);
    let dst = out.pixels_mut();
    for (idx, patch) in patches.iter().enumerate() {
        assert_eq!(
            (patch.width(), patch.height()),
            (ts, ts),
            "patch {idx} has wrong dimensions"
        );
        let x0 = (idx % tiling.tiles_x) * ts;
        let y0 = (idx / tiling.tiles_x) * ts;
        // Mirror of `tile`: whole-row spans for interior tiles, clipped
        // spans at the right/bottom edges (padding is cropped away).
        let span_w = ts.min(tiling.width.saturating_sub(x0));
        let span_h = ts.min(tiling.height.saturating_sub(y0));
        let src = patch.pixels();
        for py in 0..span_h {
            let d = (y0 + py) * tiling.width + x0;
            let s = py * ts;
            dst[d..d + span_w].copy_from_slice(&src[s..s + span_w]);
        }
    }
    out
}

/// Apply a patch transformation to every tile and reassemble — the
/// "compress each block" pattern in one call. Patches whose transform
/// fails (e.g. all-zero patches that cannot be amplitude-encoded) pass
/// through unchanged.
pub fn map_tiles(
    img: &GrayImage,
    tile_size: usize,
    mut f: impl FnMut(&GrayImage) -> Option<GrayImage>,
) -> GrayImage {
    let tiling = tile(img, tile_size);
    let patches: Vec<GrayImage> = tiling
        .tiles
        .iter()
        .map(|p| f(p).unwrap_or_else(|| p.clone()))
        .collect();
    untile(&tiling, &patches)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_image(w: usize, h: usize) -> GrayImage {
        let mut img = GrayImage::zeros(w, h);
        for y in 0..h {
            for x in 0..w {
                img.set(x, y, ((x + y) as f64) / ((w + h) as f64));
            }
        }
        img
    }

    #[test]
    fn tile_untile_is_identity_on_aligned_sizes() {
        let img = gradient_image(8, 8);
        let t = tile(&img, 4);
        assert_eq!(t.tiles.len(), 4);
        assert_eq!((t.tiles_x, t.tiles_y), (2, 2));
        let back = untile(&t, &t.tiles);
        assert_eq!(back, img);
    }

    #[test]
    fn tile_untile_handles_unaligned_sizes() {
        let img = gradient_image(10, 7);
        let t = tile(&img, 4);
        assert_eq!((t.tiles_x, t.tiles_y), (3, 2));
        let back = untile(&t, &t.tiles);
        assert_eq!(back, img); // padding cropped away
    }

    #[test]
    fn tiles_cover_disjoint_regions() {
        let mut img = GrayImage::zeros(8, 4);
        img.set(5, 1, 1.0); // lives in tile (1, 0)
        let t = tile(&img, 4);
        assert_eq!(t.tiles[0].pixels().iter().sum::<f64>(), 0.0);
        assert_eq!(t.tiles[1].get(1, 1), 1.0);
    }

    #[test]
    fn map_tiles_applies_transform() {
        let img = gradient_image(8, 8);
        let inverted = map_tiles(&img, 4, |p| {
            let inv: Vec<f64> = p.pixels().iter().map(|v| 1.0 - v).collect();
            Some(GrayImage::from_pixels(4, 4, inv).expect("4x4"))
        });
        for (a, b) in inverted.pixels().iter().zip(img.pixels()) {
            assert!((a - (1.0 - b)).abs() < 1e-15);
        }
    }

    #[test]
    fn map_tiles_falls_back_on_failure() {
        let img = gradient_image(4, 4);
        let same = map_tiles(&img, 4, |_| None);
        assert_eq!(same, img);
    }

    #[test]
    #[should_panic(expected = "patch count mismatch")]
    fn untile_validates_count() {
        let img = gradient_image(8, 8);
        let t = tile(&img, 4);
        untile(&t, &t.tiles[..2]);
    }

    #[test]
    #[should_panic(expected = "tile size must be positive")]
    fn zero_tile_size_rejected() {
        tile(&gradient_image(4, 4), 0);
    }
}
