//! Image substrate: containers, datasets, metrics, and IO.
//!
//! The paper evaluates on 25 binary 4×4 images (never published). This
//! crate supplies a deterministic substitute with the same dimensions and
//! cardinality — see [`datasets`] — plus seeded generators for scaling
//! studies, the paper's accuracy metric (Eq. 10), standard image metrics
//! (MSE/PSNR/SSIM), PGM/PBM file IO and ASCII terminal rendering.

pub mod ascii;
pub mod datasets;
pub mod image;
pub mod metrics;
pub mod noise;
pub mod pgm;
pub mod tiles;

pub use image::GrayImage;
