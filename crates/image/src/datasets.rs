//! Deterministic image datasets.
//!
//! The paper trains on "25 binary images … 4×4-dimensional" but never
//! publishes them. Compressing 16-dimensional amplitude vectors into a
//! 4-dimensional subspace *losslessly* is only possible when the sample
//! set spans (close to) 4 dimensions, so the canonical replacement set is
//! built around a rank-4 core:
//!
//! - the 15 non-empty unions of the four disjoint 2×2 quadrant blocks
//!   (disjoint supports make unions *linear* sums, so these span exactly
//!   a 4-dimensional pixel subspace), plus
//! - 10 structured glyphs (stripes, checker, X, …) that add controlled
//!   off-subspace energy — which is why the trained loss is small but not
//!   zero, matching the paper's observed `min L_C = 0.017`.
//!
//! Seeded generators for other sizes/ranks support the scaling and
//! robustness experiments.

use crate::image::GrayImage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four disjoint 2×2 quadrant blocks of a 4×4 image.
fn quadrants() -> [GrayImage; 4] {
    [
        GrayImage::from_glyph(&["##..", "##..", "....", "...."]).expect("static glyph"),
        GrayImage::from_glyph(&["..##", "..##", "....", "...."]).expect("static glyph"),
        GrayImage::from_glyph(&["....", "....", "##..", "##.."]).expect("static glyph"),
        GrayImage::from_glyph(&["....", "....", "..##", "..##"]).expect("static glyph"),
    ]
}

/// Union (pixel-wise max) of binary images.
fn union(imgs: &[&GrayImage]) -> GrayImage {
    let mut out = imgs[0].clone();
    for img in &imgs[1..] {
        for (o, &p) in out.pixels_mut().iter_mut().zip(img.pixels()) {
            *o = o.max(p);
        }
    }
    out
}

/// The 15 non-empty quadrant unions — an exactly rank-4 binary family.
pub fn quadrant_unions() -> Vec<GrayImage> {
    let q = quadrants();
    let mut out = Vec::with_capacity(15);
    for mask in 1u32..16 {
        let parts: Vec<&GrayImage> = (0..4)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &q[i])
            .collect();
        out.push(union(&parts));
    }
    out
}

/// Ten structured 4×4 glyphs with energy outside the quadrant subspace.
pub fn structured_glyphs() -> Vec<GrayImage> {
    [
        ["#...", "#...", "#...", "#..."], // left bar
        ["...#", "...#", "...#", "...#"], // right bar
        ["####", "....", "....", "...."], // top row
        ["....", "....", "....", "####"], // bottom row
        ["#..#", ".##.", ".##.", "#..#"], // X
        ["####", "#..#", "#..#", "####"], // border
        ["#.#.", ".#.#", "#.#.", ".#.#"], // checker
        [".#.#", "#.#.", ".#.#", "#.#."], // inverse checker
        ["####", "####", "....", "####"], // missing third row
        [".##.", ".##.", ".##.", ".##."], // central column pair
    ]
    .iter()
    .map(|rows| GrayImage::from_glyph(rows).expect("static glyph"))
    .collect()
}

/// The canonical paper-regime dataset: `m` binary 4×4 images from the
/// quadrant-union family (so `m = 25` reproduces the paper's sample count
/// exactly). The first 15 samples are the distinct unions; further
/// samples re-draw from the family with a fixed seed (only 15 distinct
/// members exist). The whole set spans **exactly** a 4-dimensional pixel
/// subspace, which is the precondition for the paper's observed near-zero
/// losses and ≥97 % accuracy with `d = 4` — see `DESIGN.md`.
pub fn paper_binary_16(m: usize) -> Vec<GrayImage> {
    let pool = quadrant_unions();
    if m <= pool.len() {
        return pool[..m].to_vec();
    }
    let mut out = pool.clone();
    let mut rng = StdRng::seed_from_u64(0x5153_4e31); // fixed: "QSN1"
    while out.len() < m {
        let idx = rng.random_range(0..pool.len());
        out.push(pool[idx].clone());
    }
    out
}

/// The *hard* variant: the 15 quadrant unions plus the 10 structured
/// glyphs, whose off-subspace energy (~14 %) makes lossless `d = 4`
/// compression impossible. Used by the difficulty/robustness ablation to
/// show how accuracy degrades with dataset incompressibility; for
/// `m > 25` the list cycles.
pub fn paper_binary_16_hard(m: usize) -> Vec<GrayImage> {
    let mut pool = quadrant_unions();
    pool.extend(structured_glyphs());
    (0..m).map(|i| pool[i % pool.len()].clone()).collect()
}

/// Random binary images of the given size with on-pixel probability
/// `density`, fully determined by `seed`.
pub fn random_binary(
    m: usize,
    width: usize,
    height: usize,
    density: f64,
    seed: u64,
) -> Vec<GrayImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let pixels = (0..width * height)
                .map(|_| {
                    if rng.random::<f64>() < density {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            GrayImage::from_pixels(width, height, pixels).expect("length by construction")
        })
        .collect()
}

/// Binary images of exactly rank ≤ `rank`: random unions of `rank`
/// disjoint base patterns that tile the image. Used by experiments that
/// need *perfectly* compressible data.
pub fn low_rank_binary(
    m: usize,
    width: usize,
    height: usize,
    rank: usize,
    seed: u64,
) -> Vec<GrayImage> {
    assert!(rank >= 1, "rank must be ≥ 1");
    let n = width * height;
    assert!(rank <= n, "rank cannot exceed pixel count");
    let mut rng = StdRng::seed_from_u64(seed);
    // Partition pixel indices into `rank` contiguous chunks (disjoint
    // supports ⇒ unions are linear sums ⇒ rank ≤ `rank`). The on/off mask
    // is a Vec<bool> so any rank — including ≥ 64 — is supported.
    let chunk = n.div_ceil(rank);
    (0..m)
        .map(|_| {
            // Avoid the empty image: redraw until at least one block is on.
            let mut mask = vec![false; rank];
            while !mask.iter().any(|&b| b) {
                for b in &mut mask {
                    *b = rng.random::<bool>();
                }
            }
            let pixels = (0..n)
                .map(|p| {
                    let block = (p / chunk).min(rank - 1);
                    if mask[block] {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            GrayImage::from_pixels(width, height, pixels).expect("length by construction")
        })
        .collect()
}

/// Grayscale gradient/blob images (non-binary), for the grayscale
/// generalisation experiments.
pub fn grayscale_blobs(m: usize, width: usize, height: usize, seed: u64) -> Vec<GrayImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let cx = rng.random::<f64>() * width as f64;
            let cy = rng.random::<f64>() * height as f64;
            let sigma = 0.5 + rng.random::<f64>() * (width.max(height) as f64 / 2.0);
            let pixels = (0..width * height)
                .map(|p| {
                    let x = (p % width) as f64;
                    let y = (p / width) as f64;
                    let d2 = (x - cx).powi(2) + (y - cy).powi(2);
                    (-d2 / (2.0 * sigma * sigma)).exp()
                })
                .collect();
            GrayImage::from_pixels(width, height, pixels).expect("length by construction")
        })
        .collect()
}

/// Stack a dataset into a data matrix: one image per row, `M × N`.
pub fn to_matrix(images: &[GrayImage]) -> qn_linalg::Matrix {
    let rows: Vec<Vec<f64>> = images.iter().map(|i| i.to_vector()).collect();
    qn_linalg::Matrix::from_rows(&rows).expect("uniform image sizes")
}

/// Effective rank of the dataset (singular values above `tol · σ_max` of
/// the `M × N` data matrix). Reported by the experiment harness to make
/// the compressibility of the substitute dataset explicit.
pub fn effective_rank(images: &[GrayImage], tol: f64) -> usize {
    let m = to_matrix(images);
    qn_linalg::svd::svd(&m).expect("non-empty data").rank(tol)
}

/// Energy fraction captured by the top `k` singular directions of the
/// dataset matrix — the upper bound on lossless compressibility into a
/// `k`-dimensional subspace.
pub fn rank_energy(images: &[GrayImage], k: usize) -> f64 {
    let m = to_matrix(images);
    let svd = qn_linalg::svd::svd(&m).expect("non-empty data");
    let total: f64 = svd.singular_values.iter().map(|s| s * s).sum();
    if total == 0.0 {
        return 1.0;
    }
    let top: f64 = svd.singular_values.iter().take(k).map(|s| s * s).sum();
    top / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_unions_are_15_distinct_binary_rank4() {
        let q = quadrant_unions();
        assert_eq!(q.len(), 15);
        for img in &q {
            assert_eq!((img.width(), img.height()), (4, 4));
            assert!(img.is_binary(0.0));
        }
        // Distinctness.
        for i in 0..q.len() {
            for j in (i + 1)..q.len() {
                assert_ne!(q[i], q[j], "duplicates at {i},{j}");
            }
        }
        assert_eq!(effective_rank(&q, 1e-10), 4);
    }

    #[test]
    fn paper_set_matches_paper_regime() {
        let data = paper_binary_16(25);
        assert_eq!(data.len(), 25);
        for img in &data {
            assert_eq!(img.len(), 16); // N = 16 → 4 qubits
            assert!(img.is_binary(0.0));
            assert!(img.density() > 0.0, "no empty images");
        }
        // Exactly rank 4: lossless d = 4 compression is possible.
        assert_eq!(effective_rank(&data, 1e-10), 4);
        assert!((rank_energy(&data, 4) - 1.0).abs() < 1e-12);
        // The first 15 are the distinct unions.
        assert_eq!(&data[..15], &quadrant_unions()[..]);
    }

    #[test]
    fn hard_set_has_off_subspace_energy() {
        let data = paper_binary_16_hard(25);
        assert_eq!(data.len(), 25);
        let energy4 = rank_energy(&data, 4);
        assert!(energy4 > 0.8 && energy4 < 0.99, "rank-4 energy {energy4}");
        // Cycles beyond 25.
        let d30 = paper_binary_16_hard(30);
        assert_eq!(d30[25], d30[0]);
    }

    #[test]
    fn paper_set_is_deterministic() {
        assert_eq!(paper_binary_16(25), paper_binary_16(25));
        assert_eq!(paper_binary_16_hard(25), paper_binary_16_hard(25));
        // Re-draws come from the 15-member family.
        let d25 = paper_binary_16(25);
        let pool = quadrant_unions();
        for img in &d25[15..] {
            assert!(pool.contains(img));
        }
    }

    #[test]
    fn structured_glyphs_shape() {
        let g = structured_glyphs();
        assert_eq!(g.len(), 10);
        assert!(g.iter().all(|i| i.len() == 16 && i.is_binary(0.0)));
    }

    #[test]
    fn random_binary_is_seeded() {
        let a = random_binary(5, 8, 8, 0.4, 3);
        let b = random_binary(5, 8, 8, 0.4, 3);
        assert_eq!(a, b);
        let c = random_binary(5, 8, 8, 0.4, 4);
        assert_ne!(a, c);
        let mean_density: f64 = a.iter().map(|i| i.density()).sum::<f64>() / 5.0;
        assert!((mean_density - 0.4).abs() < 0.2);
    }

    #[test]
    fn low_rank_binary_has_promised_rank() {
        let data = low_rank_binary(20, 4, 4, 4, 11);
        assert!(effective_rank(&data, 1e-10) <= 4);
        assert!(data.iter().all(|i| i.is_binary(0.0)));
        assert!(data.iter().all(|i| i.density() > 0.0));
        // Larger images too.
        let data8 = low_rank_binary(30, 8, 8, 6, 12);
        assert!(effective_rank(&data8, 1e-10) <= 6);
    }

    #[test]
    fn grayscale_blobs_are_smooth_and_bounded() {
        let data = grayscale_blobs(4, 8, 8, 7);
        for img in &data {
            assert!(img.pixels().iter().all(|&p| (0.0..=1.0).contains(&p)));
            assert!(!img.is_binary(1e-3));
        }
    }

    #[test]
    fn dataset_matrix_shape() {
        let m = to_matrix(&paper_binary_16(25));
        assert_eq!(m.shape(), (25, 16));
    }
}
