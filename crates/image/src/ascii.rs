//! ASCII rendering of small images for terminal output.

use crate::image::GrayImage;

/// Ten-step intensity ramp from dark to bright.
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render an image as ASCII art, one character per pixel.
pub fn render(img: &GrayImage) -> String {
    let mut out = String::with_capacity((img.width() + 1) * img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let v = img.get(x, y).clamp(0.0, 1.0);
            let idx = ((v * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx]);
        }
        out.push('\n');
    }
    out
}

/// Render several images side by side with a gutter, e.g. input next to
/// reconstruction.
pub fn render_row(images: &[&GrayImage], gutter: &str) -> String {
    if images.is_empty() {
        return String::new();
    }
    let height = images.iter().map(|i| i.height()).max().unwrap_or(0);
    let rendered: Vec<Vec<String>> = images
        .iter()
        .map(|img| render(img).lines().map(str::to_string).collect())
        .collect();
    let mut out = String::new();
    for y in 0..height {
        let line: Vec<String> = rendered
            .iter()
            .zip(images)
            .map(|(lines, img)| {
                lines
                    .get(y)
                    .cloned()
                    .unwrap_or_else(|| " ".repeat(img.width()))
            })
            .collect();
        out.push_str(&line.join(gutter));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shape_and_extremes() {
        let img = GrayImage::from_pixels(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let s = render(&img);
        assert_eq!(s, " @\n@ \n");
    }

    #[test]
    fn render_clamps_out_of_range() {
        let img = GrayImage::from_pixels(2, 1, vec![-1.0, 2.0]).unwrap();
        assert_eq!(render(&img), " @\n");
    }

    #[test]
    fn midtones_use_middle_of_ramp() {
        let img = GrayImage::from_pixels(1, 1, vec![0.5]).unwrap();
        let c = render(&img).chars().next().unwrap();
        assert!(c != ' ' && c != '@');
    }

    #[test]
    fn side_by_side_rendering() {
        let a = GrayImage::from_pixels(2, 1, vec![1.0, 1.0]).unwrap();
        let b = GrayImage::from_pixels(2, 1, vec![0.0, 0.0]).unwrap();
        let s = render_row(&[&a, &b], " | ");
        assert_eq!(s, "@@ |   \n");
        assert_eq!(render_row(&[], "|"), "");
    }
}
