//! Plain (ASCII) PGM/PBM image IO.
//!
//! The repro binaries dump inputs, compressed representations and
//! reconstructions as portable graymaps so results are inspectable with
//! any image viewer, without pulling an image codec dependency.

use crate::image::{GrayImage, ImageError};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Serialise as plain PGM (P2) with 255 gray levels.
pub fn to_pgm_string(img: &GrayImage) -> String {
    let mut s = String::with_capacity(32 + img.len() * 4);
    s.push_str("P2\n");
    s.push_str(&format!("{} {}\n255\n", img.width(), img.height()));
    for y in 0..img.height() {
        let row: Vec<String> = (0..img.width())
            .map(|x| {
                let v = (img.get(x, y).clamp(0.0, 1.0) * 255.0).round() as u32;
                v.to_string()
            })
            .collect();
        s.push_str(&row.join(" "));
        s.push('\n');
    }
    s
}

/// Write a plain PGM file.
///
/// # Errors
/// Propagates IO failures.
pub fn write_pgm(img: &GrayImage, path: &Path) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(to_pgm_string(img).as_bytes())
}

/// Parse a plain PGM (P2) string.
///
/// # Errors
/// Returns [`ImageError`] for malformed content.
pub fn from_pgm_string(s: &str) -> Result<GrayImage, ImageError> {
    let mut tokens = s
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .flat_map(|l| l.split_whitespace());
    let magic = tokens
        .next()
        .ok_or_else(|| ImageError("empty PGM".into()))?;
    if magic != "P2" {
        return Err(ImageError(format!("unsupported PGM magic '{magic}'")));
    }
    let mut next_num = |what: &str| -> Result<usize, ImageError> {
        tokens
            .next()
            .ok_or_else(|| ImageError(format!("missing {what}")))?
            .parse::<usize>()
            .map_err(|e| ImageError(format!("bad {what}: {e}")))
    };
    let width = next_num("width")?;
    let height = next_num("height")?;
    let maxval = next_num("maxval")?;
    if maxval == 0 {
        return Err(ImageError("maxval must be positive".into()));
    }
    let mut pixels = Vec::with_capacity(width * height);
    for _ in 0..width * height {
        pixels.push(next_num("pixel")? as f64 / maxval as f64);
    }
    GrayImage::from_pixels(width, height, pixels)
}

/// Read a plain PGM file.
///
/// # Errors
/// Returns [`ImageError`] for IO failures or malformed content.
pub fn read_pgm(path: &Path) -> Result<GrayImage, ImageError> {
    let s = fs::read_to_string(path).map_err(|e| ImageError(format!("read {path:?}: {e}")))?;
    from_pgm_string(&s)
}

/// Read every `.pgm` file in a directory, sorted by file name so the
/// resulting dataset order is stable across platforms and reruns.
/// Returns `(file stem, image)` pairs; non-`.pgm` entries are ignored.
///
/// # Errors
/// Returns [`ImageError`] when the directory cannot be read, when it
/// holds no `.pgm` files, or when any PGM file is malformed.
pub fn read_pgm_dir(dir: &Path) -> Result<Vec<(String, GrayImage)>, ImageError> {
    let entries =
        fs::read_dir(dir).map_err(|e| ImageError(format!("read directory {dir:?}: {e}")))?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "pgm"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(ImageError(format!("no .pgm files in {dir:?}")));
    }
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            read_pgm(&p).map(|img| (name, img))
        })
        .collect()
}

/// Serialise a binary image as plain PBM (P1); pixels are thresholded at
/// 0.5 (PBM convention: 1 = black).
pub fn to_pbm_string(img: &GrayImage) -> String {
    let mut s = String::with_capacity(16 + img.len() * 2);
    s.push_str("P1\n");
    s.push_str(&format!("{} {}\n", img.width(), img.height()));
    for y in 0..img.height() {
        let row: Vec<&str> = (0..img.width())
            .map(|x| if img.get(x, y) > 0.5 { "1" } else { "0" })
            .collect();
        s.push_str(&row.join(" "));
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_roundtrip_preserves_quantised_pixels() {
        let img = GrayImage::from_pixels(3, 2, vec![0.0, 0.5, 1.0, 0.25, 0.75, 1.0]).unwrap();
        let s = to_pgm_string(&img);
        let back = from_pgm_string(&s).unwrap();
        assert_eq!((back.width(), back.height()), (3, 2));
        for (a, b) in back.pixels().iter().zip(img.pixels()) {
            assert!((a - b).abs() <= 0.5 / 255.0 + 1e-12);
        }
    }

    #[test]
    fn pgm_header_format() {
        let img = GrayImage::zeros(4, 4);
        let s = to_pgm_string(&img);
        assert!(s.starts_with("P2\n4 4\n255\n"));
    }

    #[test]
    fn pgm_dir_reads_sorted_and_rejects_empty() {
        let dir = std::env::temp_dir()
            .join("qn_pgm_dir_tests")
            .join(std::process::id().to_string());
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        assert!(read_pgm_dir(&dir).is_err(), "empty directory must error");
        let a = GrayImage::from_pixels(2, 1, vec![0.0, 1.0]).unwrap();
        let b = GrayImage::from_pixels(1, 2, vec![1.0, 0.0]).unwrap();
        // Written in reverse name order: the read must still sort.
        write_pgm(&b, &dir.join("b.pgm")).unwrap();
        write_pgm(&a, &dir.join("a.pgm")).unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let loaded = read_pgm_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].0, "a");
        assert_eq!(loaded[1].0, "b");
        assert_eq!((loaded[0].1.width(), loaded[0].1.height()), (2, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pgm_parser_rejects_garbage() {
        assert!(from_pgm_string("").is_err());
        assert!(from_pgm_string("P5\n1 1\n255\n0").is_err());
        assert!(from_pgm_string("P2\n2 2\n255\n0 0 0").is_err()); // missing pixel
        assert!(from_pgm_string("P2\n1 1\n0\n0").is_err()); // bad maxval
    }

    #[test]
    fn pgm_parser_skips_comments() {
        let s = "P2\n# a comment\n1 1\n255\n128\n";
        let img = from_pgm_string(s).unwrap();
        assert!((img.get(0, 0) - 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qn_pgm_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.pgm");
        let img = GrayImage::from_pixels(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.thresholded(0.5), img);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn pbm_binary_output() {
        let img = GrayImage::from_pixels(2, 1, vec![0.9, 0.1]).unwrap();
        let s = to_pbm_string(&img);
        assert_eq!(s, "P1\n2 1\n1 0\n");
    }
}
