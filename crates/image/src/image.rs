//! Grayscale image container.

use std::fmt;

/// A grayscale image with pixel intensities in `[0, 1]`, stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<f64>,
}

/// Error for invalid image construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ImageError(pub String);

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image error: {}", self.0)
    }
}

impl std::error::Error for ImageError {}

impl GrayImage {
    /// All-black image.
    pub fn zeros(width: usize, height: usize) -> Self {
        GrayImage {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Build from row-major pixels.
    ///
    /// # Errors
    /// Returns [`ImageError`] when the pixel count does not match the
    /// dimensions.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<f64>) -> Result<Self, ImageError> {
        if pixels.len() != width * height {
            return Err(ImageError(format!(
                "{}x{} image needs {} pixels, got {}",
                width,
                height,
                width * height,
                pixels.len()
            )));
        }
        Ok(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Parse a binary glyph from rows of `#` (on) and `.` (off).
    ///
    /// # Errors
    /// Returns [`ImageError`] for ragged rows or other characters.
    pub fn from_glyph(rows: &[&str]) -> Result<Self, ImageError> {
        let height = rows.len();
        let width = rows.first().map_or(0, |r| r.chars().count());
        let mut pixels = Vec::with_capacity(width * height);
        for row in rows {
            if row.chars().count() != width {
                return Err(ImageError("ragged glyph rows".to_string()));
            }
            for c in row.chars() {
                match c {
                    '#' => pixels.push(1.0),
                    '.' => pixels.push(0.0),
                    other => {
                        return Err(ImageError(format!(
                            "glyph character '{other}' is not '#' or '.'"
                        )))
                    }
                }
            }
        }
        Ok(GrayImage {
            width,
            height,
            pixels,
        })
    }

    /// Width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// True for a 0×0 image.
    pub fn is_empty(&self) -> bool {
        self.pixels.is_empty()
    }

    /// Borrow pixels row-major.
    #[inline]
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Mutably borrow pixels.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [f64] {
        &mut self.pixels
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x]
    }

    /// Pixel mutator.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        debug_assert!(x < self.width && y < self.height);
        self.pixels[y * self.width + x] = v;
    }

    /// Flatten to the row-major data vector the encoder consumes.
    pub fn to_vector(&self) -> Vec<f64> {
        self.pixels.clone()
    }

    /// Rebuild from a flat vector with the given dimensions.
    ///
    /// # Errors
    /// Returns [`ImageError`] on length mismatch.
    pub fn from_vector(width: usize, height: usize, v: &[f64]) -> Result<Self, ImageError> {
        Self::from_pixels(width, height, v.to_vec())
    }

    /// True when all pixels are within `tol` of 0 or 1.
    pub fn is_binary(&self, tol: f64) -> bool {
        self.pixels
            .iter()
            .all(|&p| p.abs() <= tol || (p - 1.0).abs() <= tol)
    }

    /// Binarise with a cut at `threshold` (paper §IV-B: output amplitude
    /// below 0.5 → 0, otherwise 1).
    pub fn thresholded(&self, threshold: f64) -> GrayImage {
        GrayImage {
            width: self.width,
            height: self.height,
            pixels: self
                .pixels
                .iter()
                .map(|&p| if p < threshold { 0.0 } else { 1.0 })
                .collect(),
        }
    }

    /// The paper's threshold *adjustment* (not full binarisation): values
    /// ≤ 0.01 snap to 0 and ≥ 0.99 snap to 1; everything else is kept.
    pub fn snapped(&self) -> GrayImage {
        GrayImage {
            width: self.width,
            height: self.height,
            pixels: self
                .pixels
                .iter()
                .map(|&p| {
                    if p <= 0.01 {
                        0.0
                    } else if p >= 0.99 {
                        1.0
                    } else {
                        p
                    }
                })
                .collect(),
        }
    }

    /// Clamp all pixels into `[0, 1]`.
    pub fn clamped(&self) -> GrayImage {
        GrayImage {
            width: self.width,
            height: self.height,
            pixels: self.pixels.iter().map(|&p| p.clamp(0.0, 1.0)).collect(),
        }
    }

    /// Fraction of pixels that are "on" (> 0.5).
    pub fn density(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().filter(|&&p| p > 0.5).count() as f64 / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = GrayImage::zeros(3, 2);
        assert_eq!((img.width(), img.height(), img.len()), (3, 2, 6));
        img.set(2, 1, 0.7);
        assert_eq!(img.get(2, 1), 0.7);
        assert_eq!(img.pixels()[5], 0.7);
    }

    #[test]
    fn from_pixels_validates_length() {
        assert!(GrayImage::from_pixels(2, 2, vec![0.0; 3]).is_err());
        assert!(GrayImage::from_pixels(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn glyph_parsing() {
        let img = GrayImage::from_glyph(&["#.", ".#"]).unwrap();
        assert_eq!(img.get(0, 0), 1.0);
        assert_eq!(img.get(1, 0), 0.0);
        assert_eq!(img.get(1, 1), 1.0);
        assert!(GrayImage::from_glyph(&["#.", "#"]).is_err());
        assert!(GrayImage::from_glyph(&["#x"]).is_err());
    }

    #[test]
    fn vector_roundtrip() {
        let img = GrayImage::from_glyph(&["##..", "..##"]).unwrap();
        let v = img.to_vector();
        assert_eq!(v.len(), 8);
        let back = GrayImage::from_vector(4, 2, &v).unwrap();
        assert_eq!(back, img);
        assert!(GrayImage::from_vector(3, 2, &v).is_err());
    }

    #[test]
    fn binary_detection_and_threshold() {
        let img = GrayImage::from_pixels(2, 1, vec![0.2, 0.8]).unwrap();
        assert!(!img.is_binary(1e-6));
        let t = img.thresholded(0.5);
        assert_eq!(t.pixels(), &[0.0, 1.0]);
        assert!(t.is_binary(0.0));
    }

    #[test]
    fn snapping_follows_paper_rule() {
        let img = GrayImage::from_pixels(4, 1, vec![0.005, 0.995, 0.5, 0.02]).unwrap();
        let s = img.snapped();
        assert_eq!(s.pixels(), &[0.0, 1.0, 0.5, 0.02]);
    }

    #[test]
    fn clamp_and_density() {
        let img = GrayImage::from_pixels(3, 1, vec![-0.5, 0.7, 1.5]).unwrap();
        let c = img.clamped();
        assert_eq!(c.pixels(), &[0.0, 0.7, 1.0]);
        assert!((c.density() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(GrayImage::zeros(0, 0).density(), 0.0);
    }
}
