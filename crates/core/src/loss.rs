//! Loss functions (paper Eq. 5).
//!
//! Both networks train on the complete-square variance
//! `L = Σ_j Σ_i (out_i^j − target_i^j)²`. The paper reports `min L_C =
//! 0.017`, which is only plausible for the *per-element mean* (Algorithm 1
//! divides by `M × N`), so both normalisations are carried explicitly.

/// A loss value carrying both the Eq. 5 sum and the per-element mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Loss {
    /// `Σ_{i,j} r_{ij}²` — Eq. 5 literally.
    pub sum: f64,
    /// `sum / (M · N)` — Algorithm 1's normalisation.
    pub mean: f64,
}

impl Loss {
    /// Assemble from a residual sum over `m` samples of dimension `n`.
    pub fn from_sum(sum: f64, m: usize, n: usize) -> Self {
        let count = (m * n).max(1) as f64;
        Loss {
            sum,
            mean: sum / count,
        }
    }

    /// The zero loss.
    pub fn zero() -> Self {
        Loss {
            sum: 0.0,
            mean: 0.0,
        }
    }
}

/// Squared-residual sum of one sample: `Σ_j (out_j − target_j)²`.
///
/// # Panics
/// Panics on length mismatch.
pub fn sample_squared_error(out: &[f64], target: &[f64]) -> f64 {
    assert_eq!(out.len(), target.len(), "loss: length mismatch");
    out.iter().zip(target).map(|(o, t)| (o - t) * (o - t)).sum()
}

/// Fidelity loss `1 − ⟨out|target⟩²` for unit vectors — an alternative
/// training objective (extension; the quantum-autoencoder literature's
/// usual figure of merit).
///
/// # Panics
/// Panics on length mismatch.
pub fn fidelity_loss(out: &[f64], target: &[f64]) -> f64 {
    assert_eq!(out.len(), target.len(), "fidelity: length mismatch");
    let ip: f64 = out.iter().zip(target).map(|(a, b)| a * b).sum();
    1.0 - ip * ip
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_normalisation() {
        let l = Loss::from_sum(8.0, 4, 2);
        assert_eq!(l.sum, 8.0);
        assert_eq!(l.mean, 1.0);
        let z = Loss::zero();
        assert_eq!(z.sum, 0.0);
        // Degenerate sizes don't divide by zero.
        let d = Loss::from_sum(1.0, 0, 0);
        assert_eq!(d.mean, 1.0);
    }

    #[test]
    fn squared_error_matches_hand_calculation() {
        let e = sample_squared_error(&[1.0, 2.0], &[0.0, 4.0]);
        assert_eq!(e, 1.0 + 4.0);
        assert_eq!(sample_squared_error(&[], &[]), 0.0);
    }

    #[test]
    fn fidelity_loss_extremes() {
        let a = [1.0, 0.0];
        assert!((fidelity_loss(&a, &[1.0, 0.0])).abs() < 1e-15);
        assert!((fidelity_loss(&a, &[0.0, 1.0]) - 1.0).abs() < 1e-15);
        // Sign-insensitive (global phase).
        assert!((fidelity_loss(&a, &[-1.0, 0.0])).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_checked() {
        sample_squared_error(&[1.0], &[1.0, 2.0]);
    }
}
