//! Amplitude encoding and decoding (paper Eq. 1 and Eq. 2).
//!
//! Eq. 1 normalises a classical vector into probability amplitudes:
//! `A_i^j = x_i^j / √(Σ_j (x_i^j)²)`. The norm `√(Σ (x_i^j)²)` must be
//! retained ("we need to retain the sum of squares in the input data to
//! decompile states to data") so Eq. 2 can rescale measured amplitudes
//! back: `x̂_i^j = √((B_i^j)² · Σ_j (x_i^j)²) = |B_i^j| · ‖x_i‖`.

use crate::error::CoreError;
use crate::Result;
use qn_image::GrayImage;
use qn_linalg::vector;

/// A classical sample encoded as quantum-state amplitudes plus the norm
/// needed for decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedSample {
    /// Unit-norm amplitude vector `A_i` (length padded to the state
    /// dimension).
    pub amplitudes: Vec<f64>,
    /// The retained input norm `√(Σ_j (x_i^j)²)`.
    pub norm: f64,
    /// Original (unpadded) data length.
    pub data_len: usize,
}

/// Encode a classical vector into `dim`-dimensional state amplitudes
/// (Eq. 1). Vectors shorter than `dim` are zero-padded (the paper's data
/// is exactly `N`-dimensional; padding supports non-power-of-two images
/// on a qubit register).
///
/// # Errors
/// - [`CoreError::InvalidData`] for an all-zero vector (no quantum state
///   can encode it) or data longer than `dim`.
pub fn encode(x: &[f64], dim: usize) -> Result<EncodedSample> {
    if x.len() > dim {
        return Err(CoreError::InvalidData(format!(
            "data length {} exceeds state dimension {}",
            x.len(),
            dim
        )));
    }
    let norm = vector::norm2(x);
    if norm <= 0.0 {
        return Err(CoreError::InvalidData(
            "cannot amplitude-encode the zero vector".to_string(),
        ));
    }
    let mut amplitudes = vec![0.0; dim];
    for (a, &v) in amplitudes.iter_mut().zip(x) {
        *a = v / norm;
    }
    Ok(EncodedSample {
        amplitudes,
        norm,
        data_len: x.len(),
    })
}

/// Decode measured amplitudes back to classical data (Eq. 2, paper-exact):
/// `x̂_j = |B_j| · norm`. The paper's square-then-root form discards sign
/// information, which is harmless for (non-negative) image data.
pub fn decode(amplitudes: &[f64], norm: f64, data_len: usize) -> Vec<f64> {
    amplitudes
        .iter()
        .take(data_len)
        .map(|&b| (b * b).sqrt() * norm)
        .collect()
}

/// Sign-preserving decode variant (`x̂_j = B_j · norm`), for data that can
/// be negative — an engineering extension beyond Eq. 2.
pub fn decode_signed(amplitudes: &[f64], norm: f64, data_len: usize) -> Vec<f64> {
    amplitudes
        .iter()
        .take(data_len)
        .map(|&b| b * norm)
        .collect()
}

/// Encode a batch of vectors.
///
/// # Errors
/// Propagates the first per-sample encoding error.
pub fn encode_batch(xs: &[Vec<f64>], dim: usize) -> Result<Vec<EncodedSample>> {
    xs.iter().map(|x| encode(x, dim)).collect()
}

/// Encode a batch of images (row-major flattening).
///
/// # Errors
/// Propagates the first per-sample encoding error.
pub fn encode_images(images: &[GrayImage], dim: usize) -> Result<Vec<EncodedSample>> {
    images.iter().map(|img| encode(img.pixels(), dim)).collect()
}

/// Decode amplitudes into an image of the given dimensions.
///
/// # Errors
/// Returns [`CoreError::InvalidData`] when `width·height` exceeds the
/// decoded length.
pub fn decode_image(
    amplitudes: &[f64],
    norm: f64,
    width: usize,
    height: usize,
) -> Result<GrayImage> {
    let pixels = decode(amplitudes, norm, width * height);
    GrayImage::from_pixels(width, height, pixels).map_err(|e| CoreError::InvalidData(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-14;

    #[test]
    fn encode_produces_unit_amplitudes() {
        let e = encode(&[3.0, 4.0], 2).unwrap();
        assert!((e.norm - 5.0).abs() < TOL);
        assert!((e.amplitudes[0] - 0.6).abs() < TOL);
        assert!((e.amplitudes[1] - 0.8).abs() < TOL);
        assert!((vector::norm2(&e.amplitudes) - 1.0).abs() < TOL);
    }

    #[test]
    fn paper_example_sixteen_dims_four_qubits() {
        // Paper: 16-dimensional data, four qubits.
        let x = vec![1.0; 16];
        let e = encode(&x, 16).unwrap();
        assert_eq!(e.amplitudes.len(), 16);
        assert_eq!(qn_sim::qubits_for_dim(e.amplitudes.len()), 4);
        for &a in &e.amplitudes {
            assert!((a - 0.25).abs() < TOL);
        }
    }

    #[test]
    fn encode_pads_short_data() {
        let e = encode(&[1.0, 1.0, 1.0], 4).unwrap();
        assert_eq!(e.amplitudes.len(), 4);
        assert_eq!(e.amplitudes[3], 0.0);
        assert_eq!(e.data_len, 3);
        // Unit norm even with padding.
        assert!((vector::norm2(&e.amplitudes) - 1.0).abs() < TOL);
    }

    #[test]
    fn encode_rejects_zero_and_oversize() {
        assert!(matches!(
            encode(&[0.0, 0.0], 2),
            Err(CoreError::InvalidData(_))
        ));
        assert!(encode(&[1.0; 5], 4).is_err());
    }

    #[test]
    fn decode_is_inverse_of_encode_for_nonnegative_data() {
        let x = vec![0.0, 1.0, 1.0, 0.0, 1.0, 0.0, 0.0, 1.0];
        let e = encode(&x, 8).unwrap();
        let back = decode(&e.amplitudes, e.norm, e.data_len);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn decode_takes_absolute_value_per_eq2() {
        // Eq. 2 squares then roots, so signs vanish.
        let back = decode(&[-0.6, 0.8], 5.0, 2);
        assert!((back[0] - 3.0).abs() < TOL);
        assert!((back[1] - 4.0).abs() < TOL);
        // Signed variant keeps them.
        let signed = decode_signed(&[-0.6, 0.8], 5.0, 2);
        assert!((signed[0] + 3.0).abs() < TOL);
    }

    #[test]
    fn decode_truncates_padding() {
        let e = encode(&[2.0, 0.0, 0.0], 4).unwrap();
        let back = decode(&e.amplitudes, e.norm, e.data_len);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn batch_and_image_encoding() {
        let imgs = qn_image::datasets::paper_binary_16(25);
        let encoded = encode_images(&imgs, 16).unwrap();
        assert_eq!(encoded.len(), 25);
        for e in &encoded {
            assert!((vector::norm2(&e.amplitudes) - 1.0).abs() < TOL);
        }
        // Batch of raw vectors too.
        let xs = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        let b = encode_batch(&xs, 2).unwrap();
        assert_eq!(b.len(), 2);
        assert!((b[1].norm - 2.0).abs() < TOL);
    }

    #[test]
    fn image_decode_roundtrip() {
        let img = GrayImage::from_glyph(&["#..#", "####", "....", "#..#"]).unwrap();
        let e = encode(img.pixels(), 16).unwrap();
        let back = decode_image(&e.amplitudes, e.norm, 4, 4).unwrap();
        for (a, b) in back.pixels().iter().zip(img.pixels()) {
            assert!((a - b).abs() < TOL);
        }
    }
}
