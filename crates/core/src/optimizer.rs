//! Parameter-update rules.
//!
//! The paper uses plain gradient descent (Eq. 9:
//! `θ(t+1) = θ(t) − η · ∂L/∂θ`); momentum and Adam are provided for the
//! optimiser ablation.

use crate::config::OptimizerKind;

/// A stateful first-order optimiser over a flat parameter vector.
pub trait Optimizer {
    /// Apply one update step in place.
    fn step(&mut self, params: &mut [f64], grad: &[f64]);
    /// The optimiser's display name (for experiment tables).
    fn name(&self) -> &'static str;
}

/// Plain gradient descent (paper Eq. 9).
#[derive(Debug, Clone)]
pub struct Gd {
    /// Learning rate η.
    pub learning_rate: f64,
}

impl Optimizer for Gd {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "gd: length mismatch");
        for (p, g) in params.iter_mut().zip(grad) {
            *p -= self.learning_rate * g;
        }
    }

    fn name(&self) -> &'static str {
        "gd"
    }
}

/// Gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Momentum {
    /// Learning rate η.
    pub learning_rate: f64,
    /// Momentum coefficient β.
    pub beta: f64,
    velocity: Vec<f64>,
}

impl Momentum {
    /// Create with zeroed velocity.
    pub fn new(learning_rate: f64, beta: f64, dim: usize) -> Self {
        Momentum {
            learning_rate,
            beta,
            velocity: vec![0.0; dim],
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "momentum: length mismatch");
        assert_eq!(params.len(), self.velocity.len(), "momentum: wrong dim");
        for ((p, g), v) in params.iter_mut().zip(grad).zip(&mut self.velocity) {
            *v = self.beta * *v + g;
            *p -= self.learning_rate * *v;
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// Adam (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate η.
    pub learning_rate: f64,
    /// First-moment decay β₁.
    pub beta1: f64,
    /// Second-moment decay β₂.
    pub beta2: f64,
    eps: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Create with zeroed moments.
    pub fn new(learning_rate: f64, beta1: f64, beta2: f64, dim: usize) -> Self {
        Adam {
            learning_rate,
            beta1,
            beta2,
            eps: 1e-8,
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f64], grad: &[f64]) {
        assert_eq!(params.len(), grad.len(), "adam: length mismatch");
        assert_eq!(params.len(), self.m.len(), "adam: wrong dim");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().zip(grad).enumerate() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            *p -= self.learning_rate * mhat / (vhat.sqrt() + self.eps);
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

/// Instantiate an optimiser from its config description.
pub fn build(kind: OptimizerKind, learning_rate: f64, dim: usize) -> Box<dyn Optimizer + Send> {
    match kind {
        OptimizerKind::Gd => Box::new(Gd { learning_rate }),
        OptimizerKind::Momentum { beta } => Box::new(Momentum::new(learning_rate, beta, dim)),
        OptimizerKind::Adam { beta1, beta2 } => {
            Box::new(Adam::new(learning_rate, beta1, beta2, dim))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quadratic bowl: L = ½‖p‖², ∇ = p. Everything should converge to 0.
    fn converges_on_quadratic(opt: &mut dyn Optimizer, iters: usize) -> f64 {
        let mut p = vec![1.0, -2.0, 0.5];
        for _ in 0..iters {
            let g = p.clone();
            opt.step(&mut p, &g);
        }
        p.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    #[test]
    fn gd_step_matches_eq9() {
        let mut gd = Gd { learning_rate: 0.1 };
        let mut p = vec![1.0, 2.0];
        gd.step(&mut p, &[10.0, -10.0]);
        assert_eq!(p, vec![0.0, 3.0]);
        assert_eq!(gd.name(), "gd");
    }

    #[test]
    fn all_optimizers_converge_on_quadratic() {
        assert!(converges_on_quadratic(&mut Gd { learning_rate: 0.1 }, 200) < 1e-6);
        assert!(converges_on_quadratic(&mut Momentum::new(0.05, 0.9, 3), 400) < 1e-6);
        assert!(converges_on_quadratic(&mut Adam::new(0.1, 0.9, 0.999, 3), 500) < 1e-3);
    }

    #[test]
    fn momentum_accelerates_along_consistent_gradients() {
        let mut m = Momentum::new(0.1, 0.9, 1);
        let mut p = vec![0.0];
        m.step(&mut p, &[1.0]);
        let d1 = -p[0];
        m.step(&mut p, &[1.0]);
        let d2 = -p[0] - d1;
        assert!(d2 > d1, "second step should be larger: {d1} vs {d2}");
    }

    #[test]
    fn adam_normalises_gradient_scale() {
        // First Adam step size is ≈ lr regardless of gradient magnitude.
        let mut a = Adam::new(0.1, 0.9, 0.999, 1);
        let mut p = vec![0.0];
        a.step(&mut p, &[1000.0]);
        assert!((p[0] + 0.1).abs() < 1e-3);
    }

    #[test]
    fn build_dispatches() {
        assert_eq!(build(OptimizerKind::Gd, 0.1, 4).name(), "gd");
        assert_eq!(
            build(OptimizerKind::Momentum { beta: 0.9 }, 0.1, 4).name(),
            "momentum"
        );
        assert_eq!(
            build(
                OptimizerKind::Adam {
                    beta1: 0.9,
                    beta2: 0.999
                },
                0.1,
                4
            )
            .name(),
            "adam"
        );
    }
}
