//! The quantum reconstruction network `U_R` (paper Sec. II-C, Eq. 4).

use crate::compression::CompressionNetwork;
use crate::gradient::{self, GradientMethod};
use crate::loss::Loss;
use qn_backend::{BackendKind, MeshBackend};
use qn_photonic::{Mesh, MeshLayer};

/// The reconstruction half: `|Ψ_i⟩ = U_R · (P1 U_C |ψ_i⟩)`.
#[derive(Debug, Clone)]
pub struct ReconstructionNetwork {
    mesh: Mesh,
}

impl ReconstructionNetwork {
    /// Wrap a mesh as the reconstruction network.
    pub fn new(mesh: Mesh) -> Self {
        ReconstructionNetwork { mesh }
    }

    /// Initialise from the trained compression network, per the paper's
    /// Sec. II-C: "the reconstruction network U_R can be the combination
    /// of the quantum gates in the compression network, which are
    /// connected in reverse order" — i.e. the reversed mesh with negated
    /// angles, which equals `U_C⁻¹` exactly. When `n_layers` exceeds the
    /// compression depth, identity layers pad the front so the parameter
    /// budget matches `l_R` (the paper uses l_R = 14 > l_C = 12); the
    /// padding layers start at θ = 0 and are trained like the rest.
    pub fn from_reversed_compression(compression: &CompressionNetwork, n_layers: usize) -> Self {
        let inv = {
            let mut rev = compression.mesh().reversed();
            let negated: Vec<f64> = rev.thetas().iter().map(|t| -t).collect();
            rev.set_thetas(&negated);
            rev
        };
        let dim = inv.dim();
        let mut layers: Vec<MeshLayer> = Vec::with_capacity(n_layers.max(inv.n_layers()));
        for _ in inv.n_layers()..n_layers {
            layers.push(MeshLayer::zeros(dim));
        }
        layers.extend(inv.layers().iter().cloned());
        ReconstructionNetwork {
            mesh: Mesh::from_layers(layers),
        }
    }

    /// State dimension `N`.
    pub fn dim(&self) -> usize {
        self.mesh.dim()
    }

    /// Borrow the mesh (`U_R`).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Mutably borrow the mesh.
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    /// Reconstruct one compressed state: `B = U_R |Φ⟩`.
    pub fn reconstruct(&self, compressed: &[f64]) -> Vec<f64> {
        self.mesh.forward_real_copy(compressed)
    }

    /// Batch reconstruction (parallel over samples).
    pub fn reconstruct_batch(&self, compressed: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.reconstruct_batch_with(compressed, BackendKind::ScalarParallel.backend())
    }

    /// Batch reconstruction through an explicit execution backend —
    /// bit-identical to [`ReconstructionNetwork::reconstruct`] per
    /// sample (the `MeshBackend` equivalence contract).
    pub fn reconstruct_batch_with(
        &self,
        compressed: &[Vec<f64>],
        backend: &dyn MeshBackend,
    ) -> Vec<Vec<f64>> {
        backend.forward_batch(&self.mesh, compressed)
    }

    /// Reconstruction loss `L_R = Σ_{i,j} (B_i^j − A_i^j)²` (Eq. 5), where
    /// the targets `A_i` are the original encoded amplitudes.
    ///
    /// # Panics
    /// Panics when batch lengths differ.
    pub fn loss(&self, compressed: &[Vec<f64>], targets: &[Vec<f64>]) -> Loss {
        assert_eq!(compressed.len(), targets.len(), "loss: batch sizes differ");
        let sum = gradient::loss_only(&self.mesh, compressed, &|i, out, buf| {
            for (j, b) in buf.iter_mut().enumerate() {
                *b = out[j] - targets[i][j];
            }
        });
        Loss::from_sum(sum, compressed.len(), self.dim())
    }

    /// Loss and gradient w.r.t. θ.
    ///
    /// # Panics
    /// Panics when batch lengths differ.
    pub fn loss_and_gradient(
        &self,
        compressed: &[Vec<f64>],
        targets: &[Vec<f64>],
        method: GradientMethod,
    ) -> (Loss, Vec<f64>) {
        assert_eq!(
            compressed.len(),
            targets.len(),
            "loss_and_gradient: batch sizes differ"
        );
        let (sum, grad) = gradient::loss_and_gradient(
            &self.mesh,
            compressed,
            &|i, out, buf| {
                for (j, b) in buf.iter_mut().enumerate() {
                    *b = out[j] - targets[i][j];
                }
            },
            method,
        );
        (Loss::from_sum(sum, compressed.len(), self.dim()), grad)
    }

    /// Mean fidelity `⟨B_i|A_i⟩²` between reconstructions and targets
    /// (unit-norm targets; reconstruction norm may be < 1 when the
    /// compression leaks).
    pub fn mean_fidelity(&self, compressed: &[Vec<f64>], targets: &[Vec<f64>]) -> f64 {
        if compressed.is_empty() {
            return 1.0;
        }
        let total: f64 = compressed
            .iter()
            .zip(targets)
            .map(|(c, t)| {
                let out = self.reconstruct(c);
                let ip: f64 = out.iter().zip(t).map(|(a, b)| a * b).sum();
                ip * ip
            })
            .sum();
        total / compressed.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionTargetKind, SubspaceKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn compression() -> CompressionNetwork {
        let mut rng = StdRng::seed_from_u64(17);
        let mesh = Mesh::random(8, 3, &mut rng);
        CompressionNetwork::new(
            mesh,
            4,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap()
    }

    fn unit_inputs(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let mut v: Vec<f64> = (0..8).map(|j| ((3 * i + j) as f64 * 0.61).sin()).collect();
                qn_linalg::vector::normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn reversed_init_inverts_compression_without_projection() {
        let comp = compression();
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 3);
        // Without P1, U_R = U_C⁻¹ exactly: round trip is the identity.
        let x = &unit_inputs(1)[0];
        let y = comp.forward(x); // no projection
        let back = recon.reconstruct(&y);
        for (a, b) in back.iter().zip(x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn padding_layers_are_identity_at_init() {
        let comp = compression(); // 3 layers
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 5);
        assert_eq!(recon.mesh().n_layers(), 5);
        // Still inverts exactly: padding layers start as identity.
        let x = &unit_inputs(1)[0];
        let back = recon.reconstruct(&comp.forward(x));
        for (a, b) in back.iter().zip(x) {
            assert!((a - b).abs() < 1e-12);
        }
        // Paper budget: l_R = 14 ⇒ 14 × (N−1) parameters.
        assert_eq!(
            ReconstructionNetwork::from_reversed_compression(&comp, 14)
                .mesh()
                .param_count(),
            14 * 7
        );
    }

    #[test]
    fn perfect_reconstruction_has_zero_loss_and_unit_fidelity() {
        let comp = compression();
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 3);
        let xs = unit_inputs(3);
        // Bypass projection: feed unprojected outputs.
        let ys = comp.forward_batch(&xs);
        let loss = recon.loss(&ys, &xs);
        assert!(loss.sum < 1e-20);
        assert!((recon.mean_fidelity(&ys, &xs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn projection_leakage_appears_in_loss() {
        let comp = compression();
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 3);
        let xs = unit_inputs(3);
        let compressed = comp.compress_batch(&xs); // with P1
        let loss = recon.loss(&compressed, &xs);
        // Some amplitude was projected away, so the loss is positive…
        assert!(loss.sum > 1e-6);
        // …and bounded by the total leaked probability times 4 (worst
        // case for unit vectors: ‖B − A‖² ≤ (‖B‖+‖A‖)² ≤ 4).
        assert!(loss.sum < 4.0 * xs.len() as f64);
    }

    #[test]
    fn training_recovers_inverse_from_random_init() {
        // Random U_R trained on unprojected outputs must learn U_C⁻¹'s
        // action on the sample set.
        let comp = compression();
        let mut rng = StdRng::seed_from_u64(23);
        let mut recon = ReconstructionNetwork::new(Mesh::random_small(8, 4, 0.3, &mut rng));
        let xs = unit_inputs(4);
        let ys = comp.forward_batch(&xs);
        let before = recon.loss(&ys, &xs).sum;
        for _ in 0..200 {
            let (_, grad) = recon.loss_and_gradient(&ys, &xs, GradientMethod::Analytic);
            let thetas: Vec<f64> = recon
                .mesh()
                .thetas()
                .iter()
                .zip(&grad)
                .map(|(t, g)| t - 0.05 * g)
                .collect();
            recon.mesh_mut().set_thetas(&thetas);
        }
        let after = recon.loss(&ys, &xs).sum;
        assert!(
            after < before * 0.05,
            "loss did not drop 20×: {before} → {after}"
        );
    }

    #[test]
    fn batch_matches_single() {
        let comp = compression();
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 3);
        let xs = unit_inputs(3);
        let cs = comp.compress_batch(&xs);
        let batch = recon.reconstruct_batch(&cs);
        for (i, c) in cs.iter().enumerate() {
            assert_eq!(batch[i], recon.reconstruct(c));
        }
    }

    #[test]
    #[should_panic(expected = "batch sizes differ")]
    fn loss_checks_batch_sizes() {
        let comp = compression();
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 3);
        recon.loss(&unit_inputs(2), &unit_inputs(3));
    }
}
