//! The quantum compression network `U_C` with projector `P1` (paper
//! Sec. II-B, Eq. 3).

use crate::config::{CompressionTargetKind, SubspaceKind};
use crate::error::CoreError;
use crate::gradient::{self, GradientMethod};
use crate::loss::Loss;
use crate::Result;
use qn_backend::{BackendKind, MeshBackend};
use qn_photonic::Mesh;
use qn_sim::Projector;

/// The compression half of the pipeline: `|Φ_i⟩ = P1 · U_C |ψ_i⟩`.
#[derive(Debug, Clone)]
pub struct CompressionNetwork {
    mesh: Mesh,
    projector: Projector,
    subspace: SubspaceKind,
    target: CompressionTargetKind,
}

impl CompressionNetwork {
    /// Assemble from a mesh, a kept-subspace convention and a target
    /// strategy.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] when `d > N` or a custom
    /// target has the wrong shape.
    pub fn new(
        mesh: Mesh,
        compressed_dim: usize,
        subspace: SubspaceKind,
        target: CompressionTargetKind,
    ) -> Result<Self> {
        let n = mesh.dim();
        let projector = match subspace {
            SubspaceKind::KeepLast => Projector::keep_last(n, compressed_dim)?,
            SubspaceKind::KeepFirst => Projector::keep_first(n, compressed_dim)?,
        };
        if let CompressionTargetKind::Custom(ts) = &target {
            if ts.iter().any(|t| t.len() != n) {
                return Err(CoreError::InvalidConfig(
                    "custom compression targets must have length N".to_string(),
                ));
            }
        }
        Ok(CompressionNetwork {
            mesh,
            projector,
            subspace,
            target,
        })
    }

    /// State dimension `N`.
    pub fn dim(&self) -> usize {
        self.mesh.dim()
    }

    /// Compressed dimension `d`.
    pub fn compressed_dim(&self) -> usize {
        self.projector.keep_count()
    }

    /// Borrow the mesh (`U_C`).
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Mutably borrow the mesh (training updates θ through this).
    pub fn mesh_mut(&mut self) -> &mut Mesh {
        &mut self.mesh
    }

    /// Borrow the projector (`P1`).
    pub fn projector(&self) -> &Projector {
        &self.projector
    }

    /// Which subspace convention `P1` keeps — needed by model persistence
    /// (`qn-codec`) to rebuild the projector from a saved file.
    pub fn subspace_kind(&self) -> SubspaceKind {
        self.subspace
    }

    /// Raw network output `U_C |ψ⟩` — the amplitudes `a_i` that are
    /// measured for the loss (Eq. 3 before projection).
    pub fn forward(&self, encoded: &[f64]) -> Vec<f64> {
        self.mesh.forward_real_copy(encoded)
    }

    /// Compressed state `P1 U_C |ψ⟩` (unnormalised, as in Eq. 4 where the
    /// projected state feeds `U_R` directly).
    pub fn compress(&self, encoded: &[f64]) -> Vec<f64> {
        let mut out = self.mesh.forward_real_copy(encoded);
        self.projector
            .project_real(&mut out)
            .expect("dimensions match by construction");
        out
    }

    /// Batch forward pass (parallel over samples).
    pub fn forward_batch(&self, encoded: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.forward_batch_with(encoded, BackendKind::ScalarParallel.backend())
    }

    /// Batch forward pass through an explicit execution backend. Every
    /// backend is bit-identical to [`CompressionNetwork::forward`] per
    /// sample (the `MeshBackend` equivalence contract).
    pub fn forward_batch_with(
        &self,
        encoded: &[Vec<f64>],
        backend: &dyn MeshBackend,
    ) -> Vec<Vec<f64>> {
        backend.forward_batch(&self.mesh, encoded)
    }

    /// Batch compression (parallel over samples).
    pub fn compress_batch(&self, encoded: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.compress_batch_with(encoded, BackendKind::ScalarParallel.backend())
    }

    /// Batch compression through an explicit execution backend —
    /// bit-identical to [`CompressionNetwork::compress`] per sample.
    pub fn compress_batch_with(
        &self,
        encoded: &[Vec<f64>],
        backend: &dyn MeshBackend,
    ) -> Vec<Vec<f64>> {
        let mut outs = backend.forward_batch(&self.mesh, encoded);
        for out in &mut outs {
            self.projector
                .project_real(out)
                .expect("dimensions match by construction");
        }
        outs
    }

    /// Write the residual `r = a_i − b_i` for the configured target
    /// strategy into `buf`.
    ///
    /// # Panics
    /// Panics when a custom target is missing for `sample` or lengths
    /// mismatch.
    pub fn residual(&self, sample: usize, out: &[f64], buf: &mut [f64]) {
        assert_eq!(out.len(), buf.len(), "residual: length mismatch");
        match &self.target {
            CompressionTargetKind::TrashPenalty => {
                for (j, (b, &o)) in buf.iter_mut().zip(out).enumerate() {
                    *b = if self.projector.keeps(j) { 0.0 } else { o };
                }
            }
            CompressionTargetKind::Uniform => {
                let amp = 1.0 / (self.projector.keep_count() as f64).sqrt();
                for (j, (b, &o)) in buf.iter_mut().zip(out).enumerate() {
                    *b = if self.projector.keeps(j) { o - amp } else { o };
                }
            }
            CompressionTargetKind::Custom(targets) => {
                let t = &targets[sample];
                for ((b, &o), &tj) in buf.iter_mut().zip(out).zip(t) {
                    *b = o - tj;
                }
            }
        }
    }

    /// Compression loss `L_C` over a batch (Eq. 5, both normalisations).
    pub fn loss(&self, encoded: &[Vec<f64>]) -> Loss {
        let sum = gradient::loss_only(&self.mesh, encoded, &|i, out, buf| {
            self.residual(i, out, buf)
        });
        Loss::from_sum(sum, encoded.len(), self.dim())
    }

    /// Loss and gradient w.r.t. θ over a batch.
    pub fn loss_and_gradient(
        &self,
        encoded: &[Vec<f64>],
        method: GradientMethod,
    ) -> (Loss, Vec<f64>) {
        let (sum, grad) = gradient::loss_and_gradient(
            &self.mesh,
            encoded,
            &|i, out, buf| self.residual(i, out, buf),
            method,
        );
        (Loss::from_sum(sum, encoded.len(), self.dim()), grad)
    }

    /// Mean probability leaked outside the kept subspace over a batch —
    /// the quantum-autoencoder figure of merit (0 = perfect compression).
    pub fn mean_leakage(&self, encoded: &[Vec<f64>]) -> f64 {
        if encoded.is_empty() {
            return 0.0;
        }
        let total: f64 = encoded
            .iter()
            .map(|e| {
                let out = self.forward(e);
                self.projector
                    .leaked_probability(&out)
                    .expect("dimensions match by construction")
            })
            .sum();
        total / encoded.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network(target: CompressionTargetKind) -> CompressionNetwork {
        let mut rng = StdRng::seed_from_u64(5);
        let mesh = Mesh::random(8, 3, &mut rng);
        CompressionNetwork::new(mesh, 3, SubspaceKind::KeepLast, target).unwrap()
    }

    fn inputs() -> Vec<Vec<f64>> {
        (0..4)
            .map(|i| {
                let mut v: Vec<f64> = (0..8).map(|j| ((i + 2 * j) as f64).cos()).collect();
                qn_linalg::vector::normalize(&mut v);
                v
            })
            .collect()
    }

    #[test]
    fn construction_and_accessors() {
        let net = network(CompressionTargetKind::TrashPenalty);
        assert_eq!(net.dim(), 8);
        assert_eq!(net.compressed_dim(), 3);
        assert_eq!(net.projector().kept_indices(), vec![5, 6, 7]);
    }

    #[test]
    fn rejects_invalid_dims_and_targets() {
        let mesh = Mesh::zeros(4, 1);
        assert!(CompressionNetwork::new(
            mesh.clone(),
            5,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty
        )
        .is_err());
        assert!(CompressionNetwork::new(
            mesh,
            2,
            SubspaceKind::KeepLast,
            CompressionTargetKind::Custom(vec![vec![0.0; 3]])
        )
        .is_err());
    }

    #[test]
    fn compress_zeroes_trash_dims() {
        let net = network(CompressionTargetKind::TrashPenalty);
        let x = &inputs()[0];
        let c = net.compress(x);
        for cj in &c[..5] {
            assert_eq!(*cj, 0.0);
        }
        // Forward (unprojected) output keeps the full norm.
        let f = net.forward(x);
        assert!((qn_linalg::vector::norm2(&f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trash_penalty_loss_equals_total_leakage() {
        let net = network(CompressionTargetKind::TrashPenalty);
        let xs = inputs();
        let loss = net.loss(&xs);
        let leak_total: f64 = xs
            .iter()
            .map(|x| {
                let out = net.forward(x);
                net.projector().leaked_probability(&out).unwrap()
            })
            .sum();
        assert!((loss.sum - leak_total).abs() < 1e-12);
        assert!((net.mean_leakage(&xs) - leak_total / 4.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_target_measures_distance_to_uniform_amplitudes() {
        let net = network(CompressionTargetKind::Uniform);
        let out = vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let mut r = vec![0.0; 8];
        net.residual(0, &out, &mut r);
        let amp = 1.0 / 3.0_f64.sqrt();
        assert!((r[5] - (1.0 - amp)).abs() < 1e-12);
        assert!((r[6] + amp).abs() < 1e-12);
        assert_eq!(r[0], 0.0);
    }

    #[test]
    fn custom_targets_are_per_sample() {
        let targets = vec![vec![0.0; 8], {
            let mut t = vec![0.0; 8];
            t[7] = 1.0;
            t
        }];
        let net = network(CompressionTargetKind::Custom(targets));
        let out = vec![0.0; 8];
        let mut r = vec![0.0; 8];
        net.residual(0, &out, &mut r);
        assert!(r.iter().all(|&v| v == 0.0));
        net.residual(1, &out, &mut r);
        assert_eq!(r[7], -1.0);
    }

    #[test]
    fn training_reduces_leakage() {
        // A few GD steps on the trash penalty must shrink the leak.
        let mut net = network(CompressionTargetKind::TrashPenalty);
        let xs = inputs();
        let before = net.mean_leakage(&xs);
        for _ in 0..50 {
            let (_, grad) = net.loss_and_gradient(&xs, GradientMethod::Analytic);
            let thetas: Vec<f64> = net
                .mesh()
                .thetas()
                .iter()
                .zip(&grad)
                .map(|(t, g)| t - 0.05 * g)
                .collect();
            net.mesh_mut().set_thetas(&thetas);
        }
        let after = net.mean_leakage(&xs);
        assert!(
            after < before * 0.5,
            "leakage did not halve: {before} → {after}"
        );
    }

    #[test]
    fn batch_paths_match_single_sample_paths() {
        let net = network(CompressionTargetKind::TrashPenalty);
        let xs = inputs();
        let batch = net.forward_batch(&xs);
        let compressed = net.compress_batch(&xs);
        for (i, x) in xs.iter().enumerate() {
            assert_eq!(batch[i], net.forward(x));
            assert_eq!(compressed[i], net.compress(x));
        }
    }
}
