//! Spectral (PCA-optimal) initialisation — extension A3.
//!
//! The trash-penalty compression loss is minimised exactly when `U_C`
//! rotates the dataset's top-d principal subspace onto the kept basis
//! states: the residual is then the energy outside the top-d eigenspace of
//! the second-moment matrix `Σ_i ψ_i ψ_iᵀ` (the PCA bound, Eckart–Young).
//! That optimal rotation is an explicit orthogonal matrix, and the
//! Clements decomposition (`qn-photonic::clements`) converts it *exactly*
//! into beam-splitter angles — so the network can start at the optimum
//! instead of descending to it.
//!
//! The trailing ±1 sign diagonal that the rigid mesh cannot express is
//! dropped; sign flips do not change any `|amplitude|²`, so the
//! compression loss (and the subsequent retraining of `U_R`) is
//! unaffected.

use crate::config::SubspaceKind;
use crate::Result;
use qn_linalg::{sym_eig, Matrix};
use qn_photonic::clements::clements_decompose;
use qn_photonic::{Mesh, MeshLayer};

/// Second-moment matrix `S = Σ_i ψ_i ψ_iᵀ` of encoded samples.
fn second_moment(inputs: &[Vec<f64>], dim: usize) -> Matrix {
    let mut s = Matrix::zeros(dim, dim);
    for x in inputs {
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, &xj) in x.iter().enumerate() {
                let v = s.get(i, j) + xi * xj;
                s.set(i, j, v);
            }
        }
    }
    s
}

/// The PCA-optimal compression rotation: an orthogonal `U` whose rows map
/// the top-d principal directions onto the kept basis states and the
/// remaining directions onto the trash states.
///
/// # Errors
/// Propagates eigensolver failures.
pub fn pca_rotation(
    inputs: &[Vec<f64>],
    dim: usize,
    compressed_dim: usize,
    subspace: SubspaceKind,
) -> Result<Matrix> {
    let s = second_moment(inputs, dim);
    let eig = sym_eig::sym_eig(&s)?;
    // Row r of U = eigenvector assigned to output dimension r.
    // Kept dims receive the top-d eigenvectors (largest eigenvalues).
    let kept: Vec<usize> = match subspace {
        SubspaceKind::KeepLast => (dim - compressed_dim..dim).collect(),
        SubspaceKind::KeepFirst => (0..compressed_dim).collect(),
    };
    let mut u = Matrix::zeros(dim, dim);
    let mut next_top = 0; // next principal index for kept rows
    let mut next_rest = compressed_dim; // remaining eigenvectors for trash rows
    for r in 0..dim {
        let eig_idx = if kept.contains(&r) {
            let i = next_top;
            next_top += 1;
            i
        } else {
            let i = next_rest;
            next_rest += 1;
            i
        };
        for c in 0..dim {
            u.set(r, c, eig.eigenvectors.get(c, eig_idx));
        }
    }
    Ok(u)
}

/// Build a mesh initialised at the PCA-optimal rotation via the Clements
/// decomposition, padded with identity layers to at least `min_layers`.
///
/// # Errors
/// Propagates decomposition failures.
pub fn spectral_mesh(
    inputs: &[Vec<f64>],
    dim: usize,
    compressed_dim: usize,
    subspace: SubspaceKind,
    min_layers: usize,
) -> Result<Mesh> {
    let u = pca_rotation(inputs, dim, compressed_dim, subspace)?;
    let seq = clements_decompose(&u, 1e-8)?;
    let (mesh, _signs) = Mesh::from_sequence_packed(&seq);
    if mesh.n_layers() >= min_layers {
        return Ok(mesh);
    }
    let mut layers: Vec<MeshLayer> = mesh.layers().to_vec();
    for _ in mesh.n_layers()..min_layers {
        layers.push(MeshLayer::zeros(dim));
    }
    Ok(Mesh::from_layers(layers))
}

/// The PCA lower bound on the summed compression loss: the total energy
/// outside the top-d eigenspace, `Σ_{k>d} λ_k` of the second-moment
/// matrix. No unitary compression can do better on this dataset.
///
/// # Errors
/// Propagates eigensolver failures.
pub fn compression_loss_lower_bound(
    inputs: &[Vec<f64>],
    dim: usize,
    compressed_dim: usize,
) -> Result<f64> {
    let s = second_moment(inputs, dim);
    let eig = sym_eig::sym_eig(&s)?;
    Ok(eig
        .eigenvalues
        .iter()
        .skip(compressed_dim)
        .map(|&l| l.max(0.0))
        .sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compression::CompressionNetwork;
    use crate::config::CompressionTargetKind;
    use crate::encoding;
    use qn_image::datasets;

    fn encoded_inputs(data: &[qn_image::GrayImage]) -> Vec<Vec<f64>> {
        encoding::encode_images(data, 16)
            .unwrap()
            .into_iter()
            .map(|e| e.amplitudes)
            .collect()
    }

    #[test]
    fn pca_rotation_is_orthogonal() {
        let inputs = encoded_inputs(&datasets::paper_binary_16(25));
        let u = pca_rotation(&inputs, 16, 4, SubspaceKind::KeepLast).unwrap();
        assert!(u.is_orthogonal(1e-9));
    }

    #[test]
    fn spectral_init_achieves_pca_bound_on_rank4_data() {
        // Exactly rank-4 data: the bound is ~0 and spectral init hits it.
        let data = datasets::low_rank_binary(25, 4, 4, 4, 21);
        let inputs = encoded_inputs(&data);
        let bound = compression_loss_lower_bound(&inputs, 16, 4).unwrap();
        assert!(bound < 1e-12, "bound {bound}");
        let mesh = spectral_mesh(&inputs, 16, 4, SubspaceKind::KeepLast, 12).unwrap();
        let net = CompressionNetwork::new(
            mesh,
            4,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let loss = net.loss(&inputs);
        assert!(loss.sum < 1e-12, "spectral loss {}", loss.sum);
    }

    #[test]
    fn spectral_init_matches_bound_on_full_rank_data() {
        let data = datasets::paper_binary_16(25);
        let inputs = encoded_inputs(&data);
        let bound = compression_loss_lower_bound(&inputs, 16, 4).unwrap();
        assert!(bound > 0.0); // structured glyphs add off-subspace energy
        let mesh = spectral_mesh(&inputs, 16, 4, SubspaceKind::KeepLast, 12).unwrap();
        let net = CompressionNetwork::new(
            mesh,
            4,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let loss = net.loss(&inputs);
        assert!(
            (loss.sum - bound).abs() < 1e-8,
            "spectral loss {} vs bound {bound}",
            loss.sum
        );
    }

    #[test]
    fn spectral_mesh_pads_to_min_layers() {
        let inputs = encoded_inputs(&datasets::paper_binary_16(25));
        let mesh = spectral_mesh(&inputs, 16, 4, SubspaceKind::KeepLast, 40).unwrap();
        assert_eq!(mesh.n_layers(), 40);
    }

    #[test]
    fn keep_first_subspace_works_too() {
        let data = datasets::low_rank_binary(25, 4, 4, 4, 22);
        let inputs = encoded_inputs(&data);
        let mesh = spectral_mesh(&inputs, 16, 4, SubspaceKind::KeepFirst, 12).unwrap();
        let net = CompressionNetwork::new(
            mesh,
            4,
            SubspaceKind::KeepFirst,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        assert!(net.loss(&inputs).sum < 1e-12);
    }

    #[test]
    fn bound_is_monotone_in_d() {
        let inputs = encoded_inputs(&datasets::paper_binary_16(25));
        let b2 = compression_loss_lower_bound(&inputs, 16, 2).unwrap();
        let b4 = compression_loss_lower_bound(&inputs, 16, 4).unwrap();
        let b8 = compression_loss_lower_bound(&inputs, 16, 8).unwrap();
        assert!(b2 >= b4 && b4 >= b8);
        let b16 = compression_loss_lower_bound(&inputs, 16, 16).unwrap();
        assert!(b16.abs() < 1e-12);
    }
}
