//! Error type for the core crate.

use std::fmt;

/// Errors produced by the quantum-network pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Invalid network configuration (explains which constraint failed).
    InvalidConfig(String),
    /// The input data is unusable (wrong size, all-zero sample, …).
    InvalidData(String),
    /// Forwarded simulator error.
    Sim(qn_sim::SimError),
    /// Forwarded linear-algebra error.
    Linalg(qn_linalg::LinalgError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            CoreError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            CoreError::Sim(e) => write!(f, "simulator error: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<qn_sim::SimError> for CoreError {
    fn from(e: qn_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<qn_linalg::LinalgError> for CoreError {
    fn from(e: qn_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::InvalidConfig("d > N".into());
        assert!(e.to_string().contains("d > N"));
        let e: CoreError = qn_sim::SimError::ZeroNorm.into();
        assert!(matches!(e, CoreError::Sim(_)));
        assert!(e.to_string().contains("zero norm"));
        let e: CoreError = qn_linalg::LinalgError::Singular.into();
        assert!(matches!(e, CoreError::Linalg(_)));
        let e = CoreError::InvalidData("empty".into());
        assert!(e.to_string().contains("empty"));
    }
}
