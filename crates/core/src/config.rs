//! Network and training configuration.

use crate::error::CoreError;
use crate::gradient::GradientMethod;
use crate::Result;

/// Which subspace `P1` keeps (paper Fig. 2; the 8-dim example keeps the
/// *last* d dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubspaceKind {
    /// Keep the last `d` basis states (paper convention, default).
    KeepLast,
    /// Keep the first `d` basis states.
    KeepFirst,
}

/// Compression-target strategy for `L_C` (see `DESIGN.md` — the paper's
/// Eq. 5 requires per-sample targets `b_i` but only gives one example).
#[derive(Debug, Clone, PartialEq)]
pub enum CompressionTargetKind {
    /// Penalise only the amplitude that leaks *outside* the kept subspace
    /// (`b = 0` on discarded dims, unconstrained inside) — the standard
    /// quantum-autoencoder loss and the strategy that makes faithful
    /// reconstruction possible. Default.
    TrashPenalty,
    /// The paper-literal example: a shared target with uniform probability
    /// `1/d` on every kept dimension (amplitude `1/√d`) and zero outside.
    Uniform,
    /// Explicit per-sample target amplitudes (length-N vectors).
    Custom(Vec<Vec<f64>>),
}

/// θ initialisation strategy ("θ can be initialized randomly or uniformly;
/// different initialization methods will bring different training
/// effects").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitStrategy {
    /// iid uniform on `[0, 2π)`.
    RandomUniform,
    /// iid uniform on `[-scale, scale]` (near-identity start).
    SmallRandom(f64),
    /// All zeros (exact identity start).
    Identity,
    /// Spectral: load the PCA-optimal rotation via Clements decomposition
    /// (extension; see `spectral`). Falls back to the packed layer count.
    Spectral,
}

/// How the two networks' updates are interleaved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingSchedule {
    /// Each iteration updates `U_C` then `U_R` (both curves advance along
    /// the same iteration axis, as in the paper's Fig. 4c). Default.
    Joint,
    /// Train `U_C` for all iterations first, then `U_R` (a literal reading
    /// of Algorithm 1's sequential loops).
    Sequential,
}

/// Optimiser selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// Plain gradient descent (paper Eq. 9).
    Gd,
    /// Gradient descent with classical momentum.
    Momentum {
        /// Momentum coefficient β.
        beta: f64,
    },
    /// Adam.
    Adam {
        /// First-moment decay β₁.
        beta1: f64,
        /// Second-moment decay β₂.
        beta2: f64,
    },
}

/// Complete configuration of the quantum compression/reconstruction
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// State dimension `N` (paper: 16).
    pub dim: usize,
    /// Compressed dimension `d` (paper: 4).
    pub compressed_dim: usize,
    /// Compression-network layers `l_C` (paper: 12).
    pub layers_c: usize,
    /// Reconstruction-network layers `l_R` (paper: 14).
    pub layers_r: usize,
    /// Learning rate η (paper: 0.01).
    pub learning_rate: f64,
    /// Training iterations (paper: 150).
    pub iterations: usize,
    /// RNG seed for initialisation.
    pub seed: u64,
    /// Gradient computation method.
    pub gradient: GradientMethod,
    /// Compression-target strategy.
    pub target: CompressionTargetKind,
    /// Kept-subspace convention.
    pub subspace: SubspaceKind,
    /// θ initialisation.
    pub init: InitStrategy,
    /// Update interleaving.
    pub schedule: TrainingSchedule,
    /// Optimiser.
    pub optimizer: OptimizerKind,
    /// Divide gradients by `M × N` as in Algorithm 1 (`gC = 2·sum(…)/(M×N)`).
    pub normalize_gradient: bool,
    /// Initialise `U_R` as the reversed `U_C` (paper Sec. II-C) instead of
    /// randomly.
    pub init_r_from_c: bool,
    /// Accuracy tolerance of Eq. 10 (paper: 0.01).
    pub accuracy_tol: f64,
    /// Sample index whose amplitude trajectories are recorded (paper
    /// Fig. 4e/f tracks sample 25, i.e. index 24).
    pub tracked_sample: usize,
    /// Measurement shots for amplitude estimation; 0 = exact simulation
    /// (paper). Non-zero injects shot noise into training (extension).
    pub shots: usize,
    /// Mini-batch size for gradient estimation; `None` = full batch.
    /// The paper's Sec. III-C: "we can use the GD algorithm or batch
    /// gradient descent algorithm for larger data". Batches are drawn
    /// with a seeded shuffle, so runs stay deterministic.
    pub batch_size: Option<usize>,
}

impl NetworkConfig {
    /// The paper's Sec. IV-A structure: `N = 16`, `d = 4`, `l_C = 12`,
    /// `l_R = 14`, 150 iterations, tracked sample 25.
    ///
    /// Two engineering deviations, both measured in the A1/optimizer
    /// ablations and documented in `EXPERIMENTS.md`: the gradient defaults
    /// to the exact reverse-mode method (the paper's forward difference
    /// with Δ = 10⁻⁸ loses ~half the significant digits in f64), and the
    /// optimiser defaults to Adam at η = 0.05 (the paper's plain GD at
    /// η = 0.01 plateaus far from the PCA bound on this landscape —
    /// [`NetworkConfig::paper_exact`] reproduces that behaviour).
    pub fn paper_default() -> Self {
        NetworkConfig {
            dim: 16,
            compressed_dim: 4,
            layers_c: 12,
            layers_r: 14,
            learning_rate: 0.05,
            iterations: 150,
            seed: 7,
            gradient: GradientMethod::Analytic,
            target: CompressionTargetKind::TrashPenalty,
            subspace: SubspaceKind::KeepLast,
            init: InitStrategy::SmallRandom(0.3),
            schedule: TrainingSchedule::Joint,
            optimizer: OptimizerKind::Adam {
                beta1: 0.9,
                beta2: 0.999,
            },
            normalize_gradient: false,
            init_r_from_c: true,
            accuracy_tol: 0.01,
            tracked_sample: 24,
            shots: 0,
            batch_size: None,
        }
    }

    /// The paper's training recipe taken literally: plain GD with
    /// η = 0.01 (Eq. 9), forward-difference gradients with Δ = 10⁻⁸
    /// (Eq. 8), gradients divided by M×N (Algorithm 1), and uniform-random
    /// θ initialisation. Kept for the gradient/optimiser ablations, which
    /// show this recipe converging far more slowly than the defaults.
    pub fn paper_exact() -> Self {
        let mut cfg = Self::paper_default();
        cfg.learning_rate = 0.01;
        cfg.gradient = GradientMethod::ForwardDifference { delta: 1e-8 };
        cfg.optimizer = OptimizerKind::Gd;
        cfg.normalize_gradient = true;
        cfg.init = InitStrategy::RandomUniform;
        cfg
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.dim < 2 {
            return Err(CoreError::InvalidConfig(format!(
                "dim must be ≥ 2, got {}",
                self.dim
            )));
        }
        if self.compressed_dim == 0 || self.compressed_dim > self.dim {
            return Err(CoreError::InvalidConfig(format!(
                "compressed_dim must be in 1..={}, got {}",
                self.dim, self.compressed_dim
            )));
        }
        if self.layers_c == 0 || self.layers_r == 0 {
            return Err(CoreError::InvalidConfig(
                "both networks need at least one layer".to_string(),
            ));
        }
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(CoreError::InvalidConfig(format!(
                "learning rate must be positive and finite, got {}",
                self.learning_rate
            )));
        }
        if self.accuracy_tol < 0.0 {
            return Err(CoreError::InvalidConfig(
                "accuracy tolerance must be non-negative".to_string(),
            ));
        }
        if self.batch_size == Some(0) {
            return Err(CoreError::InvalidConfig(
                "batch size must be at least 1".to_string(),
            ));
        }
        if let CompressionTargetKind::Custom(targets) = &self.target {
            if targets.iter().any(|t| t.len() != self.dim) {
                return Err(CoreError::InvalidConfig(
                    "custom compression targets must have length N".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// Builder: set iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Builder: set seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: set learning rate.
    #[must_use]
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Builder: set gradient method.
    #[must_use]
    pub fn with_gradient(mut self, gradient: GradientMethod) -> Self {
        self.gradient = gradient;
        self
    }

    /// Builder: set dimensions `(N, d)`.
    #[must_use]
    pub fn with_dims(mut self, dim: usize, compressed_dim: usize) -> Self {
        self.dim = dim;
        self.compressed_dim = compressed_dim;
        self
    }

    /// Builder: set layer counts `(l_C, l_R)`.
    #[must_use]
    pub fn with_layers(mut self, layers_c: usize, layers_r: usize) -> Self {
        self.layers_c = layers_c;
        self.layers_r = layers_r;
        self
    }

    /// Builder: set compression-target strategy.
    #[must_use]
    pub fn with_target(mut self, target: CompressionTargetKind) -> Self {
        self.target = target;
        self
    }

    /// Builder: set initialisation strategy.
    #[must_use]
    pub fn with_init(mut self, init: InitStrategy) -> Self {
        self.init = init;
        self
    }

    /// Builder: set optimiser.
    #[must_use]
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Builder: set training schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: TrainingSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder: set measurement shots (0 = exact).
    #[must_use]
    pub fn with_shots(mut self, shots: usize) -> Self {
        self.shots = shots;
        self
    }

    /// Builder: set the mini-batch size (`None` = full batch).
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: Option<usize>) -> Self {
        self.batch_size = batch_size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_iv_a_structure() {
        let c = NetworkConfig::paper_default();
        assert_eq!(c.dim, 16);
        assert_eq!(c.compressed_dim, 4);
        assert_eq!(c.layers_c, 12);
        assert_eq!(c.layers_r, 14);
        assert_eq!(c.iterations, 150);
        assert_eq!(c.tracked_sample, 24); // "Figure 25" is index 24
        assert!(c.validate().is_ok());
    }

    #[test]
    fn paper_exact_matches_training_recipe() {
        let c = NetworkConfig::paper_exact();
        assert_eq!(c.learning_rate, 0.01); // η = 0.01
        assert_eq!(c.optimizer, OptimizerKind::Gd); // Eq. 9
        assert!(matches!(
            c.gradient,
            crate::gradient::GradientMethod::ForwardDifference { delta } if delta == 1e-8
        )); // Eq. 8
        assert!(c.normalize_gradient); // Algorithm 1's /(M×N)
        assert_eq!(c.init, InitStrategy::RandomUniform);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let base = NetworkConfig::paper_default();
        assert!(base.clone().with_dims(1, 1).validate().is_err());
        assert!(base.clone().with_dims(16, 0).validate().is_err());
        assert!(base.clone().with_dims(16, 17).validate().is_err());
        assert!(base.clone().with_layers(0, 14).validate().is_err());
        assert!(base.clone().with_learning_rate(0.0).validate().is_err());
        assert!(base
            .clone()
            .with_learning_rate(f64::NAN)
            .validate()
            .is_err());
        let mut bad_tol = base.clone();
        bad_tol.accuracy_tol = -1.0;
        assert!(bad_tol.validate().is_err());
        assert!(base.clone().with_batch_size(Some(0)).validate().is_err());
        assert!(base.clone().with_batch_size(Some(8)).validate().is_ok());
        let bad_custom = base.with_target(CompressionTargetKind::Custom(vec![vec![0.0; 8]]));
        assert!(bad_custom.validate().is_err());
    }

    #[test]
    fn builders_chain() {
        let c = NetworkConfig::paper_default()
            .with_iterations(10)
            .with_seed(42)
            .with_learning_rate(0.1)
            .with_dims(8, 2)
            .with_layers(3, 4)
            .with_shots(100);
        assert_eq!(c.iterations, 10);
        assert_eq!(c.seed, 42);
        assert_eq!(c.learning_rate, 0.1);
        assert_eq!((c.dim, c.compressed_dim), (8, 2));
        assert_eq!((c.layers_c, c.layers_r), (3, 4));
        assert_eq!(c.shots, 100);
        assert!(c.validate().is_ok());
    }
}
