//! Fully complex quantum network — the paper's stated future work.
//!
//! Discussion section: "in the future, it is necessary to retain the phase
//! parameter α in the quantum gates and build a fully complex quantum
//! network, which will be more suitable for more diverse quantum
//! problems … we expect they could directly solve the problem of
//! compression and recovery of known or unknown quantum states."
//!
//! This module implements exactly that: a mesh whose gates carry *both*
//! trainable parameters (θ, α), acting on complex amplitude vectors. The
//! gradient is a central finite difference over the 2·l·(N−1) parameters
//! (the elegant π/2 trick of the real network does not extend to the α
//! derivative, and the parameter counts here are small).

use crate::error::CoreError;
use crate::Result;
use qn_sim::complex::Complex64;
use qn_sim::rotation;

/// A trainable complex beam-splitter mesh: `layers × (dim−1)` gates with
/// per-gate reflectivity θ and phase α.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexNetwork {
    dim: usize,
    layers: usize,
    thetas: Vec<f64>,
    alphas: Vec<f64>,
}

impl ComplexNetwork {
    /// All-zero (identity) network.
    ///
    /// # Errors
    /// Returns [`CoreError::InvalidConfig`] for `dim < 2` or zero layers.
    pub fn zeros(dim: usize, layers: usize) -> Result<Self> {
        if dim < 2 || layers == 0 {
            return Err(CoreError::InvalidConfig(format!(
                "complex network needs dim ≥ 2 and layers ≥ 1, got dim={dim}, layers={layers}"
            )));
        }
        let p = layers * (dim - 1);
        Ok(ComplexNetwork {
            dim,
            layers,
            thetas: vec![0.0; p],
            alphas: vec![0.0; p],
        })
    }

    /// Random initialisation: θ, α ~ U[−scale, scale].
    ///
    /// # Errors
    /// Same as [`ComplexNetwork::zeros`].
    pub fn random(dim: usize, layers: usize, scale: f64, rng: &mut impl rand::Rng) -> Result<Self> {
        let mut net = Self::zeros(dim, layers)?;
        for t in net.thetas.iter_mut().chain(net.alphas.iter_mut()) {
            *t = (rng.random::<f64>() * 2.0 - 1.0) * scale;
        }
        Ok(net)
    }

    /// Mode count `N`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trainable parameter count (θ and α together).
    pub fn param_count(&self) -> usize {
        2 * self.thetas.len()
    }

    /// Borrow θ (layer-major).
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// Borrow α (layer-major).
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Overwrite both parameter vectors (layer-major).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_parameters(&mut self, thetas: &[f64], alphas: &[f64]) {
        assert_eq!(thetas.len(), self.thetas.len(), "theta length mismatch");
        assert_eq!(alphas.len(), self.alphas.len(), "alpha length mismatch");
        self.thetas.copy_from_slice(thetas);
        self.alphas.copy_from_slice(alphas);
    }

    /// Forward pass on a complex amplitude vector.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn forward(&self, input: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(input.len(), self.dim, "complex forward: dimension mismatch");
        let mut v = input.to_vec();
        self.forward_in_place(&mut v, None, 0.0);
        v
    }

    /// Forward with one parameter perturbed: `which` indexes the combined
    /// parameter vector [θ…, α…].
    fn forward_perturbed(&self, input: &[Complex64], which: usize, delta: f64) -> Vec<Complex64> {
        let mut v = input.to_vec();
        self.forward_in_place(&mut v, Some(which), delta);
        v
    }

    fn forward_in_place(&self, v: &mut [Complex64], perturb: Option<usize>, delta: f64) {
        let gates_per_layer = self.dim - 1;
        let p = self.thetas.len();
        for l in 0..self.layers {
            for k in 0..gates_per_layer {
                let idx = l * gates_per_layer + k;
                let mut theta = self.thetas[idx];
                let mut alpha = self.alphas[idx];
                if let Some(w) = perturb {
                    if w == idx {
                        theta += delta;
                    } else if w == p + idx {
                        alpha += delta;
                    }
                }
                rotation::apply_complex(v, k, theta, alpha).expect("mode in range by construction");
            }
        }
    }

    /// Loss `Σ_i Σ_j |out_i^j − target_i^j|²`.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn loss(&self, inputs: &[Vec<Complex64>], targets: &[Vec<Complex64>]) -> f64 {
        assert_eq!(inputs.len(), targets.len(), "loss: batch sizes differ");
        inputs
            .iter()
            .zip(targets)
            .map(|(x, t)| {
                let out = self.forward(x);
                out.iter()
                    .zip(t)
                    .map(|(o, ti)| (*o - *ti).norm_sq())
                    .sum::<f64>()
            })
            .sum()
    }

    /// Central-difference gradient over the combined [θ…, α…] vector.
    pub fn gradient(
        &self,
        inputs: &[Vec<Complex64>],
        targets: &[Vec<Complex64>],
        delta: f64,
    ) -> Vec<f64> {
        let total = self.param_count();
        // Base outputs are shared by every parameter probe.
        let bases: Vec<Vec<Complex64>> = inputs.iter().map(|x| self.forward(x)).collect();
        qn_linalg::parallel::par_map_indexed(total, |w| {
            let mut g = 0.0;
            for ((x, t), base) in inputs.iter().zip(targets).zip(&bases) {
                let plus = self.forward_perturbed(x, w, delta);
                let minus = self.forward_perturbed(x, w, -delta);
                // d|out − t|²/dp = 2 Re[(out − t)* · dout/dp]
                for j in 0..self.dim {
                    let d = (plus[j] - minus[j]).scale(1.0 / (2.0 * delta));
                    let r = base[j] - t[j];
                    g += 2.0 * (r.conj() * d).re;
                }
            }
            g
        })
    }

    /// Train to map each input state to its target state by gradient
    /// descent; returns the per-iteration loss curve.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn fit_pairs(
        &mut self,
        inputs: &[Vec<Complex64>],
        targets: &[Vec<Complex64>],
        learning_rate: f64,
        iterations: usize,
    ) -> Vec<f64> {
        let mut curve = Vec::with_capacity(iterations);
        let p = self.thetas.len();
        for _ in 0..iterations {
            curve.push(self.loss(inputs, targets));
            let g = self.gradient(inputs, targets, 1e-6);
            for i in 0..p {
                self.thetas[i] -= learning_rate * g[i];
                self.alphas[i] -= learning_rate * g[p + i];
            }
        }
        curve
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::complex::{I, ONE, ZERO};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn construction_validates() {
        assert!(ComplexNetwork::zeros(1, 1).is_err());
        assert!(ComplexNetwork::zeros(4, 0).is_err());
        let net = ComplexNetwork::zeros(4, 2).unwrap();
        assert_eq!(net.param_count(), 2 * 2 * 3);
        assert_eq!(net.dim(), 4);
    }

    #[test]
    fn identity_network_passes_through() {
        let net = ComplexNetwork::zeros(3, 2).unwrap();
        let x = vec![c(0.5, 0.1), c(-0.3, 0.2), c(0.0, 0.7)];
        let y = net.forward(&x);
        for (a, b) in y.iter().zip(&x) {
            assert!(a.approx_eq(*b, 1e-15));
        }
    }

    #[test]
    fn forward_preserves_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = ComplexNetwork::random(5, 3, 2.0, &mut rng).unwrap();
        let x = vec![
            c(0.5, 0.1),
            c(-0.3, 0.2),
            c(0.0, 0.7),
            c(0.2, 0.0),
            c(0.1, -0.1),
        ];
        let n_in: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let y = net.forward(&x);
        let n_out: f64 = y.iter().map(|z| z.norm_sq()).sum();
        assert!((n_in - n_out).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_loss_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut net = ComplexNetwork::random(3, 2, 0.5, &mut rng).unwrap();
        let inputs = vec![vec![ONE, ZERO, ZERO], vec![ZERO, I, ZERO]];
        let targets = vec![vec![ZERO, ONE, ZERO], vec![ZERO, ZERO, I]];
        let g = net.gradient(&inputs, &targets, 1e-6);
        let h = 1e-6;
        for w in [0usize, 3, 5, 7] {
            let p = net.thetas.len();
            let orig = if w < p {
                let o = net.thetas[w];
                net.thetas[w] = o + h;
                let lp = net.loss(&inputs, &targets);
                net.thetas[w] = o - h;
                let lm = net.loss(&inputs, &targets);
                net.thetas[w] = o;
                (lp - lm) / (2.0 * h)
            } else {
                let o = net.alphas[w - p];
                net.alphas[w - p] = o + h;
                let lp = net.loss(&inputs, &targets);
                net.alphas[w - p] = o - h;
                let lm = net.loss(&inputs, &targets);
                net.alphas[w - p] = o;
                (lp - lm) / (2.0 * h)
            };
            assert!(
                (orig - g[w]).abs() < 1e-4,
                "param {w}: loss-fd {orig} vs grad {}",
                g[w]
            );
        }
    }

    #[test]
    fn learns_a_complex_state_mapping() {
        // Map |0⟩ → i|1⟩ (impossible for a real network: needs phases).
        let mut rng = StdRng::seed_from_u64(11);
        let mut net = ComplexNetwork::random(2, 2, 0.3, &mut rng).unwrap();
        let inputs = vec![vec![ONE, ZERO]];
        let targets = vec![vec![ZERO, I]];
        let curve = net.fit_pairs(&inputs, &targets, 0.2, 300);
        let first = curve[0];
        let last = *curve.last().unwrap();
        assert!(last < 1e-3, "loss {first} → {last}");
        let out = net.forward(&inputs[0]);
        assert!(out[1].im > 0.9, "output {:?}", out);
    }

    #[test]
    fn recovers_quantum_states_through_compression() {
        // Compress two orthogonal complex states into 1 mode and recover:
        // encoder maps both into span{|1⟩} ⊕ phases, decoder inverts.
        // Here we fit a 4-mode identity-like task end to end.
        let mut rng = StdRng::seed_from_u64(13);
        let mut net = ComplexNetwork::random(4, 4, 0.3, &mut rng).unwrap();
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let inputs = vec![
            vec![c(s, 0.0), c(0.0, s), ZERO, ZERO],
            vec![c(s, 0.0), c(0.0, -s), ZERO, ZERO],
        ];
        // Target: rotate the relative phase away (map to real states).
        let targets = vec![
            vec![c(s, 0.0), c(s, 0.0), ZERO, ZERO],
            vec![c(s, 0.0), c(-s, 0.0), ZERO, ZERO],
        ];
        let curve = net.fit_pairs(&inputs, &targets, 0.1, 400);
        assert!(
            *curve.last().unwrap() < 0.05,
            "final loss {}",
            curve.last().unwrap()
        );
    }
}
