//! The paper's primary contribution: image compression and reconstruction
//! with a trainable quantum network.
//!
//! Pipeline (paper Fig. 1):
//!
//! 1. **Encode** (①, [`encoding`]): classical pixel vectors `x_i` become
//!    probability amplitudes `A_i` of quantum states `|ψ_i⟩` (Eq. 1).
//! 2. **Compress** (②, [`compression`]): `|ψ_i⟩` passes through the
//!    trainable mesh `U_C` and the projector `P1` keeps a d-dimensional
//!    subspace (Eq. 3). The compression loss drives amplitude out of the
//!    discarded subspace (Eq. 5, `L_C`).
//! 3. **Reconstruct** (③, [`reconstruction`]): the compressed state passes
//!    through a second trainable mesh `U_R` back to the full space
//!    (Eq. 4); `L_R` compares output amplitudes `B_i` to the encoding
//!    targets `A_i`.
//! 4. **Decode** (④, [`encoding::decode`]): measured amplitudes are
//!    converted back to classical pixels `x̂_i` (Eq. 2).
//!
//! Training ([`trainer`], Algorithm 1) is gradient descent on the gate
//! angles θ, with the paper's finite-difference gradient (Eq. 8,
//! Δ = 10⁻⁸) plus a central-difference variant and an exact reverse-mode
//! (backprop) gradient as engineering upgrades — see
//! [`gradient::GradientMethod`].
//!
//! Extensions beyond the paper's evaluation, each flagged in `DESIGN.md`:
//! [`spectral`] (PCA-optimal initialisation via Clements decomposition),
//! [`complexnet`] (trainable phases α — the paper's stated future work),
//! and shot-noise training via `qn-sim::shots`.

pub mod autoencoder;
pub mod complexnet;
pub mod compression;
pub mod config;
pub mod encoding;
pub mod error;
pub mod gradient;
pub mod loss;
pub mod optimizer;
pub mod reconstruction;
pub mod spectral;
pub mod trainer;

pub use autoencoder::QuantumAutoencoder;
pub use config::NetworkConfig;
pub use error::CoreError;
pub use trainer::{TrainReport, Trainer, TrainingHistory};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
