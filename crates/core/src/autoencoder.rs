//! End-to-end pipeline: encode → compress → reconstruct → decode.

use crate::compression::CompressionNetwork;
use crate::encoding;
use crate::reconstruction::ReconstructionNetwork;
use crate::Result;
use qn_image::GrayImage;

/// The full quantum autoencoder of the paper's Fig. 1: both trained
/// networks plus the encode/decode conversions.
#[derive(Debug, Clone)]
pub struct QuantumAutoencoder {
    /// Compression half (`U_C`, `P1`).
    pub compression: CompressionNetwork,
    /// Reconstruction half (`U_R`).
    pub reconstruction: ReconstructionNetwork,
}

impl QuantumAutoencoder {
    /// Assemble from the two trained networks.
    pub fn new(compression: CompressionNetwork, reconstruction: ReconstructionNetwork) -> Self {
        QuantumAutoencoder {
            compression,
            reconstruction,
        }
    }

    /// State dimension `N`.
    pub fn dim(&self) -> usize {
        self.compression.dim()
    }

    /// Run a raw data vector through the full pipeline, returning the
    /// decoded reconstruction `x̂` (paper Eq. 1 → Eq. 3 → Eq. 4 → Eq. 2).
    ///
    /// # Errors
    /// Propagates encoding errors (zero vector, oversize data).
    pub fn roundtrip(&self, x: &[f64]) -> Result<Vec<f64>> {
        let enc = encoding::encode(x, self.dim())?;
        let compressed = self.compression.compress(&enc.amplitudes);
        let out = self.reconstruction.reconstruct(&compressed);
        Ok(encoding::decode(&out, enc.norm, enc.data_len))
    }

    /// Reconstruct an image through the pipeline (same dimensions out).
    ///
    /// # Errors
    /// Propagates encoding errors.
    pub fn roundtrip_image(&self, img: &GrayImage) -> Result<GrayImage> {
        let enc = encoding::encode(img.pixels(), self.dim())?;
        let compressed = self.compression.compress(&enc.amplitudes);
        let out = self.reconstruction.reconstruct(&compressed);
        encoding::decode_image(&out, enc.norm, img.width(), img.height())
    }

    /// The compressed representation of a data vector: the `d` kept
    /// amplitudes plus the stored norm — everything a receiver needs.
    ///
    /// # Errors
    /// Propagates encoding errors.
    pub fn compressed_representation(&self, x: &[f64]) -> Result<(Vec<f64>, f64)> {
        let enc = encoding::encode(x, self.dim())?;
        let compressed = self.compression.compress(&enc.amplitudes);
        let kept: Vec<f64> = self
            .compression
            .projector()
            .kept_indices()
            .iter()
            .map(|&j| compressed[j])
            .collect();
        Ok((kept, enc.norm))
    }

    /// Classical storage ratio: kept amplitudes + 1 norm vs original
    /// pixels (e.g. (4+1)/16 for the paper's setup).
    pub fn compression_ratio(&self) -> f64 {
        (self.compression.compressed_dim() as f64 + 1.0) / self.dim() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionTargetKind, SubspaceKind};
    use qn_photonic::Mesh;

    /// Identity autoencoder: zero-angle meshes, full-dimension "compression".
    fn identity_autoencoder(dim: usize) -> QuantumAutoencoder {
        let comp = CompressionNetwork::new(
            Mesh::zeros(dim, 2),
            dim,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let recon = ReconstructionNetwork::new(Mesh::zeros(dim, 2));
        QuantumAutoencoder::new(comp, recon)
    }

    #[test]
    fn identity_pipeline_is_lossless() {
        let ae = identity_autoencoder(8);
        let x = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 1.0];
        let back = ae.roundtrip(&x).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn image_roundtrip_preserves_dimensions() {
        let ae = identity_autoencoder(16);
        let img = GrayImage::from_glyph(&["#..#", ".##.", ".##.", "#..#"]).unwrap();
        let back = ae.roundtrip_image(&img).unwrap();
        assert_eq!((back.width(), back.height()), (4, 4));
        for (a, b) in back.pixels().iter().zip(img.pixels()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn compressed_representation_has_d_amplitudes() {
        let comp = CompressionNetwork::new(
            Mesh::zeros(8, 1),
            3,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let recon = ReconstructionNetwork::new(Mesh::zeros(8, 1));
        let ae = QuantumAutoencoder::new(comp, recon);
        let (kept, norm) = ae
            .compressed_representation(&[0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0, 4.0])
            .unwrap();
        assert_eq!(kept.len(), 3);
        assert!((norm - 5.0).abs() < 1e-12);
        assert!((ae.compression_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_vector_is_rejected() {
        let ae = identity_autoencoder(4);
        assert!(ae.roundtrip(&[0.0; 4]).is_err());
    }

    #[test]
    fn paper_ratio_is_5_over_16() {
        let comp = CompressionNetwork::new(
            Mesh::zeros(16, 1),
            4,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let ae = QuantumAutoencoder::new(comp, ReconstructionNetwork::new(Mesh::zeros(16, 1)));
        assert!((ae.compression_ratio() - 5.0 / 16.0).abs() < 1e-15);
    }
}
