//! End-to-end pipeline: encode → compress → reconstruct → decode.

use crate::compression::CompressionNetwork;
use crate::encoding;
use crate::reconstruction::ReconstructionNetwork;
use crate::Result;
use qn_backend::MeshBackend;
use qn_image::GrayImage;

/// The full quantum autoencoder of the paper's Fig. 1: both trained
/// networks plus the encode/decode conversions.
#[derive(Debug, Clone)]
pub struct QuantumAutoencoder {
    /// Compression half (`U_C`, `P1`).
    pub compression: CompressionNetwork,
    /// Reconstruction half (`U_R`).
    pub reconstruction: ReconstructionNetwork,
}

impl QuantumAutoencoder {
    /// Assemble from the two trained networks.
    pub fn new(compression: CompressionNetwork, reconstruction: ReconstructionNetwork) -> Self {
        QuantumAutoencoder {
            compression,
            reconstruction,
        }
    }

    /// State dimension `N`.
    pub fn dim(&self) -> usize {
        self.compression.dim()
    }

    /// Run a raw data vector through the full pipeline, returning the
    /// decoded reconstruction `x̂` (paper Eq. 1 → Eq. 3 → Eq. 4 → Eq. 2).
    ///
    /// # Errors
    /// Propagates encoding errors (zero vector, oversize data).
    pub fn roundtrip(&self, x: &[f64]) -> Result<Vec<f64>> {
        let enc = encoding::encode(x, self.dim())?;
        let compressed = self.compression.compress(&enc.amplitudes);
        let out = self.reconstruction.reconstruct(&compressed);
        Ok(encoding::decode(&out, enc.norm, enc.data_len))
    }

    /// Reconstruct an image through the pipeline (same dimensions out).
    ///
    /// # Errors
    /// Propagates encoding errors.
    pub fn roundtrip_image(&self, img: &GrayImage) -> Result<GrayImage> {
        let enc = encoding::encode(img.pixels(), self.dim())?;
        let compressed = self.compression.compress(&enc.amplitudes);
        let out = self.reconstruction.reconstruct(&compressed);
        encoding::decode_image(&out, enc.norm, img.width(), img.height())
    }

    /// Run a batch of raw data vectors through the full pipeline on an
    /// explicit execution backend: both mesh passes are dispatched as
    /// batches (`U_C` forward, then `U_R` forward on the projected
    /// states), so a panel backend sweeps each layer across the whole
    /// batch. Per-sample results are bit-identical to
    /// [`QuantumAutoencoder::roundtrip`] under every backend.
    ///
    /// # Errors
    /// Propagates encoding errors (zero vector, oversize data) from any
    /// sample.
    pub fn roundtrip_batch_with(
        &self,
        xs: &[Vec<f64>],
        backend: &dyn MeshBackend,
    ) -> Result<Vec<Vec<f64>>> {
        let encoded = xs
            .iter()
            .map(|x| encoding::encode(x, self.dim()))
            .collect::<Result<Vec<_>>>()?;
        let amplitudes: Vec<Vec<f64>> = encoded.iter().map(|e| e.amplitudes.clone()).collect();
        let compressed = self.compression.compress_batch_with(&amplitudes, backend);
        let outs = self
            .reconstruction
            .reconstruct_batch_with(&compressed, backend);
        Ok(outs
            .iter()
            .zip(&encoded)
            .map(|(out, enc)| encoding::decode(out, enc.norm, enc.data_len))
            .collect())
    }

    /// The compressed representation of a data vector: the `d` kept
    /// amplitudes plus the stored norm — everything a receiver needs.
    ///
    /// # Errors
    /// Propagates encoding errors.
    pub fn compressed_representation(&self, x: &[f64]) -> Result<(Vec<f64>, f64)> {
        let enc = encoding::encode(x, self.dim())?;
        let compressed = self.compression.compress(&enc.amplitudes);
        let kept: Vec<f64> = self
            .compression
            .projector()
            .kept_indices()
            .iter()
            .map(|&j| compressed[j])
            .collect();
        Ok((kept, enc.norm))
    }

    /// Classical storage ratio: kept amplitudes + 1 norm vs original
    /// pixels (e.g. (4+1)/16 for the paper's setup).
    pub fn compression_ratio(&self) -> f64 {
        (self.compression.compressed_dim() as f64 + 1.0) / self.dim() as f64
    }

    /// Total trainable parameter count across both meshes (θ and α).
    pub fn param_count(&self) -> usize {
        2 * (self.compression.mesh().param_count() + self.reconstruction.mesh().param_count())
    }

    /// Export every trainable parameter as one flat vector, in the stable
    /// order `θ_C ‖ α_C ‖ θ_R ‖ α_R` (each block layer-major). Model
    /// persistence and external optimisers round-trip through this; the
    /// order is part of the `qn-codec` model-file format and must not
    /// change without a format-version bump.
    pub fn export_parameters(&self) -> Vec<f64> {
        let mut params = Vec::with_capacity(self.param_count());
        params.extend(self.compression.mesh().thetas());
        params.extend(self.compression.mesh().alphas());
        params.extend(self.reconstruction.mesh().thetas());
        params.extend(self.reconstruction.mesh().alphas());
        params
    }

    /// Overwrite every trainable parameter from a flat vector produced by
    /// [`QuantumAutoencoder::export_parameters`] on a structurally
    /// identical autoencoder (same dims and layer counts).
    ///
    /// # Errors
    /// Returns [`crate::CoreError::InvalidData`] on length mismatch.
    pub fn import_parameters(&mut self, params: &[f64]) -> Result<()> {
        if params.len() != self.param_count() {
            return Err(crate::CoreError::InvalidData(format!(
                "parameter vector has length {}, autoencoder needs {}",
                params.len(),
                self.param_count()
            )));
        }
        let nc = self.compression.mesh().param_count();
        let nr = self.reconstruction.mesh().param_count();
        let (tc, rest) = params.split_at(nc);
        let (ac, rest) = rest.split_at(nc);
        let (tr, ar) = rest.split_at(nr);
        self.compression.mesh_mut().set_thetas(tc);
        self.compression.mesh_mut().set_alphas(ac);
        self.reconstruction.mesh_mut().set_thetas(tr);
        self.reconstruction.mesh_mut().set_alphas(ar);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompressionTargetKind, SubspaceKind};
    use qn_photonic::Mesh;

    /// Identity autoencoder: zero-angle meshes, full-dimension "compression".
    fn identity_autoencoder(dim: usize) -> QuantumAutoencoder {
        let comp = CompressionNetwork::new(
            Mesh::zeros(dim, 2),
            dim,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let recon = ReconstructionNetwork::new(Mesh::zeros(dim, 2));
        QuantumAutoencoder::new(comp, recon)
    }

    #[test]
    fn identity_pipeline_is_lossless() {
        let ae = identity_autoencoder(8);
        let x = vec![1.0, 0.0, 2.0, 0.0, 0.0, 3.0, 0.0, 1.0];
        let back = ae.roundtrip(&x).unwrap();
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn image_roundtrip_preserves_dimensions() {
        let ae = identity_autoencoder(16);
        let img = GrayImage::from_glyph(&["#..#", ".##.", ".##.", "#..#"]).unwrap();
        let back = ae.roundtrip_image(&img).unwrap();
        assert_eq!((back.width(), back.height()), (4, 4));
        for (a, b) in back.pixels().iter().zip(img.pixels()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn compressed_representation_has_d_amplitudes() {
        let comp = CompressionNetwork::new(
            Mesh::zeros(8, 1),
            3,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let recon = ReconstructionNetwork::new(Mesh::zeros(8, 1));
        let ae = QuantumAutoencoder::new(comp, recon);
        let (kept, norm) = ae
            .compressed_representation(&[0.0, 0.0, 0.0, 0.0, 0.0, 3.0, 0.0, 4.0])
            .unwrap();
        assert_eq!(kept.len(), 3);
        assert!((norm - 5.0).abs() < 1e-12);
        assert!((ae.compression_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parameter_export_import_roundtrips() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let comp = CompressionNetwork::new(
            Mesh::random(8, 3, &mut rng),
            3,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let recon = ReconstructionNetwork::new(Mesh::random(8, 4, &mut rng));
        let ae = QuantumAutoencoder::new(comp, recon);
        let params = ae.export_parameters();
        assert_eq!(params.len(), ae.param_count());
        assert_eq!(params.len(), 2 * (3 * 7 + 4 * 7));

        // Import into a structurally identical zero autoencoder.
        let comp0 = CompressionNetwork::new(
            Mesh::zeros(8, 3),
            3,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let mut other =
            QuantumAutoencoder::new(comp0, ReconstructionNetwork::new(Mesh::zeros(8, 4)));
        other.import_parameters(&params).unwrap();
        assert_eq!(other.export_parameters(), params);
        let x = [0.3, -0.1, 0.5, 0.0, 0.2, 0.7, -0.4, 0.1];
        assert_eq!(other.compression.forward(&x), ae.compression.forward(&x));

        // Wrong lengths are rejected.
        assert!(other.import_parameters(&params[1..]).is_err());
    }

    #[test]
    fn subspace_kind_is_recorded() {
        use crate::compression::CompressionNetwork;
        for kind in [SubspaceKind::KeepLast, SubspaceKind::KeepFirst] {
            let net = CompressionNetwork::new(
                Mesh::zeros(4, 1),
                2,
                kind,
                CompressionTargetKind::TrashPenalty,
            )
            .unwrap();
            assert_eq!(net.subspace_kind(), kind);
        }
    }

    #[test]
    fn zero_vector_is_rejected() {
        let ae = identity_autoencoder(4);
        assert!(ae.roundtrip(&[0.0; 4]).is_err());
    }

    #[test]
    fn batched_roundtrip_matches_per_sample_roundtrip_on_every_backend() {
        use qn_backend::BackendKind;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let comp = CompressionNetwork::new(
            Mesh::random(8, 3, &mut rng),
            5,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let recon = ReconstructionNetwork::from_reversed_compression(&comp, 4);
        let ae = QuantumAutoencoder::new(comp, recon);
        let xs: Vec<Vec<f64>> = (0..9)
            .map(|i| {
                (0..8)
                    .map(|j| 0.1 + ((i * 8 + j) as f64 * 0.23).cos().abs())
                    .collect()
            })
            .collect();
        let reference: Vec<Vec<f64>> = xs.iter().map(|x| ae.roundtrip(x).unwrap()).collect();
        for kind in BackendKind::ALL {
            let batched = ae.roundtrip_batch_with(&xs, kind.backend()).unwrap();
            assert_eq!(batched, reference, "{kind}");
        }
        // A zero vector anywhere in the batch surfaces as an error.
        let mut bad = xs;
        bad[3] = vec![0.0; 8];
        assert!(ae
            .roundtrip_batch_with(&bad, BackendKind::Panel.backend())
            .is_err());
    }

    #[test]
    fn paper_ratio_is_5_over_16() {
        let comp = CompressionNetwork::new(
            Mesh::zeros(16, 1),
            4,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let ae = QuantumAutoencoder::new(comp, ReconstructionNetwork::new(Mesh::zeros(16, 1)));
        assert!((ae.compression_ratio() - 5.0 / 16.0).abs() < 1e-15);
    }
}
