//! The training loop (paper Algorithm 1 + Sec. IV-A).
//!
//! Each iteration measures the output states, computes the losses of
//! Eq. 5, obtains gradients by the configured method, and applies Eq. 9.
//! The trainer records everything the paper's Fig. 4 plots: per-iteration
//! losses (4c), reconstruction accuracy (4d), the tracked sample's
//! compression/reconstruction amplitudes (4f/4e) and the θ trajectories
//! with gradient norms (4g).

use crate::autoencoder::QuantumAutoencoder;
use crate::compression::CompressionNetwork;
use crate::config::{InitStrategy, NetworkConfig, TrainingSchedule};
use crate::encoding::{self, EncodedSample};
use crate::error::CoreError;
use crate::gradient;
use crate::loss::Loss;
use crate::optimizer::{self, Optimizer};
use crate::reconstruction::ReconstructionNetwork;
use crate::spectral;
use crate::Result;
use qn_image::{metrics, GrayImage};
use qn_photonic::Mesh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Everything recorded during training, one entry per iteration.
#[derive(Debug, Clone, Default)]
pub struct TrainingHistory {
    /// `L_C` per iteration (Fig. 4c).
    pub compression_loss: Vec<Loss>,
    /// `L_R` per iteration (Fig. 4c).
    pub reconstruction_loss: Vec<Loss>,
    /// Reconstruction accuracy (Eq. 10 with the paper's snap rule, %)
    /// per iteration (Fig. 4d).
    pub accuracy: Vec<f64>,
    /// Accuracy after full binary thresholding at 0.5 (§IV-B's "control
    /// the output to be binary" rule, %), per iteration.
    pub accuracy_binary: Vec<f64>,
    /// ‖∇L_C‖₂ per iteration (Fig. 4g shows gradients dropping to 0).
    pub grad_norm_c: Vec<f64>,
    /// ‖∇L_R‖₂ per iteration.
    pub grad_norm_r: Vec<f64>,
    /// Index of the sample whose amplitudes are traced.
    pub tracked_sample: usize,
    /// Compression-network output amplitudes of the tracked sample per
    /// iteration (Fig. 4f).
    pub compressed_trace: Vec<Vec<f64>>,
    /// Reconstruction-network output amplitudes of the tracked sample per
    /// iteration (Fig. 4e).
    pub reconstructed_trace: Vec<Vec<f64>>,
    /// Full θ snapshot of `U_C` per iteration (Fig. 4g).
    pub theta_c_trace: Vec<Vec<f64>>,
    /// Full θ snapshot of `U_R` per iteration.
    pub theta_r_trace: Vec<Vec<f64>>,
}

/// Final outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Full per-iteration record.
    pub history: TrainingHistory,
    /// Final `L_C` (per-element mean, the paper's reported scale).
    pub final_compression_loss: f64,
    /// Final `L_R` (per-element mean).
    pub final_reconstruction_loss: f64,
    /// Best accuracy over all iterations (the paper reports the maximum:
    /// 97.75 %).
    pub max_accuracy: f64,
    /// Accuracy at the last iteration.
    pub final_accuracy: f64,
    /// Best binary-threshold accuracy over all iterations.
    pub max_accuracy_binary: f64,
    /// Binary-threshold accuracy at the last iteration.
    pub final_accuracy_binary: f64,
    /// Wall-clock training time in seconds (Table I's "CPU runs").
    pub train_seconds: f64,
}

/// Per-iteration event passed to training observers.
#[derive(Debug, Clone, Copy)]
pub struct IterationEvent {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Compression loss at this iteration.
    pub loss_c: Loss,
    /// Reconstruction loss at this iteration.
    pub loss_r: Loss,
    /// Accuracy (%) at this iteration.
    pub accuracy: f64,
}

/// Trains the compression and reconstruction networks on an image set.
pub struct Trainer {
    config: NetworkConfig,
    images: Vec<GrayImage>,
    encoded: Vec<EncodedSample>,
    inputs: Vec<Vec<f64>>,
    compression: CompressionNetwork,
    reconstruction: ReconstructionNetwork,
}

impl Trainer {
    /// Validate the configuration, encode the dataset and initialise both
    /// networks.
    ///
    /// # Errors
    /// - [`CoreError::InvalidConfig`] from config validation.
    /// - [`CoreError::InvalidData`] for an empty dataset, oversize images
    ///   or all-zero samples.
    pub fn new(config: NetworkConfig, images: &[GrayImage]) -> Result<Self> {
        config.validate()?;
        if images.is_empty() {
            return Err(CoreError::InvalidData("empty dataset".to_string()));
        }
        let encoded = encoding::encode_images(images, config.dim)?;
        let inputs: Vec<Vec<f64>> = encoded.iter().map(|e| e.amplitudes.clone()).collect();

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mesh_c = match config.init {
            InitStrategy::RandomUniform => Mesh::random(config.dim, config.layers_c, &mut rng),
            InitStrategy::SmallRandom(scale) => {
                Mesh::random_small(config.dim, config.layers_c, scale, &mut rng)
            }
            InitStrategy::Identity => Mesh::zeros(config.dim, config.layers_c),
            InitStrategy::Spectral => spectral::spectral_mesh(
                &inputs,
                config.dim,
                config.compressed_dim,
                config.subspace,
                config.layers_c,
            )?,
        };
        let compression = CompressionNetwork::new(
            mesh_c,
            config.compressed_dim,
            config.subspace,
            config.target.clone(),
        )?;
        let reconstruction = if config.init_r_from_c {
            ReconstructionNetwork::from_reversed_compression(&compression, config.layers_r)
        } else {
            ReconstructionNetwork::new(Mesh::random_small(
                config.dim,
                config.layers_r,
                0.3,
                &mut rng,
            ))
        };
        let tracked = config.tracked_sample.min(images.len() - 1);
        let mut config = config;
        config.tracked_sample = tracked;
        Ok(Trainer {
            config,
            images: images.to_vec(),
            encoded,
            inputs,
            compression,
            reconstruction,
        })
    }

    /// Borrow the current compression network.
    pub fn compression(&self) -> &CompressionNetwork {
        &self.compression
    }

    /// Borrow the current reconstruction network.
    pub fn reconstruction(&self) -> &ReconstructionNetwork {
        &self.reconstruction
    }

    /// The active configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Consume the trainer into the trained autoencoder.
    pub fn into_autoencoder(self) -> QuantumAutoencoder {
        QuantumAutoencoder::new(self.compression, self.reconstruction)
    }

    /// Train with the configured schedule.
    ///
    /// # Errors
    /// Currently infallible after construction, but kept fallible for
    /// forward compatibility with fallible observers.
    pub fn train(&mut self) -> Result<TrainReport> {
        self.train_with_observer(|_| {})
    }

    /// Train, invoking `observer` after every iteration.
    ///
    /// # Errors
    /// See [`Trainer::train`].
    pub fn train_with_observer(
        &mut self,
        mut observer: impl FnMut(IterationEvent),
    ) -> Result<TrainReport> {
        let start = Instant::now();
        let mut history = TrainingHistory {
            tracked_sample: self.config.tracked_sample,
            ..TrainingHistory::default()
        };
        let iters = self.config.iterations;
        let mut opt_c = optimizer::build(
            self.config.optimizer,
            self.config.learning_rate,
            self.compression.mesh().param_count(),
        );
        let mut opt_r = optimizer::build(
            self.config.optimizer,
            self.config.learning_rate,
            self.reconstruction.mesh().param_count(),
        );

        match self.config.schedule {
            TrainingSchedule::Joint => {
                for it in 0..iters {
                    let (loss_c, gn_c) = self.step_compression(it, opt_c.as_mut());
                    let (loss_r, gn_r) = self.step_reconstruction(it, opt_r.as_mut());
                    let (accuracy, accuracy_binary) = self.evaluate_accuracy();
                    self.record(
                        &mut history,
                        loss_c,
                        loss_r,
                        gn_c,
                        gn_r,
                        accuracy,
                        accuracy_binary,
                    );
                    observer(IterationEvent {
                        iteration: it,
                        loss_c,
                        loss_r,
                        accuracy,
                    });
                }
            }
            TrainingSchedule::Sequential => {
                // Phase 1: compression only (Algorithm 1's first loop).
                let mut phase1: Vec<(Loss, f64)> = Vec::with_capacity(iters);
                for it in 0..iters {
                    phase1.push(self.step_compression(it, opt_c.as_mut()));
                    history.compressed_trace.push(
                        self.compression
                            .forward(&self.inputs[self.config.tracked_sample]),
                    );
                    history.theta_c_trace.push(self.compression.mesh().thetas());
                }
                // Phase 2: reconstruction on the trained compressor.
                #[allow(clippy::needless_range_loop)] // `it` also feeds step_reconstruction
                for it in 0..iters {
                    let (loss_c, gn_c) = phase1[it];
                    let (loss_r, gn_r) = self.step_reconstruction(it, opt_r.as_mut());
                    let (accuracy, accuracy_binary) = self.evaluate_accuracy();
                    history.compression_loss.push(loss_c);
                    history.reconstruction_loss.push(loss_r);
                    history.grad_norm_c.push(gn_c);
                    history.grad_norm_r.push(gn_r);
                    history.accuracy.push(accuracy);
                    history.accuracy_binary.push(accuracy_binary);
                    history.reconstructed_trace.push(
                        self.reconstruction.reconstruct(
                            &self
                                .compression
                                .compress(&self.inputs[self.config.tracked_sample]),
                        ),
                    );
                    history
                        .theta_r_trace
                        .push(self.reconstruction.mesh().thetas());
                    observer(IterationEvent {
                        iteration: it,
                        loss_c,
                        loss_r,
                        accuracy,
                    });
                }
            }
        }

        let final_accuracy = history.accuracy.last().copied().unwrap_or(0.0);
        let max_accuracy = history.accuracy.iter().copied().fold(0.0, f64::max);
        let final_accuracy_binary = history.accuracy_binary.last().copied().unwrap_or(0.0);
        let max_accuracy_binary = history.accuracy_binary.iter().copied().fold(0.0, f64::max);
        Ok(TrainReport {
            final_compression_loss: history.compression_loss.last().map_or(0.0, |l| l.mean),
            final_reconstruction_loss: history.reconstruction_loss.last().map_or(0.0, |l| l.mean),
            max_accuracy,
            final_accuracy,
            max_accuracy_binary,
            final_accuracy_binary,
            train_seconds: start.elapsed().as_secs_f64(),
            history,
        })
    }

    /// Mini-batch sample indices for this iteration (`None` = full batch).
    /// A seeded partial Fisher–Yates shuffle keyed on `(seed, iter)` keeps
    /// batched runs deterministic and thread-count invariant.
    fn batch_indices(&self, iter: usize) -> Option<Vec<usize>> {
        let bs = self.config.batch_size?;
        if bs >= self.inputs.len() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(
            self.config.seed ^ 0xBA7C_4000 ^ (iter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut idx: Vec<usize> = (0..self.inputs.len()).collect();
        for i in 0..bs {
            let j = rng.random_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(bs);
        Some(idx)
    }

    /// One gradient step on `U_C`. Returns (loss, gradient norm).
    fn step_compression(&mut self, iter: usize, opt: &mut dyn Optimizer) -> (Loss, f64) {
        let shots = self.config.shots;
        let seed = self.config.seed;
        let comp = &self.compression;
        let batch = self.batch_indices(iter);
        // Map batch-local indices back to dataset indices so per-sample
        // targets (Custom) and noise streams stay aligned.
        let global = |local: usize| batch.as_ref().map_or(local, |b| b[local]);
        let inputs: Vec<Vec<f64>> = match &batch {
            Some(b) => b.iter().map(|&i| self.inputs[i].clone()).collect(),
            None => self.inputs.clone(),
        };
        let residual = move |i: usize, out: &[f64], buf: &mut [f64]| {
            let gi = global(i);
            if shots == 0 {
                comp.residual(gi, out, buf);
            } else {
                let noisy = shot_noise(out, shots, seed, iter as u64, gi as u64);
                comp.residual(gi, &noisy, buf);
            }
        };
        let (sum, mut grad) =
            gradient::loss_and_gradient(comp.mesh(), &inputs, &residual, self.config.gradient);
        let loss = Loss::from_sum(sum, inputs.len(), self.config.dim);
        if self.config.normalize_gradient {
            let f = 1.0 / (inputs.len() * self.config.dim) as f64;
            for g in &mut grad {
                *g *= f;
            }
        }
        let gnorm = qn_linalg::vector::norm2(&grad);
        let mut thetas = self.compression.mesh().thetas();
        opt.step(&mut thetas, &grad);
        self.compression.mesh_mut().set_thetas(&thetas);
        (loss, gnorm)
    }

    /// One gradient step on `U_R`. Returns (loss, gradient norm).
    fn step_reconstruction(&mut self, iter: usize, opt: &mut dyn Optimizer) -> (Loss, f64) {
        let batch = self.batch_indices(iter);
        let batch_inputs: Vec<Vec<f64>> = match &batch {
            Some(b) => b.iter().map(|&i| self.inputs[i].clone()).collect(),
            None => self.inputs.clone(),
        };
        let compressed = self.compression.compress_batch(&batch_inputs);
        let shots = self.config.shots;
        let seed = self.config.seed ^ 0x5A5A_5A5A;
        let global = |local: usize| batch.as_ref().map_or(local, |b| b[local]);
        let targets = &self.inputs;
        let residual = move |i: usize, out: &[f64], buf: &mut [f64]| {
            let gi = global(i);
            if shots == 0 {
                for (j, b) in buf.iter_mut().enumerate() {
                    *b = out[j] - targets[gi][j];
                }
            } else {
                let noisy = shot_noise(out, shots, seed, iter as u64, gi as u64);
                for (j, b) in buf.iter_mut().enumerate() {
                    *b = noisy[j] - targets[gi][j];
                }
            }
        };
        let (sum, mut grad) = gradient::loss_and_gradient(
            self.reconstruction.mesh(),
            &compressed,
            &residual,
            self.config.gradient,
        );
        let loss = Loss::from_sum(sum, batch_inputs.len(), self.config.dim);
        if self.config.normalize_gradient {
            let f = 1.0 / (batch_inputs.len() * self.config.dim) as f64;
            for g in &mut grad {
                *g *= f;
            }
        }
        let gnorm = qn_linalg::vector::norm2(&grad);
        let mut thetas = self.reconstruction.mesh().thetas();
        opt.step(&mut thetas, &grad);
        self.reconstruction.mesh_mut().set_thetas(&thetas);
        (loss, gnorm)
    }

    /// Reconstruction accuracy over the training set: Eq. 10 with the
    /// paper's snap adjustment, and the §IV-B binary-threshold variant.
    /// Returns `(snap accuracy, binary accuracy)`.
    fn evaluate_accuracy(&self) -> (f64, f64) {
        let compressed = self.compression.compress_batch(&self.inputs);
        let outs = self.reconstruction.reconstruct_batch(&compressed);
        let decoded: Vec<GrayImage> = outs
            .iter()
            .zip(&self.encoded)
            .zip(&self.images)
            .map(|((out, enc), img)| {
                encoding::decode_image(out, enc.norm, img.width(), img.height())
                    .expect("dimensions preserved")
            })
            .collect();
        let snapped: Vec<GrayImage> = decoded.iter().map(GrayImage::snapped).collect();
        let binarised: Vec<GrayImage> = decoded.iter().map(|d| d.thresholded(0.5)).collect();
        (
            metrics::mean_pixel_accuracy(&snapped, &self.images, self.config.accuracy_tol),
            metrics::mean_pixel_accuracy(&binarised, &self.images, self.config.accuracy_tol),
        )
    }

    /// Record one iteration into the history (joint schedule).
    #[allow(clippy::too_many_arguments)]
    fn record(
        &self,
        history: &mut TrainingHistory,
        loss_c: Loss,
        loss_r: Loss,
        gn_c: f64,
        gn_r: f64,
        accuracy: f64,
        accuracy_binary: f64,
    ) {
        history.compression_loss.push(loss_c);
        history.reconstruction_loss.push(loss_r);
        history.grad_norm_c.push(gn_c);
        history.grad_norm_r.push(gn_r);
        history.accuracy.push(accuracy);
        history.accuracy_binary.push(accuracy_binary);
        let tracked = &self.inputs[self.config.tracked_sample];
        history
            .compressed_trace
            .push(self.compression.forward(tracked));
        history.reconstructed_trace.push(
            self.reconstruction
                .reconstruct(&self.compression.compress(tracked)),
        );
        history.theta_c_trace.push(self.compression.mesh().thetas());
        history
            .theta_r_trace
            .push(self.reconstruction.mesh().thetas());
    }
}

/// Deterministic shot-noise model: estimate amplitudes from a multinomial
/// sample of `shots` measurements, with signs taken from the exact state.
/// The RNG stream depends only on `(seed, iter, sample)`, never on thread
/// scheduling, so noisy training is exactly reproducible.
fn shot_noise(out: &[f64], shots: usize, seed: u64, iter: u64, sample: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(
        seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ sample.wrapping_mul(0xD1B5_4A32_D192_ED03),
    );
    let total: f64 = out.iter().map(|a| a * a).sum();
    if total <= 0.0 {
        return out.to_vec();
    }
    let mut counts = vec![0u64; out.len()];
    for _ in 0..shots {
        let r: f64 = rng.random::<f64>() * total;
        let mut acc = 0.0;
        let mut chosen = out.len() - 1;
        for (j, a) in out.iter().enumerate() {
            acc += a * a;
            if r < acc {
                chosen = j;
                break;
            }
        }
        counts[chosen] += 1;
    }
    out.iter()
        .zip(&counts)
        .map(|(&a, &c)| {
            let p = c as f64 / shots as f64 * total;
            p.sqrt().copysign(if a == 0.0 { 1.0 } else { a })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CompressionTargetKind;
    use qn_image::datasets;

    fn quick_config() -> NetworkConfig {
        NetworkConfig::paper_default()
            .with_iterations(40)
            .with_learning_rate(0.05)
    }

    #[test]
    fn trainer_construction_validates() {
        let data = datasets::paper_binary_16(25);
        assert!(Trainer::new(quick_config(), &data).is_ok());
        assert!(Trainer::new(quick_config(), &[]).is_err());
        let bad = quick_config().with_dims(4, 2); // images have 16 pixels
        assert!(Trainer::new(bad, &data).is_err());
    }

    #[test]
    fn losses_decrease_on_low_rank_data() {
        // Exactly rank-4 data: both losses must fall substantially.
        let data = datasets::low_rank_binary(25, 4, 4, 4, 3);
        let mut t = Trainer::new(quick_config(), &data).unwrap();
        let report = t.train().unwrap();
        let h = &report.history;
        assert_eq!(h.compression_loss.len(), 40);
        let first_c = h.compression_loss[0].sum;
        let last_c = h.compression_loss.last().unwrap().sum;
        assert!(
            last_c < first_c * 0.5 || last_c < 1e-3,
            "L_C barely moved: {first_c} → {last_c}"
        );
        let first_r = h.reconstruction_loss[0].sum;
        let last_r = h.reconstruction_loss.last().unwrap().sum;
        assert!(
            last_r < first_r || last_r < 1e-3,
            "L_R did not improve: {first_r} → {last_r}"
        );
    }

    #[test]
    fn histories_have_consistent_shapes() {
        let data = datasets::paper_binary_16(10);
        let cfg = quick_config().with_iterations(5);
        let mut t = Trainer::new(cfg, &data).unwrap();
        let report = t.train().unwrap();
        let h = &report.history;
        assert_eq!(h.compression_loss.len(), 5);
        assert_eq!(h.reconstruction_loss.len(), 5);
        assert_eq!(h.accuracy.len(), 5);
        assert_eq!(h.compressed_trace.len(), 5);
        assert_eq!(h.reconstructed_trace.len(), 5);
        assert_eq!(h.theta_c_trace.len(), 5);
        assert_eq!(h.theta_r_trace.len(), 5);
        assert_eq!(h.theta_c_trace[0].len(), 12 * 15);
        assert_eq!(h.theta_r_trace[0].len(), 14 * 15);
        assert_eq!(h.compressed_trace[0].len(), 16);
        // Tracked sample clamped into range.
        assert_eq!(h.tracked_sample, 9);
    }

    #[test]
    fn training_is_deterministic() {
        let data = datasets::paper_binary_16(8);
        let cfg = quick_config().with_iterations(6);
        let r1 = Trainer::new(cfg.clone(), &data).unwrap().train().unwrap();
        let r2 = Trainer::new(cfg, &data).unwrap().train().unwrap();
        assert_eq!(
            r1.history.compression_loss.last().unwrap().sum,
            r2.history.compression_loss.last().unwrap().sum
        );
        assert_eq!(r1.final_accuracy, r2.final_accuracy);
    }

    #[test]
    fn observer_sees_every_iteration() {
        let data = datasets::paper_binary_16(6);
        let cfg = quick_config().with_iterations(7);
        let mut t = Trainer::new(cfg, &data).unwrap();
        let mut seen = Vec::new();
        t.train_with_observer(|ev| seen.push(ev.iteration)).unwrap();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_schedule_runs_both_phases() {
        let data = datasets::low_rank_binary(12, 4, 4, 4, 5);
        let cfg = quick_config()
            .with_iterations(20)
            .with_schedule(crate::config::TrainingSchedule::Sequential);
        let mut t = Trainer::new(cfg, &data).unwrap();
        let report = t.train().unwrap();
        assert_eq!(report.history.compression_loss.len(), 20);
        assert_eq!(report.history.reconstruction_loss.len(), 20);
        // Compression improved during phase 1.
        let h = &report.history;
        assert!(h.compression_loss.last().unwrap().sum <= h.compression_loss[0].sum);
    }

    #[test]
    fn uniform_target_trains_without_panicking() {
        let data = datasets::paper_binary_16(8);
        let cfg = quick_config()
            .with_iterations(5)
            .with_target(CompressionTargetKind::Uniform);
        let mut t = Trainer::new(cfg, &data).unwrap();
        let report = t.train().unwrap();
        assert!(report.final_compression_loss.is_finite());
    }

    #[test]
    fn shot_noise_is_deterministic_and_converges_to_exact() {
        let out = vec![0.6, -0.8, 0.0, 0.0];
        let a = shot_noise(&out, 1000, 1, 2, 3);
        let b = shot_noise(&out, 1000, 1, 2, 3);
        assert_eq!(a, b);
        let c = shot_noise(&out, 200_000, 1, 2, 3);
        assert!((c[0] - 0.6).abs() < 0.01);
        assert!((c[1] + 0.8).abs() < 0.01);
        // Zero state passes through.
        assert_eq!(shot_noise(&[0.0, 0.0], 100, 1, 1, 1), vec![0.0, 0.0]);
    }

    #[test]
    fn noisy_training_still_reduces_loss() {
        let data = datasets::low_rank_binary(10, 4, 4, 4, 9);
        let cfg = quick_config().with_iterations(30).with_shots(4096);
        let mut t = Trainer::new(cfg, &data).unwrap();
        let report = t.train().unwrap();
        let h = &report.history;
        assert!(
            h.compression_loss.last().unwrap().sum < h.compression_loss[0].sum,
            "noisy L_C did not improve"
        );
    }

    #[test]
    fn mini_batch_training_converges_and_is_deterministic() {
        let data = datasets::paper_binary_16(25);
        let cfg = quick_config().with_iterations(120).with_batch_size(Some(8));
        let r1 = Trainer::new(cfg.clone(), &data).unwrap().train().unwrap();
        let r2 = Trainer::new(cfg, &data).unwrap().train().unwrap();
        // Deterministic despite random batches.
        assert_eq!(r1.final_compression_loss, r2.final_compression_loss);
        // Still converges (stochastic, so a looser bar than full batch).
        assert!(
            r1.final_compression_loss < 0.05,
            "mini-batch L_C {}",
            r1.final_compression_loss
        );
        assert!(r1.max_accuracy_binary > 90.0);
    }

    #[test]
    fn oversized_batch_behaves_like_full_batch() {
        let data = datasets::paper_binary_16(10);
        let cfg = quick_config().with_iterations(10);
        let full = Trainer::new(cfg.clone(), &data).unwrap().train().unwrap();
        let over = Trainer::new(cfg.with_batch_size(Some(100)), &data)
            .unwrap()
            .train()
            .unwrap();
        assert_eq!(full.final_compression_loss, over.final_compression_loss);
    }

    #[test]
    fn into_autoencoder_roundtrips() {
        let data = datasets::low_rank_binary(15, 4, 4, 4, 13);
        let mut t = Trainer::new(quick_config().with_iterations(60), &data).unwrap();
        t.train().unwrap();
        let ae = t.into_autoencoder();
        let recon = ae.roundtrip_image(&data[0]).unwrap();
        // Thresholded reconstruction matches the binary input well.
        let acc = qn_image::metrics::pixel_accuracy(&recon.thresholded(0.5), &data[0], 0.01);
        assert!(acc >= 75.0, "accuracy {acc}");
    }
}
