//! Gradients of mesh losses with respect to the gate angles θ.
//!
//! Three methods:
//!
//! - [`GradientMethod::ForwardDifference`] — the paper's Eq. 8:
//!   `∂out/∂θ ≈ (T(θ+Δ)ψ − T(θ)ψ)/Δ` with Δ = 10⁻⁸. In f64 this loses
//!   about half the significant digits (the classic forward-difference
//!   trade-off), which is why it is kept only for paper-exact runs.
//! - [`GradientMethod::CentralDifference`] — second-order accurate probe.
//! - [`GradientMethod::Analytic`] — exact reverse-mode differentiation
//!   (backprop through the gate cascade): the derivative of an embedded
//!   Givens rotation is its π/2-advanced block and zero elsewhere, so one
//!   forward trace plus one adjoint sweep yields every ∂L/∂θ at cost
//!   `O(P·N)` per sample instead of `O(P²·N)`.
//!
//! All methods parallelise with deterministic (thread-count-invariant)
//! reductions; they agree to the accuracy each one promises, which the
//! gradient-ablation experiment (A1) measures.
//!
//! The loss is `L = Σ_i Σ_j r_{ij}²` with `r = out − target` produced by a
//! caller-supplied residual function, so the same machinery serves both
//! `L_C` (with trash/uniform/custom targets) and `L_R`.

use qn_linalg::parallel::{par_map_indexed, par_sum_vectors};
use qn_photonic::Mesh;

/// Gradient computation method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradientMethod {
    /// Forward difference with step `delta` (paper: Δ = 10⁻⁸).
    ForwardDifference {
        /// Finite-difference step Δ.
        delta: f64,
    },
    /// Central difference with step `delta` (recommended: 10⁻⁶).
    CentralDifference {
        /// Finite-difference step Δ.
        delta: f64,
    },
    /// Exact reverse-mode (backprop) gradient.
    Analytic,
}

impl GradientMethod {
    /// The paper's exact setting (Eq. 8: forward difference, Δ = 10⁻⁸).
    pub fn paper() -> Self {
        GradientMethod::ForwardDifference { delta: 1e-8 }
    }
}

/// Residual callback: given `(sample index, mesh output)`, write
/// `r = out − target` into the buffer (same length as `out`).
pub type ResidualFn<'a> = &'a (dyn Fn(usize, &[f64], &mut [f64]) + Sync);

/// Compute `L = Σ_i ‖r_i‖²` and `∇_θ L` for a mesh over a batch of input
/// amplitude vectors.
///
/// Returns `(loss_sum, gradient)` with the gradient laid out layer-major
/// like [`Mesh::thetas`].
///
/// # Panics
/// Panics when inputs have the wrong dimension.
pub fn loss_and_gradient(
    mesh: &Mesh,
    inputs: &[Vec<f64>],
    residual: ResidualFn<'_>,
    method: GradientMethod,
) -> (f64, Vec<f64>) {
    let n = mesh.dim();
    assert!(
        inputs.iter().all(|x| x.len() == n),
        "input dimension mismatch"
    );
    match method {
        GradientMethod::Analytic => analytic(mesh, inputs, residual),
        GradientMethod::ForwardDifference { delta } => {
            finite_difference(mesh, inputs, residual, delta, false)
        }
        GradientMethod::CentralDifference { delta } => {
            finite_difference(mesh, inputs, residual, delta, true)
        }
    }
}

/// Loss only (no gradient): `Σ_i ‖r_i‖²`.
pub fn loss_only(mesh: &Mesh, inputs: &[Vec<f64>], residual: ResidualFn<'_>) -> f64 {
    let n = mesh.dim();
    let partials = par_sum_vectors(inputs.len(), 1, |i, acc| {
        let out = mesh.forward_real_copy(&inputs[i]);
        let mut r = vec![0.0; n];
        residual(i, &out, &mut r);
        acc[0] += r.iter().map(|v| v * v).sum::<f64>();
    });
    partials[0]
}

/// Reverse-mode gradient. One forward trace + one adjoint sweep per
/// sample; samples run in parallel with a deterministic reduction.
fn analytic(mesh: &Mesh, inputs: &[Vec<f64>], residual: ResidualFn<'_>) -> (f64, Vec<f64>) {
    let n = mesh.dim();
    let p = mesh.param_count();
    let gates = mesh.flat_gates();
    let gates_per_layer = n - 1;

    // acc layout: [grad_0 .. grad_{p-1}, loss]
    //
    // Memory note: instead of storing the state after every gate (which
    // is O(P·N) per sample and allocation-bound at large N), the backward
    // sweep *recomputes* each pre-gate state by applying the inverse
    // rotation — orthogonal gates invert exactly, so this costs one extra
    // rotation per gate and keeps the working set at O(N).
    let acc = par_sum_vectors(inputs.len(), p + 1, |i, acc| {
        // Forward pass.
        let mut x = inputs[i].clone();
        for &(layer, k) in &gates {
            let theta = mesh.theta_at(layer, k);
            let (s, c) = theta.sin_cos();
            let a = x[k];
            let b = x[k + 1];
            x[k] = c * a - s * b;
            x[k + 1] = s * a + c * b;
        }
        // Residual and loss at the output.
        let mut r = vec![0.0; n];
        residual(i, &x, &mut r);
        acc[p] += r.iter().map(|v| v * v).sum::<f64>();

        // Adjoint sweep: adj = ∂L/∂x_t, starting from 2r; x is rolled
        // back to the pre-gate state as we go.
        let mut adj: Vec<f64> = r.iter().map(|v| 2.0 * v).collect();
        for &(layer, k) in gates.iter().rev() {
            let theta = mesh.theta_at(layer, k);
            let (s, c) = theta.sin_cos();
            // Roll back: x ← Gᵀ x (the pre-gate state).
            let xa = x[k];
            let xb = x[k + 1];
            x[k] = c * xa + s * xb;
            x[k + 1] = -s * xa + c * xb;
            // ∂L/∂θ_t = adj · (dG/dθ · x_pre), nonzero only on the pair.
            let da = -s * x[k] - c * x[k + 1];
            let db = c * x[k] - s * x[k + 1];
            acc[layer * gates_per_layer + k] += adj[k] * da + adj[k + 1] * db;
            // adj ← Gᵀ adj.
            let ak = adj[k];
            let ak1 = adj[k + 1];
            adj[k] = c * ak + s * ak1;
            adj[k + 1] = -s * ak + c * ak1;
        }
    });
    let loss = acc[p];
    let mut grad = acc;
    grad.truncate(p);
    (loss, grad)
}

/// Finite-difference gradient following the paper's chain rule (Eq. 7):
/// `∂L/∂θ = Σ_i 2 rᵢ · ∂outᵢ/∂θ`, with the output derivative probed by a
/// forward or central difference. Parallelises over parameters.
fn finite_difference(
    mesh: &Mesh,
    inputs: &[Vec<f64>],
    residual: ResidualFn<'_>,
    delta: f64,
    central: bool,
) -> (f64, Vec<f64>) {
    let n = mesh.dim();
    let p = mesh.param_count();
    let gates_per_layer = n - 1;

    // Base outputs and residuals, shared by every parameter probe.
    let outs: Vec<Vec<f64>> = par_map_indexed(inputs.len(), |i| mesh.forward_real_copy(&inputs[i]));
    let residuals: Vec<Vec<f64>> = par_map_indexed(inputs.len(), |i| {
        let mut r = vec![0.0; n];
        residual(i, &outs[i], &mut r);
        r
    });
    let loss: f64 = residuals
        .iter()
        .map(|r| r.iter().map(|v| v * v).sum::<f64>())
        .sum();

    let grad = par_map_indexed(p, |flat| {
        let layer = flat / gates_per_layer;
        let k = flat % gates_per_layer;
        let mut g = 0.0;
        for (i, input) in inputs.iter().enumerate() {
            let plus = mesh.forward_real_perturbed(input, layer, k, delta);
            let dout: Vec<f64> = if central {
                let minus = mesh.forward_real_perturbed(input, layer, k, -delta);
                plus.iter()
                    .zip(&minus)
                    .map(|(pl, mi)| (pl - mi) / (2.0 * delta))
                    .collect()
            } else {
                plus.iter()
                    .zip(&outs[i])
                    .map(|(pl, o)| (pl - o) / delta)
                    .collect()
            };
            g += residuals[i]
                .iter()
                .zip(&dout)
                .map(|(r, d)| 2.0 * r * d)
                .sum::<f64>();
        }
        g
    });
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_sim::Projector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_mesh() -> Mesh {
        let mut rng = StdRng::seed_from_u64(3);
        Mesh::random(8, 3, &mut rng)
    }

    fn test_inputs() -> Vec<Vec<f64>> {
        // Normalised, varied inputs.
        (0..5)
            .map(|i| {
                let mut v: Vec<f64> = (0..8).map(|j| ((i * 8 + j) as f64 * 0.7).sin()).collect();
                qn_linalg::vector::normalize(&mut v);
                v
            })
            .collect()
    }

    /// Trash-penalty residual against the last-2 kept subspace.
    fn trash_residual() -> impl Fn(usize, &[f64], &mut [f64]) + Sync {
        let proj = Projector::keep_last(8, 2).unwrap();
        move |_i, out, r| {
            for (j, (rj, &oj)) in r.iter_mut().zip(out).enumerate() {
                *rj = if proj.keeps(j) { 0.0 } else { oj };
            }
        }
    }

    #[test]
    fn analytic_matches_central_difference() {
        let mesh = test_mesh();
        let inputs = test_inputs();
        let res = trash_residual();
        let (l1, g1) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let (l2, g2) = loss_and_gradient(
            &mesh,
            &inputs,
            &res,
            GradientMethod::CentralDifference { delta: 1e-6 },
        );
        assert!((l1 - l2).abs() < 1e-12);
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-7, "analytic {a} vs central {b}");
        }
    }

    #[test]
    fn forward_difference_is_close_but_noisier() {
        let mesh = test_mesh();
        let inputs = test_inputs();
        let res = trash_residual();
        let (_, exact) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let (_, fd) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::paper());
        // Δ = 1e-8 forward difference: ~1e-7 absolute error expected.
        for (a, b) in exact.iter().zip(&fd) {
            assert!((a - b).abs() < 1e-5, "exact {a} vs paper-fd {b}");
        }
    }

    #[test]
    fn gradient_matches_loss_finite_difference() {
        // Independent check: dL/dθ vs FD of the *loss itself*.
        let mesh = test_mesh();
        let inputs = test_inputs();
        let res = trash_residual();
        let (_, grad) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let h = 1e-6;
        for flat in [0usize, 7, 10, 20] {
            let (layer, k) = (flat / 7, flat % 7);
            let mut mp = mesh.clone();
            mp.set_theta_at(layer, k, mesh.theta_at(layer, k) + h);
            let lp = loss_only(&mp, &inputs, &res);
            let mut mm = mesh.clone();
            mm.set_theta_at(layer, k, mesh.theta_at(layer, k) - h);
            let lm = loss_only(&mm, &inputs, &res);
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad[flat]).abs() < 1e-6,
                "param {flat}: loss-fd {fd} vs grad {}",
                grad[flat]
            );
        }
    }

    #[test]
    fn zero_residual_gives_zero_gradient() {
        let mesh = test_mesh();
        let inputs = test_inputs();
        let res = |_i: usize, _out: &[f64], r: &mut [f64]| r.iter_mut().for_each(|v| *v = 0.0);
        let (l, g) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        assert_eq!(l, 0.0);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_descends_the_loss() {
        // One GD step along −∇ must reduce the loss (small enough step).
        let mesh = test_mesh();
        let inputs = test_inputs();
        let res = trash_residual();
        let (l0, g) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let mut stepped = mesh.clone();
        let thetas: Vec<f64> = mesh
            .thetas()
            .iter()
            .zip(&g)
            .map(|(t, gi)| t - 0.01 * gi)
            .collect();
        stepped.set_thetas(&thetas);
        let l1 = loss_only(&stepped, &inputs, &res);
        assert!(l1 < l0, "loss did not decrease: {l0} → {l1}");
    }

    #[test]
    fn reconstruction_style_residual_gradients_agree() {
        // Residual against per-sample targets (L_R shape).
        let mesh = test_mesh();
        let inputs = test_inputs();
        let targets = test_inputs(); // same set, any fixed targets work
        let res = move |i: usize, out: &[f64], r: &mut [f64]| {
            for (j, rj) in r.iter_mut().enumerate() {
                *rj = out[j] - targets[i][j];
            }
        };
        let (_, g1) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let (_, g2) = loss_and_gradient(
            &mesh,
            &inputs,
            &res,
            GradientMethod::CentralDifference { delta: 1e-6 },
        );
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-7);
        }
    }

    #[test]
    fn results_are_deterministic_across_calls() {
        let mesh = test_mesh();
        let inputs = test_inputs();
        let res = trash_residual();
        let (l1, g1) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let (l2, g2) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        assert_eq!(l1, l2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn descending_layer_order_gradients_are_exact() {
        // Reversed meshes (descending gate order) must backprop correctly.
        let mesh = test_mesh().reversed();
        let inputs = test_inputs();
        let res = trash_residual();
        let (_, g1) = loss_and_gradient(&mesh, &inputs, &res, GradientMethod::Analytic);
        let (_, g2) = loss_and_gradient(
            &mesh,
            &inputs,
            &res,
            GradientMethod::CentralDifference { delta: 1e-6 },
        );
        for (a, b) in g1.iter().zip(&g2) {
            assert!((a - b).abs() < 1e-7);
        }
    }
}
