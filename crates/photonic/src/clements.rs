//! Clements rectangular decomposition (ref [19] of the paper: Clements,
//! Humphreys, Metcalf, Kolthammer & Walmsley, *Optimal design for
//! universal multiport interferometers*, Optica 2016), specialised to real
//! orthogonal matrices.
//!
//! The rectangular scheme interleaves left- and right-multiplications so
//! the resulting circuit has optical depth `N` instead of the Reck
//! triangle's `2N−3`. The sweep zeroes sub-diagonals from the bottom-left
//! corner: even anti-diagonals by column rotations applied from the right,
//! odd anti-diagonals by row rotations applied from the left.

use crate::beamsplitter::BeamSplitter;
use crate::sequence::GateSequence;
use qn_linalg::givens::Givens;
use qn_linalg::{LinalgError, Matrix};

/// Decompose an orthogonal matrix `u` into a [`GateSequence`] in the
/// rectangular (Clements) pattern, such that `S.as_matrix() == u`.
///
/// # Errors
/// - [`LinalgError::ShapeMismatch`] for non-square input.
/// - [`LinalgError::InvalidArgument`] when `u` is not orthogonal to `tol`.
pub fn clements_decompose(u: &Matrix, tol: f64) -> Result<GateSequence, LinalgError> {
    if !u.is_square() {
        return Err(LinalgError::ShapeMismatch(format!(
            "clements: {}x{} not square",
            u.rows(),
            u.cols()
        )));
    }
    if !u.is_orthogonal(tol) {
        return Err(LinalgError::InvalidArgument(
            "clements: input is not orthogonal".to_string(),
        ));
    }
    let n = u.rows();
    let mut m = u.clone();
    // Left rotations (mode, θ) in application order: M ← G(θ) · M on rows.
    let mut left: Vec<(usize, f64)> = Vec::new();
    // Right rotations (mode, t) in application order: M ← M · G(t)ᵀ on
    // columns (this is what `Givens::apply_cols` computes).
    let mut right: Vec<(usize, f64)> = Vec::new();

    for l in 0..n.saturating_sub(1) {
        if l % 2 == 0 {
            // Zero (n−1−k, l−k) for k = 0..=l by mixing columns
            // (l−k, l−k+1) from the right.
            for k in 0..=l {
                let row = n - 1 - k;
                let col = l - k;
                let a = m.get(row, col);
                let b = m.get(row, col + 1);
                if a.abs() <= 1e-300 {
                    continue;
                }
                // New entry: c·a − s·b = 0 → t = atan2(a, b).
                let t = a.atan2(b);
                let g = Givens::from_angle(t);
                g.apply_cols(&mut m, col, col + 1);
                m.set(row, col, 0.0);
                right.push((col, t));
            }
        } else {
            // Zero (n−1−l+j, j) for j = 0..=l by mixing rows
            // (row−1, row) from the left.
            for j in 0..=l {
                let row = n - 1 - l + j;
                let col = j;
                let a = m.get(row - 1, col);
                let b = m.get(row, col);
                if b.abs() <= 1e-300 {
                    continue;
                }
                // New entry: s·a + c·b = 0 → θ = atan2(−b, a).
                let theta = (-b).atan2(a);
                let g = Givens::from_angle(theta);
                g.apply_rows(&mut m, row - 1, row);
                m.set(row, col, 0.0);
                left.push((row - 1, theta));
            }
        }
    }

    // m is now diagonal (orthogonal + triangular in both sweeps) of ±1.
    let signs: Vec<f64> = (0..n)
        .map(|i| if m.get(i, i) >= 0.0 { 1.0 } else { -1.0 })
        .collect();

    // L_p ⋯ L_1 · U · R̂_1 ⋯ R̂_q = D  with R̂_i = G(t_i)ᵀ, so
    // U = L_1ᵀ ⋯ L_pᵀ · D · G(t_q) ⋯ G(t_1).
    // Acting on a vector the application order is:
    //   G(t_1), …, G(t_q), D, L_pᵀ, …, L_1ᵀ.
    // Push D to the tail through the left-rotation transposes using
    // D·G(θ)·D = G(σθ) with σ = d_k·d_{k+1}.
    let mut seq = GateSequence::new(n);
    for &(k, t) in &right {
        seq.push(BeamSplitter::real(k, t));
    }
    for &(k, theta) in left.iter().rev() {
        let sigma = signs[k] * signs[k + 1];
        seq.push(BeamSplitter::real(k, -(theta * sigma)));
    }
    if signs.iter().any(|&s| s < 0.0) {
        seq.set_signs(signs);
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_linalg::random::haar_orthogonal;

    fn roundtrip_error(u: &Matrix) -> f64 {
        let seq = clements_decompose(u, 1e-10).unwrap();
        seq.as_matrix().max_abs_diff(u).unwrap()
    }

    #[test]
    fn identity_is_empty() {
        let id = Matrix::identity(5);
        let seq = clements_decompose(&id, 1e-12).unwrap();
        assert_eq!(seq.len(), 0);
        assert!(roundtrip_error(&id) < 1e-14);
    }

    #[test]
    fn haar_random_matrices_roundtrip_exactly() {
        for (i, n) in [2usize, 3, 4, 5, 8, 16].iter().enumerate() {
            let u = haar_orthogonal(*n, 4242 + i as u64);
            let err = roundtrip_error(&u);
            assert!(err < 1e-10, "n={n}: error {err}");
        }
    }

    #[test]
    fn gate_count_matches_triangular_bound() {
        let u = haar_orthogonal(8, 77);
        let seq = clements_decompose(&u, 1e-10).unwrap();
        assert_eq!(seq.len(), 8 * 7 / 2);
    }

    #[test]
    fn rectangular_depth_is_smaller_than_reck() {
        // Optical depth: longest chain of gates touching a common mode.
        // For the rectangular pattern this is ≈ N; for the triangle ≈ 2N−3.
        let n = 10;
        let u = haar_orthogonal(n, 31);
        let depth = |seq: &GateSequence| {
            let mut mode_depth = vec![0usize; n];
            for g in seq.gates() {
                let d = mode_depth[g.mode].max(mode_depth[g.mode + 1]) + 1;
                mode_depth[g.mode] = d;
                mode_depth[g.mode + 1] = d;
            }
            mode_depth.into_iter().max().unwrap()
        };
        let rect = clements_decompose(&u, 1e-10).unwrap();
        let tri = crate::reck::reck_decompose(&u, 1e-10).unwrap();
        assert!(
            depth(&rect) < depth(&tri),
            "rect depth {} vs tri depth {}",
            depth(&rect),
            depth(&tri)
        );
        assert!(depth(&rect) <= n + 1);
    }

    #[test]
    fn reflections_and_permutations() {
        let mut refl = Matrix::identity(4);
        refl.set(0, 0, -1.0);
        assert!(roundtrip_error(&refl) < 1e-12);

        let mut p = Matrix::zeros(5, 5);
        for i in 0..5 {
            p.set((i + 2) % 5, i, 1.0);
        }
        assert!(roundtrip_error(&p) < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 0.5]]).unwrap();
        assert!(clements_decompose(&m, 1e-10).is_err());
        assert!(clements_decompose(&Matrix::zeros(3, 4), 1e-10).is_err());
    }

    #[test]
    fn agrees_with_reck_as_operators() {
        let u = haar_orthogonal(6, 8);
        let a = clements_decompose(&u, 1e-10).unwrap().as_matrix();
        let b = crate::reck::reck_decompose(&u, 1e-10).unwrap().as_matrix();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-10);
    }
}
