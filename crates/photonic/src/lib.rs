//! Optical multiport-interferometer substrate.
//!
//! The paper implements its quantum network as an ideal lossless multiport
//! optical interferometer (Sec. III-A, ref [19] = Clements et al., Optica
//! 2016): a mesh of two-mode beam splitters `U(k,k+1)`, each coupling
//! adjacent waveguide modes with reflectivity `cos θ` and phase `α`
//! (fixed to 0 in the paper, making every gate a real Givens rotation).
//!
//! This crate provides:
//!
//! - [`beamsplitter::BeamSplitter`] — a single placed gate;
//! - [`mesh::MeshLayer`] / [`mesh::Mesh`] — the paper's layered network
//!   (Fig. 3): each layer is a cascade of `N−1` adjacent-mode gates, and a
//!   network is `l` such layers;
//! - [`sequence::GateSequence`] — an arbitrary ordered gate list, the
//!   common representation produced by the decomposition algorithms;
//! - [`reck`] / [`clements`] — exact decompositions of orthogonal matrices
//!   into adjacent-mode rotations (triangular and rectangular schemes),
//!   used by the spectral-initialisation extension;
//! - [`lossy`] — non-ideal propagation with per-gate amplitude loss, for
//!   failure-injection studies.

pub mod beamsplitter;
pub mod clements;
pub mod lossy;
pub mod mesh;
pub mod reck;
pub mod sequence;
pub mod tables;

pub use beamsplitter::BeamSplitter;
pub use mesh::{GateOrder, Mesh, MeshLayer};
pub use sequence::GateSequence;
pub use tables::{GateTable, LayerTable, MeshTables};
