//! Ordered gate sequences.
//!
//! The decomposition algorithms ([`crate::reck`], [`crate::clements`])
//! produce gates in patterns that do not fit the paper's rigid
//! layer-of-`N−1`-gates structure, so this free-form representation is the
//! lingua franca: an ordered list of beam splitters applied left-to-right
//! to an amplitude vector, optionally followed by a diagonal of signs
//! (for real orthogonal matrices) or phases.

use crate::beamsplitter::BeamSplitter;
use qn_linalg::Matrix;

/// An ordered sequence of beam splitters on `dim` modes, applied in list
/// order, followed by a diagonal of ±1 signs.
#[derive(Debug, Clone, PartialEq)]
pub struct GateSequence {
    dim: usize,
    gates: Vec<BeamSplitter>,
    /// Diagonal applied *after* all gates (`None` = identity).
    signs: Option<Vec<f64>>,
}

impl GateSequence {
    /// Empty sequence on `dim` modes.
    pub fn new(dim: usize) -> Self {
        GateSequence {
            dim,
            gates: Vec::new(),
            signs: None,
        }
    }

    /// Number of modes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the gates.
    pub fn gates(&self) -> &[BeamSplitter] {
        &self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True when the sequence has no gates and no sign diagonal.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty() && self.signs.is_none()
    }

    /// Append a gate.
    ///
    /// # Panics
    /// Panics when the gate's mode pair exceeds `dim`.
    pub fn push(&mut self, gate: BeamSplitter) {
        assert!(
            gate.mode + 1 < self.dim,
            "gate on modes ({}, {}) exceeds dimension {}",
            gate.mode,
            gate.mode + 1,
            self.dim
        );
        self.gates.push(gate);
    }

    /// Set the trailing diagonal of signs (each entry must be ±1).
    ///
    /// # Panics
    /// Panics on length mismatch or non-±1 entries.
    pub fn set_signs(&mut self, signs: Vec<f64>) {
        assert_eq!(signs.len(), self.dim, "sign diagonal length mismatch");
        assert!(
            signs.iter().all(|&s| s == 1.0 || s == -1.0),
            "signs must be ±1"
        );
        self.signs = Some(signs);
    }

    /// Borrow the trailing sign diagonal, if any.
    pub fn signs(&self) -> Option<&[f64]> {
        self.signs.as_deref()
    }

    /// Apply the whole sequence to a real amplitude vector in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn apply_real(&self, amps: &mut [f64]) {
        assert_eq!(amps.len(), self.dim, "amplitude dimension mismatch");
        for g in &self.gates {
            g.apply_real(amps);
        }
        if let Some(signs) = &self.signs {
            for (a, &s) in amps.iter_mut().zip(signs) {
                *a *= s;
            }
        }
    }

    /// Apply the inverse sequence (inverse gates in reverse order, signs
    /// first since `D⁻¹ = D` for ±1 diagonals).
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn apply_real_inverse(&self, amps: &mut [f64]) {
        assert_eq!(amps.len(), self.dim, "amplitude dimension mismatch");
        if let Some(signs) = &self.signs {
            for (a, &s) in amps.iter_mut().zip(signs) {
                *a *= s;
            }
        }
        for g in self.gates.iter().rev() {
            g.apply_real_inverse(amps);
        }
    }

    /// Dense matrix of the full sequence, built by applying it to each
    /// basis vector (columns of the result).
    #[allow(clippy::needless_range_loop)] // basis index addresses two arrays
    pub fn as_matrix(&self) -> Matrix {
        let n = self.dim;
        let mut m = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e.iter_mut().for_each(|x| *x = 0.0);
            e[j] = 1.0;
            self.apply_real(&mut e);
            for i in 0..n {
                m.set(i, j, e[i]);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_mode_range() {
        let mut s = GateSequence::new(4);
        s.push(BeamSplitter::real(2, 0.1)); // modes (2,3) ok
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds dimension")]
    fn push_rejects_out_of_range() {
        let mut s = GateSequence::new(4);
        s.push(BeamSplitter::real(3, 0.1)); // modes (3,4) bad
    }

    #[test]
    fn apply_respects_order() {
        // Two non-commuting gates: order must matter.
        let mut ab = GateSequence::new(3);
        ab.push(BeamSplitter::real(0, 0.7));
        ab.push(BeamSplitter::real(1, 0.9));
        let mut ba = GateSequence::new(3);
        ba.push(BeamSplitter::real(1, 0.9));
        ba.push(BeamSplitter::real(0, 0.7));
        let mut v1 = vec![1.0, 0.0, 0.0];
        let mut v2 = vec![1.0, 0.0, 0.0];
        ab.apply_real(&mut v1);
        ba.apply_real(&mut v2);
        assert!((v1[2] - v2[2]).abs() > 1e-6);
    }

    #[test]
    fn inverse_roundtrip_with_signs() {
        let mut s = GateSequence::new(4);
        s.push(BeamSplitter::real(0, 0.3));
        s.push(BeamSplitter::real(2, -0.8));
        s.push(BeamSplitter::real(1, 1.4));
        s.set_signs(vec![1.0, -1.0, 1.0, -1.0]);
        let orig = vec![0.4, -0.2, 0.6, 0.1];
        let mut v = orig.clone();
        s.apply_real(&mut v);
        s.apply_real_inverse(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "signs must be ±1")]
    fn signs_validated() {
        let mut s = GateSequence::new(2);
        s.set_signs(vec![1.0, 0.5]);
    }

    #[test]
    fn as_matrix_is_orthogonal() {
        let mut s = GateSequence::new(5);
        for (k, t) in [(0usize, 0.3), (2, 1.1), (3, -0.4), (1, 2.2)] {
            s.push(BeamSplitter::real(k, t));
        }
        s.set_signs(vec![1.0, 1.0, -1.0, 1.0, -1.0]);
        let m = s.as_matrix();
        assert!(m.is_orthogonal(1e-12));
    }

    #[test]
    fn as_matrix_matches_apply() {
        let mut s = GateSequence::new(3);
        s.push(BeamSplitter::real(0, 0.5));
        s.push(BeamSplitter::real(1, 0.25));
        let m = s.as_matrix();
        let x = vec![0.2, 0.3, -0.1];
        let mut applied = x.clone();
        s.apply_real(&mut applied);
        let mv = m.matvec(&x).unwrap();
        for (a, b) in applied.iter().zip(&mv) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn empty_sequence_is_identity() {
        let s = GateSequence::new(3);
        assert!(s.is_empty());
        let mut v = vec![1.0, 2.0, 3.0];
        s.apply_real(&mut v);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
        assert!(s.as_matrix().is_orthogonal(1e-15));
    }
}
