//! A single placed beam splitter.

use qn_sim::complex::Complex64;
use qn_sim::rotation;

/// A beam splitter coupling modes `mode` and `mode + 1`, with reflectivity
/// angle `theta` and phase `alpha` (paper Fig. 2).
///
/// With `alpha == 0` the gate is the real Givens rotation the paper trains;
/// the complex form supports the "fully complex network" extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeamSplitter {
    /// First of the two coupled modes (`0`-based).
    pub mode: usize,
    /// Reflectivity angle θ; reflectivity is `cos θ`.
    pub theta: f64,
    /// Phase shift α; the paper fixes `α ≡ 0`.
    pub alpha: f64,
}

impl BeamSplitter {
    /// Real beam splitter (α = 0).
    pub fn real(mode: usize, theta: f64) -> Self {
        BeamSplitter {
            mode,
            theta,
            alpha: 0.0,
        }
    }

    /// True when the gate is purely real.
    pub fn is_real(&self) -> bool {
        self.alpha == 0.0
    }

    /// Apply to a real amplitude vector in place.
    ///
    /// # Panics
    /// Panics when the gate is complex (`alpha != 0`) — a complex gate
    /// cannot act on real data — or when the mode is out of range.
    #[inline]
    pub fn apply_real(&self, amps: &mut [f64]) {
        assert!(
            self.is_real(),
            "complex beam splitter applied to real amplitudes"
        );
        rotation::apply_real(amps, self.mode, self.theta).expect("beam splitter mode out of range");
    }

    /// Apply the inverse to a real amplitude vector in place.
    ///
    /// # Panics
    /// Same conditions as [`BeamSplitter::apply_real`].
    #[inline]
    pub fn apply_real_inverse(&self, amps: &mut [f64]) {
        assert!(
            self.is_real(),
            "complex beam splitter applied to real amplitudes"
        );
        rotation::apply_real_inverse(amps, self.mode, self.theta)
            .expect("beam splitter mode out of range");
    }

    /// Apply to a complex amplitude vector in place.
    ///
    /// # Panics
    /// Panics when the mode is out of range.
    #[inline]
    pub fn apply_complex(&self, amps: &mut [Complex64]) {
        rotation::apply_complex(amps, self.mode, self.theta, self.alpha)
            .expect("beam splitter mode out of range");
    }

    /// Apply the inverse (conjugate transpose) to a complex vector.
    ///
    /// # Panics
    /// Panics when the mode is out of range.
    #[inline]
    pub fn apply_complex_inverse(&self, amps: &mut [Complex64]) {
        rotation::apply_complex_inverse(amps, self.mode, self.theta, self.alpha)
            .expect("beam splitter mode out of range");
    }

    /// The 2×2 block matrix of the gate (paper Fig. 2 convention).
    pub fn block(&self) -> [[Complex64; 2]; 2] {
        let (s, c) = self.theta.sin_cos();
        let phase = Complex64::from_polar(1.0, self.alpha);
        [
            [phase.scale(c), Complex64::from_real(-s)],
            [phase.scale(s), Complex64::from_real(c)],
        ]
    }

    /// Reflectivity `cos θ` of the splitter.
    pub fn reflectivity(&self) -> f64 {
        self.theta.cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-14;

    #[test]
    fn real_constructor_and_reflectivity() {
        let bs = BeamSplitter::real(3, 0.5);
        assert!(bs.is_real());
        assert_eq!(bs.mode, 3);
        assert!((bs.reflectivity() - 0.5_f64.cos()).abs() < TOL);
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let bs = BeamSplitter::real(1, 0.87);
        let mut v = vec![0.2, -0.5, 0.7, 0.1];
        let orig = v.clone();
        bs.apply_real(&mut v);
        assert!((v[1] - orig[1]).abs() > 1e-3); // actually did something
        bs.apply_real_inverse(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    #[should_panic(expected = "complex beam splitter")]
    fn complex_gate_rejects_real_data() {
        let bs = BeamSplitter {
            mode: 0,
            theta: 0.5,
            alpha: 0.3,
        };
        bs.apply_real(&mut [1.0, 0.0]);
    }

    #[test]
    fn block_is_unitary() {
        let bs = BeamSplitter {
            mode: 0,
            theta: 0.7,
            alpha: 1.2,
        };
        assert!(qn_sim::gates::is_unitary(&bs.block(), TOL));
    }

    #[test]
    fn complex_apply_matches_block_matrix() {
        let bs = BeamSplitter {
            mode: 0,
            theta: 0.9,
            alpha: 0.4,
        };
        let b = bs.block();
        let x = Complex64::new(0.3, -0.1);
        let y = Complex64::new(0.5, 0.2);
        let mut v = vec![x, y];
        bs.apply_complex(&mut v);
        let ex = b[0][0] * x + b[0][1] * y;
        let ey = b[1][0] * x + b[1][1] * y;
        assert!(v[0].approx_eq(ex, TOL));
        assert!(v[1].approx_eq(ey, TOL));
        bs.apply_complex_inverse(&mut v);
        assert!(v[0].approx_eq(x, TOL));
        assert!(v[1].approx_eq(y, TOL));
    }
}
