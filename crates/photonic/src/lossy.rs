//! Non-ideal (lossy) propagation — failure injection.
//!
//! The paper assumes an *ideal lossless* interferometer. Real integrated
//! photonics attenuates: every beam-splitter crossing costs a fraction of
//! the amplitude. This module propagates through a gate sequence with a
//! uniform per-gate amplitude transmission `η ∈ (0, 1]`, modelling
//! insertion loss, so the robustness ablation can measure how quickly
//! reconstruction accuracy degrades as the hardware departs from ideal.
//!
//! Loss is applied to the two modes a gate touches (the light actually
//! traversing the splitter), leaving the untouched modes unattenuated —
//! the standard directional-coupler insertion-loss model.

use crate::sequence::GateSequence;

/// Propagate real amplitudes through `seq` with per-gate amplitude
/// transmission `eta` (1.0 = lossless). Returns the surviving norm²
/// fraction relative to the input.
///
/// # Panics
/// Panics when `eta` is outside `(0, 1]` or dimensions mismatch.
pub fn propagate_lossy(seq: &GateSequence, amps: &mut [f64], eta: f64) -> f64 {
    assert!(
        eta > 0.0 && eta <= 1.0,
        "transmission eta must be in (0, 1], got {eta}"
    );
    assert_eq!(amps.len(), seq.dim(), "amplitude dimension mismatch");
    let norm_in: f64 = amps.iter().map(|a| a * a).sum();
    for g in seq.gates() {
        g.apply_real(amps);
        amps[g.mode] *= eta;
        amps[g.mode + 1] *= eta;
    }
    if let Some(signs) = seq.signs() {
        for (a, &s) in amps.iter_mut().zip(signs) {
            *a *= s;
        }
    }
    let norm_out: f64 = amps.iter().map(|a| a * a).sum();
    if norm_in > 0.0 {
        norm_out / norm_in
    } else {
        1.0
    }
}

/// Convert an insertion loss in dB-per-gate to an amplitude transmission
/// `η` (power transmission is `10^(−dB/10)`, amplitude is its square
/// root).
pub fn db_to_amplitude_transmission(db_per_gate: f64) -> f64 {
    10f64.powf(-db_per_gate / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beamsplitter::BeamSplitter;

    fn two_gate_seq() -> GateSequence {
        let mut s = GateSequence::new(3);
        s.push(BeamSplitter::real(0, 0.6));
        s.push(BeamSplitter::real(1, -0.9));
        s
    }

    #[test]
    fn unit_transmission_is_lossless() {
        let seq = two_gate_seq();
        let mut v = vec![0.5, 0.5, std::f64::consts::FRAC_1_SQRT_2];
        let survived = propagate_lossy(&seq, &mut v, 1.0);
        assert!((survived - 1.0).abs() < 1e-14);
        let mut v2 = vec![0.5, 0.5, std::f64::consts::FRAC_1_SQRT_2];
        seq.apply_real(&mut v2);
        for (a, b) in v.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn loss_reduces_norm_monotonically() {
        let seq = two_gate_seq();
        let mut prev = 1.0;
        for eta in [0.99, 0.95, 0.9, 0.5] {
            let mut v = vec![1.0, 0.0, 0.0];
            let survived = propagate_lossy(&seq, &mut v, eta);
            assert!(survived < prev, "eta={eta}");
            prev = survived;
        }
    }

    #[test]
    fn worst_case_bound_matches_gate_count() {
        // Every gate attenuates at most both touched modes by η, so the
        // total survival is at least η^(2·gates).
        let seq = two_gate_seq();
        let eta = 0.9;
        let mut v = vec![0.3, -0.8, 0.52];
        let survived = propagate_lossy(&seq, &mut v, eta);
        assert!(survived >= eta.powi(2 * 2 * 2) - 1e-12);
        assert!(survived <= 1.0);
    }

    #[test]
    fn db_conversion() {
        assert!((db_to_amplitude_transmission(0.0) - 1.0).abs() < 1e-15);
        // 3 dB power loss ≈ amplitude factor 10^(−3/20) ≈ 0.7079.
        let a = db_to_amplitude_transmission(3.0);
        assert!((a - 0.707_945_784_384_137_9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "transmission eta")]
    fn eta_validated() {
        let seq = two_gate_seq();
        propagate_lossy(&seq, &mut [1.0, 0.0, 0.0], 0.0);
    }

    #[test]
    fn zero_input_reports_full_survival() {
        let seq = two_gate_seq();
        let mut v = vec![0.0; 3];
        assert_eq!(propagate_lossy(&seq, &mut v, 0.9), 1.0);
    }
}
