//! Reck-style triangular decomposition of a real orthogonal matrix into
//! adjacent-mode Givens rotations.
//!
//! Any `N × N` orthogonal matrix factors into at most `N(N−1)/2` rotations
//! between *adjacent* modes plus a trailing ±1 diagonal — precisely the
//! gate family the paper's optical network can realise. The triangular
//! scheme zeroes the strict lower triangle column by column with left
//! rotations; since an orthogonal triangular matrix is diagonal, what
//! remains is the sign diagonal.
//!
//! Used by the spectral-initialisation extension (`qn-core::spectral`) to
//! load a PCA rotation directly into mesh parameters.

use crate::beamsplitter::BeamSplitter;
use crate::sequence::GateSequence;
use qn_linalg::givens::Givens;
use qn_linalg::{LinalgError, Matrix};

/// Decompose an orthogonal matrix `u` into a [`GateSequence`] `S` such
/// that `S.as_matrix() == u` (within roundoff).
///
/// # Errors
/// - [`LinalgError::ShapeMismatch`] for non-square input.
/// - [`LinalgError::InvalidArgument`] when `u` is not orthogonal to `tol`.
pub fn reck_decompose(u: &Matrix, tol: f64) -> Result<GateSequence, LinalgError> {
    if !u.is_square() {
        return Err(LinalgError::ShapeMismatch(format!(
            "reck: {}x{} not square",
            u.rows(),
            u.cols()
        )));
    }
    if !u.is_orthogonal(tol) {
        return Err(LinalgError::InvalidArgument(
            "reck: input is not orthogonal".to_string(),
        ));
    }
    let n = u.rows();
    let mut r = u.clone();
    // Rotations applied to U from the left, in application order.
    // Entry: (mode k, angle θ) for the rotation on rows (k, k+1).
    let mut applied: Vec<(usize, f64)> = Vec::with_capacity(n * (n - 1) / 2);

    for j in 0..n.saturating_sub(1) {
        for i in ((j + 1)..n).rev() {
            let a = r.get(i - 1, j);
            let b = r.get(i, j);
            if b.abs() <= 1e-300 {
                continue;
            }
            // θ with sinθ·a + cosθ·b = 0 and the surviving entry ≥ 0.
            let theta = (-b).atan2(a);
            let g = Givens::from_angle(theta);
            g.apply_rows(&mut r, i - 1, i);
            r.set(i, j, 0.0); // exact by construction
            applied.push((i - 1, theta));
        }
    }

    // r is now orthogonal upper-triangular = diagonal of ±1.
    let signs: Vec<f64> = (0..n)
        .map(|i| if r.get(i, i) >= 0.0 { 1.0 } else { -1.0 })
        .collect();

    // We have G_m ⋯ G_1 U = D, so U = G_1ᵀ ⋯ G_mᵀ D. Acting on a vector,
    // D applies first, then G_mᵀ, …, G_1ᵀ. Push D rightwards through each
    // rotation with the sign conjugation D·G(θ)·D = G(σθ), σ = d_k·d_{k+1}
    // (D is unchanged), giving: gates [Gₘ'ᵀ, …, G₁'ᵀ] then trailing D.
    let mut seq = GateSequence::new(n);
    for &(k, theta) in applied.iter().rev() {
        let sigma = signs[k] * signs[k + 1];
        seq.push(BeamSplitter::real(k, -(theta * sigma)));
    }
    if signs.iter().any(|&s| s < 0.0) {
        seq.set_signs(signs);
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_linalg::random::haar_orthogonal;

    fn roundtrip_error(u: &Matrix) -> f64 {
        let seq = reck_decompose(u, 1e-10).unwrap();
        seq.as_matrix().max_abs_diff(u).unwrap()
    }

    #[test]
    fn identity_decomposes_to_empty_sequence() {
        let id = Matrix::identity(4);
        let seq = reck_decompose(&id, 1e-12).unwrap();
        assert_eq!(seq.len(), 0);
        assert!(seq.signs().is_none());
        assert!(roundtrip_error(&id) < 1e-14);
    }

    #[test]
    fn single_adjacent_rotation_roundtrips() {
        let g = Givens::from_angle(0.77).to_matrix(4, 1, 2);
        assert!(roundtrip_error(&g) < 1e-12);
    }

    #[test]
    fn haar_random_matrices_roundtrip_exactly() {
        for (i, n) in [2usize, 3, 4, 8, 16].iter().enumerate() {
            let u = haar_orthogonal(*n, 100 + i as u64);
            let err = roundtrip_error(&u);
            assert!(err < 1e-10, "n={n}: error {err}");
        }
    }

    #[test]
    fn gate_count_is_at_most_triangular() {
        let u = haar_orthogonal(8, 5);
        let seq = reck_decompose(&u, 1e-10).unwrap();
        assert!(seq.len() <= 8 * 7 / 2);
        // Generic matrices need the full count.
        assert_eq!(seq.len(), 8 * 7 / 2);
    }

    #[test]
    fn reflection_needs_sign_diagonal() {
        // det = −1 cannot be realised by rotations alone.
        let mut refl = Matrix::identity(3);
        refl.set(2, 2, -1.0);
        let seq = reck_decompose(&refl, 1e-12).unwrap();
        assert!(seq.signs().is_some());
        assert!(seq.as_matrix().max_abs_diff(&refl).unwrap() < 1e-12);
    }

    #[test]
    fn permutation_matrix_roundtrips() {
        // Cyclic shift on 4 modes.
        let mut p = Matrix::zeros(4, 4);
        for i in 0..4 {
            p.set((i + 1) % 4, i, 1.0);
        }
        assert!(roundtrip_error(&p) < 1e-12);
    }

    #[test]
    fn rejects_non_orthogonal_input() {
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            reck_decompose(&m, 1e-10),
            Err(LinalgError::InvalidArgument(_))
        ));
        assert!(reck_decompose(&Matrix::zeros(2, 3), 1e-10).is_err());
    }
}
