//! Precomputed per-layer gate tables — the mesh with its trigonometry
//! hoisted out.
//!
//! A [`crate::Mesh`] is static at inference time: the paper's `T_C`/`T_R`
//! interferometer structure is fixed per model, yet the per-gate
//! `sin_cos` used to be re-evaluated for every panel of every batch of
//! every request. [`MeshTables`] evaluates each gate's `(sin θ, cos θ)`
//! exactly once at build time and replays the cached values through
//! table-driven apply kernels, so the hot loops contain only
//! multiply/add work.
//!
//! # Equivalence
//!
//! Two kernel families live here, with two declared contracts:
//!
//! - **Exact kernels** ([`MeshTables::forward_amps`],
//!   [`MeshTables::inverse_amps`], [`MeshTables::forward_panel`],
//!   [`MeshTables::inverse_panel`]) replay *every* gate with the
//!   identical `c·a − s·b` / `s·a + c·b` expressions the scalar
//!   reference uses. `f64::sin_cos` is deterministic, so a cached value
//!   is the same bit pattern as a recomputed one and these kernels are
//!   **bit-identical** to `Mesh::forward_real` / `Mesh::inverse_real`.
//! - **Pruned, lane-blocked kernels** ([`MeshTables::forward_panel_blocked`],
//!   [`MeshTables::inverse_panel_blocked`]) additionally skip identity
//!   gates — gates whose table entry is exactly `(sin, cos) = (0, 1)`,
//!   i.e. `θ = ±0.0` — and sweep the panel lanes in explicit 4-wide
//!   blocks (`qn_linalg::panel::rotate_lanes_blocked`). Skipping an
//!   identity rotation leaves an amplitude's stored bits untouched,
//!   whereas the reference computes `1·a − 0·b` / `0·a + 1·b`, which can
//!   flip the *sign of an IEEE zero* (e.g. `-0.0 − (-0.0) = +0.0`).
//!   Every output therefore compares **equal under `f64 ==`** to the
//!   reference (absolute difference exactly `0.0`), but is not
//!   guaranteed bit-identical on zero amplitudes. Identity gates are
//!   common in practice: ASAP-packed spectral meshes (the codec's
//!   default model source) leave roughly half their gate slots at
//!   `θ = 0`.
//!
//! `qn-backend` keys a content-addressed cache of these tables by model
//! identity, so the build cost is paid once per mesh, not per batch.

use crate::mesh::Mesh;
use qn_linalg::panel::{rotate_lanes_blocked, rotate_lanes_blocked_inverse};
use qn_linalg::Panel;

/// One gate's precomputed rotation: target mode pair `(mode, mode+1)`
/// and the cached `sin θ` / `cos θ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTable {
    /// Lower mode index of the gate's `(k, k+1)` pair.
    pub mode: usize,
    /// Cached `sin θ` — bit-identical to `θ.sin_cos().0`.
    pub sin: f64,
    /// Cached `cos θ` — bit-identical to `θ.sin_cos().1`.
    pub cos: f64,
}

impl GateTable {
    /// True when the cached rotation is exactly the identity
    /// (`sin = ±0.0`, `cos = 1.0`), i.e. the gate came from `θ = ±0.0`.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.sin == 0.0 && self.cos == 1.0
    }
}

/// One layer's gates in application order (the layer's cascade
/// direction is baked in at build time).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerTable {
    /// Every gate, in the order `MeshLayer::apply_real` visits them.
    gates: Vec<GateTable>,
    /// The non-identity subset, same relative order.
    active: Vec<GateTable>,
}

impl LayerTable {
    /// All gates in application order.
    pub fn gates(&self) -> &[GateTable] {
        &self.gates
    }

    /// The non-identity gates in application order.
    pub fn active_gates(&self) -> &[GateTable] {
        &self.active
    }
}

/// Precomputed `(sin, cos)` tables for every `(layer, gate)` of a real
/// mesh, in application order. Build once per mesh (see
/// [`Mesh::tables`]); apply to amplitude vectors or panels with zero
/// trigonometry in the hot loop.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshTables {
    dim: usize,
    layers: Vec<LayerTable>,
}

impl MeshTables {
    /// Evaluate `sin_cos` for every gate of `mesh`, in application
    /// order.
    ///
    /// # Panics
    /// Panics when the mesh has complex gates — table-driven kernels
    /// cover the paper's real network, like every `apply_real_*` path.
    pub fn build(mesh: &Mesh) -> MeshTables {
        assert!(
            mesh.is_real(),
            "gate tables cover real meshes only (complex layer present)"
        );
        let layers = mesh
            .layers()
            .iter()
            .map(|layer| {
                let gates: Vec<GateTable> = layer
                    .positions()
                    .map(|k| {
                        let (sin, cos) = layer.thetas()[k].sin_cos();
                        GateTable { mode: k, sin, cos }
                    })
                    .collect();
                let active = gates.iter().copied().filter(|g| !g.is_identity()).collect();
                LayerTable { gates, active }
            })
            .collect();
        MeshTables {
            dim: mesh.dim(),
            layers,
        }
    }

    /// Number of modes `N`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Per-layer tables, forward layer order.
    pub fn layers(&self) -> &[LayerTable] {
        &self.layers
    }

    /// Total gates across all layers.
    pub fn gate_count(&self) -> usize {
        self.layers.iter().map(|l| l.gates.len()).sum()
    }

    /// Gates that survive identity pruning.
    pub fn active_gate_count(&self) -> usize {
        self.layers.iter().map(|l| l.active.len()).sum()
    }

    /// Apply the mesh forward to one amplitude vector — bit-identical
    /// to [`Mesh::forward_real`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn forward_amps(&self, amps: &mut [f64]) {
        assert_eq!(amps.len(), self.dim, "table dimension mismatch");
        for layer in &self.layers {
            for g in &layer.gates {
                let a = amps[g.mode];
                let b = amps[g.mode + 1];
                amps[g.mode] = g.cos * a - g.sin * b;
                amps[g.mode + 1] = g.sin * a + g.cos * b;
            }
        }
    }

    /// Apply the exact inverse `U⁻¹` to one amplitude vector —
    /// bit-identical to [`Mesh::inverse_real`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn inverse_amps(&self, amps: &mut [f64]) {
        assert_eq!(amps.len(), self.dim, "table dimension mismatch");
        for layer in self.layers.iter().rev() {
            for g in layer.gates.iter().rev() {
                let a = amps[g.mode];
                let b = amps[g.mode + 1];
                amps[g.mode] = g.cos * a + g.sin * b;
                amps[g.mode + 1] = g.cos * b - g.sin * a;
            }
        }
    }

    /// Apply the mesh forward to every lane of a [`Panel`] —
    /// bit-identical to [`Mesh::forward_real_panel`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn forward_panel(&self, panel: &mut Panel) {
        assert_eq!(panel.dim(), self.dim, "table dimension mismatch");
        for layer in &self.layers {
            for g in &layer.gates {
                let (row_a, row_b) = panel.row_pair_mut(g.mode);
                for (a, b) in row_a.iter_mut().zip(row_b.iter_mut()) {
                    let x = *a;
                    let y = *b;
                    *a = g.cos * x - g.sin * y;
                    *b = g.sin * x + g.cos * y;
                }
            }
        }
    }

    /// Apply the exact inverse to every lane of a [`Panel`] —
    /// bit-identical to [`Mesh::inverse_real_panel`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn inverse_panel(&self, panel: &mut Panel) {
        assert_eq!(panel.dim(), self.dim, "table dimension mismatch");
        for layer in self.layers.iter().rev() {
            for g in layer.gates.iter().rev() {
                let (row_a, row_b) = panel.row_pair_mut(g.mode);
                for (a, b) in row_a.iter_mut().zip(row_b.iter_mut()) {
                    let x = *a;
                    let y = *b;
                    *a = g.cos * x + g.sin * y;
                    *b = g.cos * y - g.sin * x;
                }
            }
        }
    }

    /// Forward panel sweep with identity-gate pruning and explicit
    /// 4-lane blocks — the `simd` backend's kernel. Outputs compare
    /// equal (`f64 ==`) to [`Mesh::forward_real_panel`] on every lane;
    /// see the module docs for the exact (zero-sign) contract.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn forward_panel_blocked(&self, panel: &mut Panel) {
        assert_eq!(panel.dim(), self.dim, "table dimension mismatch");
        for layer in &self.layers {
            for g in &layer.active {
                let (row_a, row_b) = panel.row_pair_mut(g.mode);
                rotate_lanes_blocked(row_a, row_b, g.sin, g.cos);
            }
        }
    }

    /// Inverse panel sweep with identity-gate pruning and explicit
    /// 4-lane blocks — see [`MeshTables::forward_panel_blocked`].
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn inverse_panel_blocked(&self, panel: &mut Panel) {
        assert_eq!(panel.dim(), self.dim, "table dimension mismatch");
        for layer in self.layers.iter().rev() {
            for g in layer.active.iter().rev() {
                let (row_a, row_b) = panel.row_pair_mut(g.mode);
                rotate_lanes_blocked_inverse(row_a, row_b, g.sin, g.cos);
            }
        }
    }
}

impl Mesh {
    /// Build the precomputed gate tables for this mesh — one `sin_cos`
    /// per gate, ever. See [`MeshTables`].
    ///
    /// # Panics
    /// Panics when the mesh has complex gates.
    pub fn tables(&self) -> MeshTables {
        MeshTables::build(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(4242)
    }

    fn columns(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|l| {
                (0..dim)
                    .map(|i| ((l * dim + i) as f64 * 0.31).sin())
                    .collect()
            })
            .collect()
    }

    /// A mesh with a mix of identity and active gates, like an
    /// ASAP-packed spectral decomposition produces.
    fn sparse_mesh(dim: usize, layers: usize) -> Mesh {
        let mut mesh = Mesh::random(dim, layers, &mut rng());
        let thetas: Vec<f64> = mesh
            .thetas()
            .iter()
            .enumerate()
            .map(|(i, &t)| if i % 3 == 0 { 0.0 } else { t })
            .collect();
        mesh.set_thetas(&thetas);
        mesh
    }

    #[test]
    fn exact_kernels_are_bit_identical_to_the_mesh() {
        for mesh in [
            Mesh::random(9, 4, &mut rng()),
            Mesh::random(9, 4, &mut rng()).reversed(),
            sparse_mesh(9, 3),
        ] {
            let tables = mesh.tables();
            assert_eq!(tables.dim(), 9);
            for col in columns(9, 5) {
                let reference = mesh.forward_real_copy(&col);
                let mut tabled = col.clone();
                tables.forward_amps(&mut tabled);
                assert!(
                    tabled
                        .iter()
                        .zip(&reference)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "forward_amps drifted"
                );
                let mut inv_ref = col.clone();
                mesh.inverse_real(&mut inv_ref);
                let mut inv_tab = col.clone();
                tables.inverse_amps(&mut inv_tab);
                assert!(
                    inv_tab
                        .iter()
                        .zip(&inv_ref)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "inverse_amps drifted"
                );
            }
            let cols = columns(9, 7);
            let mut panel = Panel::from_columns(&cols);
            tables.forward_panel(&mut panel);
            for (lane, col) in cols.iter().enumerate() {
                assert_eq!(
                    panel.column(lane),
                    mesh.forward_real_copy(col),
                    "lane {lane}"
                );
            }
            let mut panel = Panel::from_columns(&cols);
            tables.inverse_panel(&mut panel);
            for (lane, col) in cols.iter().enumerate() {
                let mut reference = col.clone();
                mesh.inverse_real(&mut reference);
                assert_eq!(panel.column(lane), reference, "inverse lane {lane}");
            }
        }
    }

    #[test]
    fn blocked_kernels_equal_the_reference_on_every_lane() {
        // Widths around the 4-lane block: remainder lanes included.
        for width in [1usize, 3, 4, 5, 8, 11] {
            for mesh in [sparse_mesh(10, 4), sparse_mesh(10, 4).reversed()] {
                let tables = mesh.tables();
                let cols = columns(10, width);
                let mut fwd = Panel::from_columns(&cols);
                tables.forward_panel_blocked(&mut fwd);
                let mut inv = Panel::from_columns(&cols);
                tables.inverse_panel_blocked(&mut inv);
                for (lane, col) in cols.iter().enumerate() {
                    assert_eq!(
                        fwd.column(lane),
                        mesh.forward_real_copy(col),
                        "forward width {width} lane {lane}"
                    );
                    let mut reference = col.clone();
                    mesh.inverse_real(&mut reference);
                    assert_eq!(
                        inv.column(lane),
                        reference,
                        "inverse width {width} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_skips_exactly_the_identity_gates() {
        let mesh = sparse_mesh(7, 3);
        let tables = mesh.tables();
        let zero_thetas = mesh.thetas().iter().filter(|&&t| t == 0.0).count();
        assert!(zero_thetas > 0, "sparse mesh must have identity gates");
        assert_eq!(tables.gate_count(), 3 * 6);
        assert_eq!(
            tables.active_gate_count(),
            tables.gate_count() - zero_thetas
        );
        // A fully random mesh prunes nothing.
        let dense = Mesh::random(7, 2, &mut rng());
        let dt = dense.tables();
        assert_eq!(dt.active_gate_count(), dt.gate_count());
    }

    #[test]
    fn blocked_kernels_may_differ_from_the_reference_only_on_zero_signs() {
        // A vector that becomes -0.0 under the reference arithmetic:
        // with θ = 0 gates, the reference computes 0·a + 1·b, which
        // rewrites -0.0 to +0.0, while the pruned kernel preserves the
        // stored bits. The values must still compare equal.
        let mesh = Mesh::zeros(4, 1); // all-identity mesh
        let tables = mesh.tables();
        assert_eq!(tables.active_gate_count(), 0);
        let cols = vec![vec![-0.0, 1.0, -0.0, 2.0]];
        let mut panel = Panel::from_columns(&cols);
        tables.forward_panel_blocked(&mut panel);
        let reference = mesh.forward_real_copy(&cols[0]);
        let pruned = panel.column(0);
        assert_eq!(pruned, reference, "values must compare equal");
        // ...and the divergence, if any, is confined to zero signs.
        for (a, b) in pruned.iter().zip(&reference) {
            if a.to_bits() != b.to_bits() {
                assert_eq!(*a, 0.0, "non-zero bit divergence");
                assert_eq!(*b, 0.0, "non-zero bit divergence");
            }
        }
    }

    #[test]
    fn inverse_tables_undo_forward_tables() {
        let mesh = sparse_mesh(8, 3);
        let tables = mesh.tables();
        let cols = columns(8, 6);
        let mut panel = Panel::from_columns(&cols);
        tables.forward_panel_blocked(&mut panel);
        tables.inverse_panel_blocked(&mut panel);
        for (lane, col) in cols.iter().enumerate() {
            for (a, b) in panel.column(lane).iter().zip(col) {
                assert!((a - b).abs() < 1e-12, "lane {lane}");
            }
        }
    }

    #[test]
    fn complex_meshes_are_rejected() {
        let mut mesh = Mesh::zeros(4, 1);
        mesh.set_alpha_at(0, 1, 0.4);
        assert!(std::panic::catch_unwind(|| mesh.tables()).is_err());
    }
}
