//! The paper's layered beam-splitter mesh (Fig. 3).
//!
//! One **layer** is a cascade of `N−1` gates `U(k,k+1)` covering every
//! adjacent mode pair once ("the number of single-layer quantum gates U is
//! N−1"); a **mesh** is `l` such layers. The compression network in the
//! paper uses `l_C = 12` layers on `N = 16` modes (12 × 15 parameters) and
//! the reconstruction network `l_R = 14` (14 × 15 parameters).
//!
//! Within a layer, gates are applied to the amplitude vector in ascending
//! mode order (`k = 0, 1, …, N−2`), the diagonal cascade drawn in the
//! paper's Fig. 3. The reconstruction network connects gates "in reverse
//! order of U" (Sec. II-C), so layers also support descending application
//! order; [`Mesh::reversed`] produces exactly that reversed structure.

use crate::beamsplitter::BeamSplitter;
use crate::sequence::GateSequence;
use qn_linalg::{Matrix, Panel};
use qn_sim::complex::Complex64;
use rand::Rng;

/// Gate application order within a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOrder {
    /// `k = 0, 1, …, N−2` (the forward cascade of Fig. 3).
    Ascending,
    /// `k = N−2, …, 1, 0` (the reversed cascade used by `U_R`).
    Descending,
}

/// One layer: `N−1` adjacent-mode rotations with per-gate parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshLayer {
    dim: usize,
    /// Reflectivity angles, `thetas[k]` for the gate on modes `(k, k+1)`.
    thetas: Vec<f64>,
    /// Phases (`α ≡ 0` for the paper's real network).
    alphas: Vec<f64>,
    order: GateOrder,
}

impl MeshLayer {
    /// Zero-initialised (identity) layer on `dim` modes.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim >= 2, "a layer needs at least two modes");
        MeshLayer {
            dim,
            thetas: vec![0.0; dim - 1],
            alphas: vec![0.0; dim - 1],
            order: GateOrder::Ascending,
        }
    }

    /// Layer from explicit angles (real gates, ascending order).
    ///
    /// # Panics
    /// Panics when `thetas.len() != dim − 1`.
    pub fn from_thetas(dim: usize, thetas: Vec<f64>) -> Self {
        assert_eq!(thetas.len(), dim - 1, "layer needs dim−1 angles");
        MeshLayer {
            dim,
            alphas: vec![0.0; dim - 1],
            thetas,
            order: GateOrder::Ascending,
        }
    }

    /// Layer from a complete parameter set — the exact inverse of reading
    /// [`MeshLayer::thetas`], [`MeshLayer::alphas`] and
    /// [`MeshLayer::order`] back. This is the reconstruction path model
    /// persistence (`qn-codec`) uses, so it must round-trip every layer a
    /// trainer or decomposition can produce, including descending-cascade
    /// layers from [`Mesh::reversed`].
    ///
    /// # Panics
    /// Panics when `thetas` and `alphas` are not both `dim − 1` long.
    pub fn from_parts(dim: usize, thetas: Vec<f64>, alphas: Vec<f64>, order: GateOrder) -> Self {
        assert!(dim >= 2, "a layer needs at least two modes");
        assert_eq!(thetas.len(), dim - 1, "layer needs dim−1 angles");
        assert_eq!(alphas.len(), dim - 1, "layer needs dim−1 phases");
        MeshLayer {
            dim,
            thetas,
            alphas,
            order,
        }
    }

    /// Number of modes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of gates (`dim − 1`).
    pub fn gate_count(&self) -> usize {
        self.thetas.len()
    }

    /// Gate application order.
    pub fn order(&self) -> GateOrder {
        self.order
    }

    /// Borrow the angles.
    pub fn thetas(&self) -> &[f64] {
        &self.thetas
    }

    /// Borrow the phases.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Mode indices in application order.
    pub(crate) fn positions(&self) -> Box<dyn Iterator<Item = usize>> {
        match self.order {
            GateOrder::Ascending => Box::new(0..self.dim - 1),
            GateOrder::Descending => Box::new((0..self.dim - 1).rev()),
        }
    }

    /// Mode indices in *reverse* application order (the inverse-pass
    /// visit order) — avoids collecting [`MeshLayer::positions`] into a
    /// scratch `Vec` on every inverse apply.
    pub(crate) fn positions_rev(&self) -> Box<dyn Iterator<Item = usize>> {
        match self.order {
            GateOrder::Ascending => Box::new((0..self.dim - 1).rev()),
            GateOrder::Descending => Box::new(0..self.dim - 1),
        }
    }

    /// True when every phase is zero.
    pub fn is_real(&self) -> bool {
        self.alphas.iter().all(|&a| a == 0.0)
    }

    /// Apply the layer to real amplitudes in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn apply_real(&self, amps: &mut [f64]) {
        assert_eq!(amps.len(), self.dim, "layer dimension mismatch");
        assert!(self.is_real(), "complex layer applied to real amplitudes");
        for k in self.positions() {
            let (s, c) = self.thetas[k].sin_cos();
            let a = amps[k];
            let b = amps[k + 1];
            amps[k] = c * a - s * b;
            amps[k + 1] = s * a + c * b;
        }
    }

    /// Apply the layer inverse (inverse gates in reverse order).
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn apply_real_inverse(&self, amps: &mut [f64]) {
        assert_eq!(amps.len(), self.dim, "layer dimension mismatch");
        assert!(self.is_real(), "complex layer applied to real amplitudes");
        for k in self.positions_rev() {
            let (s, c) = self.thetas[k].sin_cos();
            let a = amps[k];
            let b = amps[k + 1];
            amps[k] = c * a + s * b;
            amps[k + 1] = c * b - s * a;
        }
    }

    /// Apply the layer to every lane of a mode-major [`Panel`] in place.
    ///
    /// Bitwise-equivalent to [`MeshLayer::apply_real`] on each lane: the
    /// per-gate rotation is written with the identical `c·a − s·b` /
    /// `s·a + c·b` expressions and the identical [`f64::sin_cos`] values,
    /// evaluated once per gate instead of once per lane. The layout puts
    /// the two rotated mode rows contiguous in memory, so the lane loop
    /// is unit-stride and auto-vectorizable.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn apply_real_panel(&self, panel: &mut Panel) {
        assert_eq!(panel.dim(), self.dim, "layer dimension mismatch");
        assert!(self.is_real(), "complex layer applied to real amplitudes");
        for k in self.positions() {
            let (s, c) = self.thetas[k].sin_cos();
            let (row_a, row_b) = panel.row_pair_mut(k);
            for (a, b) in row_a.iter_mut().zip(row_b.iter_mut()) {
                let x = *a;
                let y = *b;
                *a = c * x - s * y;
                *b = s * x + c * y;
            }
        }
    }

    /// Apply the layer inverse to every lane of a [`Panel`] in place —
    /// bitwise-equivalent to [`MeshLayer::apply_real_inverse`] per lane.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn apply_real_inverse_panel(&self, panel: &mut Panel) {
        assert_eq!(panel.dim(), self.dim, "layer dimension mismatch");
        assert!(self.is_real(), "complex layer applied to real amplitudes");
        for k in self.positions_rev() {
            let (s, c) = self.thetas[k].sin_cos();
            let (row_a, row_b) = panel.row_pair_mut(k);
            for (a, b) in row_a.iter_mut().zip(row_b.iter_mut()) {
                let x = *a;
                let y = *b;
                *a = c * x + s * y;
                *b = c * y - s * x;
            }
        }
    }

    /// Apply to complex amplitudes in place (used by the complex-network
    /// extension; also valid for real layers).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn apply_complex(&self, amps: &mut [Complex64]) {
        assert_eq!(amps.len(), self.dim, "layer dimension mismatch");
        for k in self.positions() {
            qn_sim::rotation::apply_complex(amps, k, self.thetas[k], self.alphas[k])
                .expect("mode in range by construction");
        }
    }
}

/// A multi-layer beam-splitter mesh — the paper's quantum network `U`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mesh {
    dim: usize,
    layers: Vec<MeshLayer>,
}

impl Mesh {
    /// Identity mesh: `n_layers` zero-angle layers on `dim` modes.
    pub fn zeros(dim: usize, n_layers: usize) -> Self {
        Mesh {
            dim,
            layers: (0..n_layers).map(|_| MeshLayer::zeros(dim)).collect(),
        }
    }

    /// Mesh with θ drawn uniformly from `[0, 2π)` (the paper initialises θ
    /// "randomly or uniformly"; trained values stabilise in `[0, 2π]`).
    pub fn random(dim: usize, n_layers: usize, rng: &mut impl Rng) -> Self {
        let mut mesh = Mesh::zeros(dim, n_layers);
        for layer in &mut mesh.layers {
            for t in &mut layer.thetas {
                *t = rng.random::<f64>() * std::f64::consts::TAU;
            }
        }
        mesh
    }

    /// Mesh with θ drawn uniformly from `[-scale, scale]` — a small-angle
    /// initialisation that starts near the identity.
    pub fn random_small(dim: usize, n_layers: usize, scale: f64, rng: &mut impl Rng) -> Self {
        let mut mesh = Mesh::zeros(dim, n_layers);
        for layer in &mut mesh.layers {
            for t in &mut layer.thetas {
                *t = (rng.random::<f64>() * 2.0 - 1.0) * scale;
            }
        }
        mesh
    }

    /// Build from explicit layers.
    ///
    /// # Panics
    /// Panics when layers disagree on dimension.
    pub fn from_layers(layers: Vec<MeshLayer>) -> Self {
        assert!(!layers.is_empty(), "mesh needs at least one layer");
        let dim = layers[0].dim();
        assert!(
            layers.iter().all(|l| l.dim() == dim),
            "all layers must share a dimension"
        );
        Mesh { dim, layers }
    }

    /// Number of modes `N`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of layers `l`.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow the layers.
    pub fn layers(&self) -> &[MeshLayer] {
        &self.layers
    }

    /// Total trainable θ count: `l × (N−1)` (the paper's "12×15
    /// parameters" accounting).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.gate_count()).sum()
    }

    /// True when every layer is real.
    pub fn is_real(&self) -> bool {
        self.layers.iter().all(|l| l.is_real())
    }

    /// Flattened θ vector, layer-major.
    pub fn thetas(&self) -> Vec<f64> {
        self.layers
            .iter()
            .flat_map(|l| l.thetas.iter().copied())
            .collect()
    }

    /// Overwrite all θ from a flattened layer-major vector.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_thetas(&mut self, thetas: &[f64]) {
        assert_eq!(thetas.len(), self.param_count(), "theta length mismatch");
        let mut it = thetas.iter();
        for layer in &mut self.layers {
            for t in &mut layer.thetas {
                *t = *it.next().expect("length checked");
            }
        }
    }

    /// θ of one gate.
    pub fn theta_at(&self, layer: usize, gate: usize) -> f64 {
        self.layers[layer].thetas[gate]
    }

    /// Set θ of one gate.
    pub fn set_theta_at(&mut self, layer: usize, gate: usize, theta: f64) {
        self.layers[layer].thetas[gate] = theta;
    }

    /// Flattened α vector, layer-major (complex-network extension).
    pub fn alphas(&self) -> Vec<f64> {
        self.layers
            .iter()
            .flat_map(|l| l.alphas.iter().copied())
            .collect()
    }

    /// Overwrite all α from a flattened layer-major vector.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn set_alphas(&mut self, alphas: &[f64]) {
        assert_eq!(alphas.len(), self.param_count(), "alpha length mismatch");
        let mut it = alphas.iter();
        for layer in &mut self.layers {
            for a in &mut layer.alphas {
                *a = *it.next().expect("length checked");
            }
        }
    }

    /// Set α of one gate.
    pub fn set_alpha_at(&mut self, layer: usize, gate: usize, alpha: f64) {
        self.layers[layer].alphas[gate] = alpha;
    }

    /// Apply the full mesh to real amplitudes in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn forward_real(&self, amps: &mut [f64]) {
        for layer in &self.layers {
            layer.apply_real(amps);
        }
    }

    /// Forward pass into a fresh vector.
    pub fn forward_real_copy(&self, amps: &[f64]) -> Vec<f64> {
        let mut v = amps.to_vec();
        self.forward_real(&mut v);
        v
    }

    /// Apply the exact inverse `U⁻¹` in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn inverse_real(&self, amps: &mut [f64]) {
        for layer in self.layers.iter().rev() {
            layer.apply_real_inverse(amps);
        }
    }

    /// Apply the full mesh to every lane of a [`Panel`] in place —
    /// bitwise-equivalent to [`Mesh::forward_real`] on each lane (see
    /// [`MeshLayer::apply_real_panel`] for the exact guarantee).
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn forward_real_panel(&self, panel: &mut Panel) {
        for layer in &self.layers {
            layer.apply_real_panel(panel);
        }
    }

    /// Apply the exact inverse `U⁻¹` to every lane of a [`Panel`] in
    /// place — bitwise-equivalent to [`Mesh::inverse_real`] per lane.
    ///
    /// # Panics
    /// Panics on dimension mismatch or complex gates.
    pub fn inverse_real_panel(&self, panel: &mut Panel) {
        for layer in self.layers.iter().rev() {
            layer.apply_real_inverse_panel(panel);
        }
    }

    /// Apply to complex amplitudes in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn forward_complex(&self, amps: &mut [Complex64]) {
        for layer in &self.layers {
            layer.apply_complex(amps);
        }
    }

    /// The mesh with gates connected in reverse order (paper Sec. II-C:
    /// "the reconstruction network U_R can be the combination of the
    /// quantum gates in the compression network, connected in reverse
    /// order"): layers reversed, each layer's cascade direction flipped.
    pub fn reversed(&self) -> Mesh {
        let layers = self
            .layers
            .iter()
            .rev()
            .map(|l| MeshLayer {
                dim: l.dim,
                thetas: l.thetas.clone(),
                alphas: l.alphas.clone(),
                order: match l.order {
                    GateOrder::Ascending => GateOrder::Descending,
                    GateOrder::Descending => GateOrder::Ascending,
                },
            })
            .collect();
        Mesh {
            dim: self.dim,
            layers,
        }
    }

    /// Forward pass with a single θ perturbed by `delta` — the
    /// finite-difference probe `T_C(θ + Δ)` of the paper's Eq. (8),
    /// computed without mutating or cloning the mesh.
    pub fn forward_real_perturbed(
        &self,
        amps: &[f64],
        layer: usize,
        gate: usize,
        delta: f64,
    ) -> Vec<f64> {
        let mut v = amps.to_vec();
        for (li, l) in self.layers.iter().enumerate() {
            if li != layer {
                l.apply_real(&mut v);
                continue;
            }
            for k in l.positions() {
                let theta = if k == gate {
                    l.thetas[k] + delta
                } else {
                    l.thetas[k]
                };
                let (s, c) = theta.sin_cos();
                let a = v[k];
                let b = v[k + 1];
                v[k] = c * a - s * b;
                v[k + 1] = s * a + c * b;
            }
        }
        v
    }

    /// Exact analytic derivative `∂(U v)/∂θ_{layer,gate}`.
    ///
    /// The derivative of a single embedded rotation is the rotation
    /// advanced by π/2 on its 2×2 block and **zero** on every other mode,
    /// so the product rule collapses to: propagate to the target gate,
    /// substitute the derivative block (zeroing all other components),
    /// then propagate the rest linearly.
    pub fn forward_real_derivative(&self, amps: &[f64], layer: usize, gate: usize) -> Vec<f64> {
        let mut v = amps.to_vec();
        let mut hit = false;
        for (li, l) in self.layers.iter().enumerate() {
            if li != layer {
                l.apply_real(&mut v);
                continue;
            }
            for k in l.positions() {
                if k == gate {
                    let (s, c) = l.thetas[k].sin_cos();
                    let a = v[k];
                    let b = v[k + 1];
                    // d/dθ of [cθ·a − sθ·b, sθ·a + cθ·b]
                    let da = -s * a - c * b;
                    let db = c * a - s * b;
                    v.iter_mut().for_each(|x| *x = 0.0);
                    v[k] = da;
                    v[k + 1] = db;
                    hit = true;
                } else {
                    let (s, c) = l.thetas[k].sin_cos();
                    let a = v[k];
                    let b = v[k + 1];
                    v[k] = c * a - s * b;
                    v[k + 1] = s * a + c * b;
                }
            }
        }
        assert!(hit, "derivative target ({layer},{gate}) out of range");
        v
    }

    /// The flat `(layer, mode)` gate order of the whole mesh, as applied
    /// to an amplitude vector. The flattened parameter index of gate
    /// `(layer, mode)` is `layer · (N−1) + mode`, matching
    /// [`Mesh::thetas`]. Used by reverse-mode (backprop) gradients in
    /// `qn-core`.
    pub fn flat_gates(&self) -> Vec<(usize, usize)> {
        let mut order = Vec::with_capacity(self.param_count());
        for (li, l) in self.layers.iter().enumerate() {
            for k in l.positions() {
                order.push((li, k));
            }
        }
        order
    }

    /// Pack an arbitrary [`GateSequence`] into mesh layers by ASAP list
    /// scheduling: each gate is placed in the earliest layer after the
    /// last use of either of its modes. Gates sharing a mode (the only
    /// non-commuting pairs) keep their relative order across layers, and
    /// gates within one layer act on disjoint mode pairs, so the layer's
    /// fixed ascending application order reproduces the sequence exactly.
    /// Unused positions stay θ = 0 (identity). The resulting depth is the
    /// sequence's critical path — ≈ N layers for a Clements-pattern
    /// sequence.
    ///
    /// Returns the mesh together with the sequence's trailing sign
    /// diagonal, which the rigid layer structure cannot absorb; callers
    /// that only care about probability patterns (e.g. the trash-penalty
    /// compression loss) may ignore it, since `|±x|² = |x|²`.
    pub fn from_sequence_packed(seq: &GateSequence) -> (Mesh, Option<Vec<f64>>) {
        let dim = seq.dim();
        let mut layers: Vec<MeshLayer> = Vec::new();
        // Index of the first layer still available for each mode.
        let mut ready: Vec<usize> = vec![0; dim];
        for g in seq.gates() {
            let slot = ready[g.mode].max(ready[g.mode + 1]);
            if slot == layers.len() {
                layers.push(MeshLayer::zeros(dim));
            }
            layers[slot].thetas[g.mode] = g.theta;
            layers[slot].alphas[g.mode] = g.alpha;
            ready[g.mode] = slot + 1;
            ready[g.mode + 1] = slot + 1;
        }
        if layers.is_empty() {
            layers.push(MeshLayer::zeros(dim));
        }
        (Mesh { dim, layers }, seq.signs().map(|s| s.to_vec()))
    }

    /// Flatten to a [`GateSequence`] (loses nothing; used for interop with
    /// the decomposition tooling and the lossy propagation model).
    pub fn to_sequence(&self) -> GateSequence {
        let mut seq = GateSequence::new(self.dim);
        for l in &self.layers {
            for k in l.positions() {
                seq.push(BeamSplitter {
                    mode: k,
                    theta: l.thetas[k],
                    alpha: l.alphas[k],
                });
            }
        }
        seq
    }

    /// Dense orthogonal matrix of the whole mesh.
    pub fn as_matrix(&self) -> Matrix {
        self.to_sequence().as_matrix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_linalg::vector::norm2;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn paper_parameter_counts() {
        // l_C = 12 layers on N = 16 modes → 12 × 15 parameters.
        let uc = Mesh::zeros(16, 12);
        assert_eq!(uc.param_count(), 12 * 15);
        // l_R = 14 layers → 14 × 15 parameters.
        let ur = Mesh::zeros(16, 14);
        assert_eq!(ur.param_count(), 14 * 15);
    }

    #[test]
    fn zero_mesh_is_identity() {
        let m = Mesh::zeros(8, 3);
        let v0 = vec![0.5, -0.1, 0.3, 0.2, 0.0, 0.7, -0.2, 0.1];
        let mut v = v0.clone();
        m.forward_real(&mut v);
        assert_eq!(v, v0);
        assert!(m.as_matrix().max_abs_diff(&Matrix::identity(8)).unwrap() < TOL);
    }

    #[test]
    fn forward_preserves_norm() {
        let m = Mesh::random(16, 4, &mut rng());
        let mut v = vec![0.25; 16];
        let n0 = norm2(&v);
        m.forward_real(&mut v);
        assert!((norm2(&v) - n0).abs() < TOL);
    }

    #[test]
    fn mesh_matrix_is_orthogonal() {
        let m = Mesh::random(8, 3, &mut rng());
        assert!(m.as_matrix().is_orthogonal(1e-11));
    }

    #[test]
    fn inverse_is_exact() {
        let m = Mesh::random(10, 5, &mut rng());
        let orig: Vec<f64> = (0..10).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut v = orig.clone();
        m.forward_real(&mut v);
        m.inverse_real(&mut v);
        for (a, b) in v.iter().zip(&orig) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn theta_get_set_roundtrip() {
        let mut m = Mesh::random(6, 2, &mut rng());
        let t = m.thetas();
        assert_eq!(t.len(), 10);
        let mut m2 = Mesh::zeros(6, 2);
        m2.set_thetas(&t);
        assert_eq!(m2.thetas(), t);
        assert_eq!(m2, m);
        m.set_theta_at(1, 3, 9.0);
        assert_eq!(m.theta_at(1, 3), 9.0);
    }

    #[test]
    #[should_panic(expected = "theta length mismatch")]
    fn set_thetas_validates_length() {
        Mesh::zeros(4, 1).set_thetas(&[0.0; 5]);
    }

    #[test]
    fn reversed_mesh_reverses_application_order() {
        // For a single layer, reversed() applies the same gates in the
        // opposite cascade direction — different operator in general.
        let m = Mesh::random(5, 1, &mut rng());
        let r = m.reversed();
        assert_eq!(r.layers()[0].order(), GateOrder::Descending);
        let a = m.as_matrix();
        let b = r.as_matrix();
        assert!(a.max_abs_diff(&b).unwrap() > 1e-3);
        // Reversing twice restores the original.
        assert_eq!(r.reversed(), m);
    }

    #[test]
    fn reversed_of_inverse_angles_is_inverse() {
        // U⁻¹ = reversed structure with negated angles.
        let m = Mesh::random(6, 3, &mut rng());
        let mut rinv = m.reversed();
        let negated: Vec<f64> = rinv.thetas().iter().map(|t| -t).collect();
        rinv.set_thetas(&negated);
        let prod = m.as_matrix().matmul(&rinv.as_matrix()).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(6)).unwrap() < 1e-11);
    }

    #[test]
    fn perturbed_forward_matches_mutated_mesh() {
        let m = Mesh::random(8, 3, &mut rng());
        let v: Vec<f64> = (0..8).map(|i| ((i + 1) as f64).recip()).collect();
        let delta = 0.123;
        let fast = m.forward_real_perturbed(&v, 1, 4, delta);
        let mut m2 = m.clone();
        m2.set_theta_at(1, 4, m.theta_at(1, 4) + delta);
        let slow = m2.forward_real_copy(&v);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn analytic_derivative_matches_central_difference() {
        let m = Mesh::random(8, 3, &mut rng());
        let v: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos() * 0.35).collect();
        let h = 1e-6;
        for (layer, gate) in [(0usize, 0usize), (1, 4), (2, 6), (2, 0)] {
            let exact = m.forward_real_derivative(&v, layer, gate);
            let plus = m.forward_real_perturbed(&v, layer, gate, h);
            let minus = m.forward_real_perturbed(&v, layer, gate, -h);
            for i in 0..8 {
                let fd = (plus[i] - minus[i]) / (2.0 * h);
                assert!(
                    (fd - exact[i]).abs() < 1e-8,
                    "({layer},{gate}) component {i}: fd={fd} exact={}",
                    exact[i]
                );
            }
        }
    }

    #[test]
    fn to_sequence_matches_mesh() {
        let m = Mesh::random(6, 2, &mut rng());
        let seq = m.to_sequence();
        assert_eq!(seq.len(), 2 * 5);
        let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.1 - 0.2).collect();
        let mut v1 = x.clone();
        m.forward_real(&mut v1);
        let mut v2 = x;
        seq.apply_real(&mut v2);
        for (a, b) in v1.iter().zip(&v2) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn complex_forward_matches_real_for_real_mesh() {
        let m = Mesh::random(5, 2, &mut rng());
        let x = [0.1, -0.4, 0.3, 0.7, 0.05];
        let mut rv = x.to_vec();
        m.forward_real(&mut rv);
        let mut cv: Vec<Complex64> = x.iter().map(|&r| Complex64::from_real(r)).collect();
        m.forward_complex(&mut cv);
        for (c, r) in cv.iter().zip(&rv) {
            assert!((c.re - r).abs() < TOL);
            assert!(c.im.abs() < TOL);
        }
    }

    #[test]
    fn complex_mesh_rejected_on_real_path() {
        let mut m = Mesh::zeros(4, 1);
        m.set_alpha_at(0, 1, 0.5);
        assert!(!m.is_real());
        let result = std::panic::catch_unwind(|| {
            let mut v = vec![1.0, 0.0, 0.0, 0.0];
            m.forward_real(&mut v);
        });
        assert!(result.is_err());
    }

    #[test]
    fn packed_mesh_reproduces_sequence() {
        use crate::beamsplitter::BeamSplitter;
        use crate::sequence::GateSequence;
        // A deliberately awkward order with overlapping and disjoint gates.
        let mut seq = GateSequence::new(6);
        for (k, t) in [
            (2usize, 0.3),
            (4, -0.7), // disjoint from (2,3): same layer
            (3, 1.1),  // overlaps both: new layer
            (0, 0.5),  // disjoint: joins second layer
            (0, 0.2),  // overlaps itself: third layer
        ] {
            seq.push(BeamSplitter::real(k, t));
        }
        let (mesh, signs) = Mesh::from_sequence_packed(&seq);
        assert!(signs.is_none());
        // ASAP scheduling: (2,·) and (4,·) share layer 0 with (0, 0.5);
        // (3,·) and the second (0,·) land in layer 1.
        assert_eq!(mesh.n_layers(), 2);
        let x: Vec<f64> = (0..6).map(|i| ((i * i) as f64 * 0.1).sin()).collect();
        let mut via_seq = x.clone();
        seq.apply_real(&mut via_seq);
        let via_mesh = mesh.forward_real_copy(&x);
        for (a, b) in via_seq.iter().zip(&via_mesh) {
            assert!((a - b).abs() < TOL);
        }
    }

    #[test]
    fn packed_mesh_from_decomposition_matches_up_to_signs() {
        let u = qn_linalg::random::haar_orthogonal(8, 21);
        let seq = crate::clements::clements_decompose(&u, 1e-10).unwrap();
        let (mesh, signs) = Mesh::from_sequence_packed(&seq);
        // mesh followed by the sign diagonal reproduces U exactly.
        let mut m = mesh.as_matrix();
        if let Some(s) = signs {
            for (i, &si) in s.iter().enumerate() {
                for j in 0..8 {
                    let v = m.get(i, j) * si;
                    m.set(i, j, v);
                }
            }
        }
        assert!(m.max_abs_diff(&u).unwrap() < 1e-10);
        // Rectangular packing stays shallow: about N layers.
        assert!(mesh.n_layers() <= 10, "layers = {}", mesh.n_layers());
    }

    #[test]
    fn panel_forward_is_bit_identical_to_per_vector_forward() {
        // Descending-order layers included: reversed() flips the cascade.
        for mesh in [
            Mesh::random(9, 4, &mut rng()),
            Mesh::random(9, 4, &mut rng()).reversed(),
        ] {
            let columns: Vec<Vec<f64>> = (0..5)
                .map(|l| (0..9).map(|i| ((l * 9 + i) as f64 * 0.37).sin()).collect())
                .collect();
            let mut panel = Panel::from_columns(&columns);
            mesh.forward_real_panel(&mut panel);
            for (lane, col) in columns.iter().enumerate() {
                let reference = mesh.forward_real_copy(col);
                assert_eq!(panel.column(lane), reference, "lane {lane}");
            }
        }
    }

    #[test]
    fn panel_inverse_is_bit_identical_to_per_vector_inverse() {
        let mesh = Mesh::random(7, 3, &mut rng());
        let columns: Vec<Vec<f64>> = (0..4)
            .map(|l| (0..7).map(|i| ((l + 2 * i) as f64 * 0.21).cos()).collect())
            .collect();
        let mut panel = Panel::from_columns(&columns);
        mesh.inverse_real_panel(&mut panel);
        for (lane, col) in columns.iter().enumerate() {
            let mut reference = col.clone();
            mesh.inverse_real(&mut reference);
            assert_eq!(panel.column(lane), reference, "lane {lane}");
        }
    }

    #[test]
    fn panel_inverse_undoes_panel_forward() {
        let mesh = Mesh::random(6, 3, &mut rng());
        let columns: Vec<Vec<f64>> = (0..3)
            .map(|l| (0..6).map(|i| ((l * 6 + i + 1) as f64).recip()).collect())
            .collect();
        let mut panel = Panel::from_columns(&columns);
        mesh.forward_real_panel(&mut panel);
        mesh.inverse_real_panel(&mut panel);
        for (lane, col) in columns.iter().enumerate() {
            for (a, b) in panel.column(lane).iter().zip(col) {
                assert!((a - b).abs() < TOL);
            }
        }
    }

    #[test]
    fn complex_mesh_rejected_on_panel_path() {
        let mut m = Mesh::zeros(4, 1);
        m.set_alpha_at(0, 1, 0.5);
        let result = std::panic::catch_unwind(|| {
            let mut panel = Panel::zeros(4, 2);
            m.forward_real_panel(&mut panel);
        });
        assert!(result.is_err());
    }

    #[test]
    fn small_random_init_is_near_identity() {
        let m = Mesh::random_small(8, 2, 0.01, &mut rng());
        let d = m.as_matrix().max_abs_diff(&Matrix::identity(8)).unwrap();
        assert!(d < 0.1);
        assert!(d > 0.0);
    }
}
