//! Tracing suite: wire-propagated trace context, the TRACE RPC, slow
//! capture, and the two invariants the subsystem stands on —
//! **tracing never perturbs encoded bytes**, and telemetry polls
//! (STATS/TRACE) never interfere with in-flight encodes.

use qn_codec::{Codec, CodecOptions};
use qn_image::datasets;
use qn_serve::client::spectral_encode_request;
use qn_serve::{spawn, Client, ServerConfig, ServerHandle, TraceContext};
use qn_trace::parse_traces;
use std::time::Duration;

fn boot(config: ServerConfig) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(2),
        ..config
    })
    .expect("spawn server")
}

#[test]
fn traced_encode_round_trip_returns_a_well_formed_span_tree() {
    let server = boot(ServerConfig::default());
    let img = datasets::grayscale_blobs(1, 32, 24, 42).remove(0);
    let opts = CodecOptions::default();
    let mut client = Client::connect(server.addr()).unwrap();
    let ctx = TraceContext {
        id: 0xABCD_EF01,
        sampled: true,
    };
    let bytes = client
        .encode_traced(&spectral_encode_request(&img, &opts, 8), ctx)
        .unwrap();
    assert!(!bytes.is_empty());

    // The trace is recorded before the reply reaches the client, so a
    // same-connection fetch right after always finds it.
    let json = client.trace(false, Some(ctx.id)).unwrap();
    let traces = parse_traces(&json).unwrap();
    assert_eq!(traces.len(), 1, "{json}");
    let t = &traces[0];
    assert_eq!(t.id, ctx.id);
    assert_eq!(t.name(), "encode");
    for name in [
        "frame_read",
        "parse",
        "spectral",
        "prepare",
        "batch_wait",
        "mesh_pass",
        "quantize",
        "entropy",
        "reply_write",
    ] {
        assert!(t.span(name).is_some(), "span {name} missing: {json}");
    }

    // Attribution: the batcher tells the request why its batch flushed
    // and how many tiles rode the shared pass; 32x24 / 4x4 = 48 tiles.
    assert_eq!(t.spans[0].attr("tiles"), Some("48"));
    assert_eq!(t.spans[0].attr("origin"), Some("client"));
    let bw = t.span("batch_wait").unwrap();
    assert!(
        matches!(
            bw.attr("cause"),
            Some("full" | "deadline" | "eager" | "drain")
        ),
        "flush cause attr: {:?}",
        bw.attr("cause")
    );
    let batch_tiles: usize = bw.attr("batch_tiles").unwrap().parse().unwrap();
    assert!(batch_tiles >= 48, "merged batch holds at least our tiles");
    assert!(t.span("mesh_pass").unwrap().attr("backend").is_some());
    assert_eq!(t.span("entropy").unwrap().attr("coder"), Some("rice"));

    // Structure: mesh_pass nests under batch_wait; every span sits
    // inside the root, and the top-level stages sum to within the root
    // duration (they are sequential).
    let bw_idx = t.spans.iter().position(|s| s.name == "batch_wait").unwrap();
    let mesh = t.span("mesh_pass").unwrap();
    assert_eq!(mesh.parent, Some(bw_idx));
    for s in &t.spans {
        assert!(s.start_ns <= s.end_ns, "span {} runs backwards", s.name);
        assert!(
            s.end_ns <= t.duration_ns(),
            "span {} ends after the root",
            s.name
        );
    }
    let stage_sum: u64 = t
        .children(0)
        .into_iter()
        .map(|i| t.spans[i].duration_ns())
        .sum();
    assert!(
        stage_sum <= t.duration_ns(),
        "top-level stages ({stage_sum} ns) exceed the root ({} ns)",
        t.duration_ns()
    );
}

#[test]
fn tracing_never_perturbs_encoded_bytes() {
    let img = datasets::grayscale_blobs(1, 32, 32, 7).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let req = spectral_encode_request(&img, &opts, 8);
    let ctx = TraceContext {
        id: 0x1dea,
        sampled: true,
    };

    let server = boot(ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let untraced = client.encode(&req).unwrap();
    let traced = client.encode_traced(&req, ctx).unwrap();
    assert_eq!(untraced, offline, "untraced remote matches offline");
    assert_eq!(traced, offline, "tracing must not change a single byte");

    // Same request against a tracing-disabled server: the context is
    // stripped and ignored, bytes still identical.
    let quiet = boot(ServerConfig {
        tracing: false,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(quiet.addr()).unwrap();
    assert_eq!(client.encode_traced(&req, ctx).unwrap(), offline);

    // Traced decodes return the same pixels as untraced ones.
    let mut client = Client::connect(server.addr()).unwrap();
    let plain = client.decode(&offline).unwrap();
    let traced = client.decode_traced(&offline, ctx).unwrap();
    assert_eq!(plain, traced);
}

#[test]
fn slow_capture_self_traces_untraced_requests() {
    // A 1 ns threshold makes every request slow; clients send no trace
    // context at all, so every captured trace is server-originated.
    let server = boot(ServerConfig {
        slow_threshold: Duration::from_nanos(1),
        ..ServerConfig::default()
    });
    let img = datasets::grayscale_blobs(1, 24, 24, 3).remove(0);
    let opts = CodecOptions::default();
    let mut client = Client::connect(server.addr()).unwrap();
    let _ = client
        .encode(&spectral_encode_request(&img, &opts, 8))
        .unwrap();

    let slow = parse_traces(&client.trace(true, None).unwrap()).unwrap();
    assert!(!slow.is_empty(), "the encode lands in the slow buffer");
    let t = slow.last().unwrap();
    assert_eq!(t.name(), "encode");
    assert_eq!(t.spans[0].attr("origin"), Some("slow"));
    assert!(t.span("batch_wait").is_some());

    // The same trace sits in the recent ring, and the id filter finds
    // exactly it in both modes.
    let recent = parse_traces(&client.trace(false, None).unwrap()).unwrap();
    assert!(recent.iter().any(|r| r.id == t.id));
    let by_id = parse_traces(&client.trace(true, Some(t.id)).unwrap()).unwrap();
    assert_eq!(by_id.len(), 1);
    assert_eq!(by_id[0].id, t.id);
    let none = parse_traces(&client.trace(false, Some(0xdead_beef)).unwrap()).unwrap();
    assert!(none.is_empty(), "unknown ids filter to an empty set");
}

#[test]
fn disabled_tracing_answers_typed_errors_and_info_advertises_it() {
    let quiet = boot(ServerConfig {
        tracing: false,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(quiet.addr()).unwrap();
    let err = client.trace(false, None).unwrap_err();
    assert!(
        err.to_string().contains("tracing is disabled"),
        "got: {err}"
    );
    assert!(client.info(None).unwrap().contains("\"tracing\":false"));

    let live = boot(ServerConfig::default());
    let mut client = Client::connect(live.addr()).unwrap();
    let info = client.info(None).unwrap();
    assert!(info.contains("\"tracing\":true"), "{info}");
    assert!(info.contains("\"slow_ms\":0"), "{info}");
    // An empty recent ring is a well-formed empty reply, not an error.
    assert!(parse_traces(&client.trace(false, None).unwrap())
        .unwrap()
        .is_empty());
}

#[test]
fn concurrent_stats_and_trace_polls_never_skew_inflight_or_deadlock() {
    let server = boot(ServerConfig {
        slow_threshold: Duration::from_nanos(1),
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let img = datasets::grayscale_blobs(1, 24, 24, 11).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();

    let encoders: Vec<_> = (0..6u64)
        .map(|worker| {
            let img = img.clone();
            let opts = opts.clone();
            let offline = offline.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3u64 {
                    let ctx = TraceContext {
                        id: 0x1000 + worker * 10 + round,
                        sampled: true,
                    };
                    let bytes = client
                        .encode_traced(&spectral_encode_request(&img, &opts, 8), ctx)
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(bytes, offline, "worker {worker} round {round}");
                }
            })
        })
        .collect();
    // Pollers hammer STATS and TRACE while the encodes are in flight —
    // neither touches the batcher, so they must never stall behind (or
    // stall) a batch, and the in-flight gauge must stay consistent.
    let pollers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..20 {
                    let stats = client.stats().expect("stats poll");
                    assert!(stats.contains("\"serve_inflight_requests\":"));
                    let json = client.trace(false, None).expect("trace poll");
                    parse_traces(&json).expect("trace JSON parses");
                }
            })
        })
        .collect();
    for h in encoders {
        h.join().expect("encoder thread");
    }
    for h in pollers {
        h.join().expect("poller thread");
    }

    // Every request drained: the in-flight gauge is back to zero and
    // all 18 encodes were captured (recent ring holds 64).
    let mut client = Client::connect(addr).unwrap();
    let stats = client.stats().unwrap();
    assert!(
        stats.contains("\"serve_inflight_requests\":0"),
        "in-flight gauge skewed: {stats}"
    );
    let recent = parse_traces(&client.trace(false, None).unwrap()).unwrap();
    assert!(recent.len() >= 18, "all traced encodes captured");
}

/// Golden test: the Prometheus exposition of a deterministic metrics
/// state, byte for byte. Regenerate with `QN_BLESS=1 cargo test -p
/// qn-serve --test serve_tracing prometheus` after intentional
/// catalogue changes.
#[test]
fn prometheus_exposition_matches_golden_bytes() {
    use qn_codec::{EncodeTimings, EntropyCoder};
    use qn_serve::{Opcode, ServeMetrics};

    let m = ServeMetrics::new();
    for op in qn_serve::metrics::REQUEST_OPS {
        m.record_request(Some(op));
    }
    m.record_frame_in(100);
    m.record_frame_out(200);
    m.connection_opened();
    m.record_coded_bytes(EntropyCoder::Rice, 1234);
    m.record_encode_timings(&EncodeTimings {
        prepare_ns: 1_000,
        mesh_ns: 2_000,
        quantize_ns: 3_000,
        entropy_ns: 4_000,
    });
    m.record_latency(Some(Opcode::Encode), 50_000);
    m.set_gate_table_stats(7, 2, 1);
    // registry().to_prometheus() skips the live gate-table re-sync the
    // prometheus() entry point performs, keeping the bytes pinnable.
    let actual = m.registry().to_prometheus();

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/prometheus_exposition.txt"
    );
    if std::env::var_os("QN_BLESS").is_some() {
        std::fs::write(path, &actual).expect("bless golden");
    }
    let expected = std::fs::read_to_string(path).expect("golden file (bless with QN_BLESS=1)");
    assert_eq!(
        actual, expected,
        "Prometheus exposition drifted from the golden bytes; \
         bless with QN_BLESS=1 if the change is intentional"
    );
}
