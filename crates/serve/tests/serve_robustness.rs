//! Protocol-robustness corpus, mirroring `tests/decoder_robustness.rs`
//! one layer up: malformed, truncated, oversized and bit-flipped
//! frames, allocation-bomb length fields and mid-frame disconnects are
//! thrown at a live server. The server must never panic: every case
//! ends in a typed error reply or a clean close, and — the part a
//! panic would break — the server keeps answering healthy requests
//! afterwards.

use qn_codec::bitstream::crc32;
use qn_codec::{Codec, CodecOptions};
use qn_image::datasets;
use qn_serve::client::spectral_encode_request;
use qn_serve::protocol::{ErrorCode, Frame, FrameError, Opcode, HEADER_LEN};
use qn_serve::{spawn, Client, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn boot() -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

/// Prove the server is still alive: a fresh connection completes a
/// full encode round-trip.
fn assert_alive(server: &ServerHandle, tag: &str) {
    let img = datasets::grayscale_blobs(1, 8, 8, 1).remove(0);
    let mut client =
        Client::connect(server.addr()).unwrap_or_else(|e| panic!("{tag}: server unreachable: {e}"));
    let bytes = client
        .encode(&spectral_encode_request(&img, &CodecOptions::default(), 8))
        .unwrap_or_else(|e| panic!("{tag}: healthy encode failed: {e}"));
    client
        .decode(&bytes)
        .unwrap_or_else(|e| panic!("{tag}: healthy decode failed: {e}"));
}

/// Write raw bytes, then read whatever the server answers until it
/// closes (or a short timeout). Returns the reply bytes.
fn send_raw(server: &ServerHandle, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(bytes).expect("write");
    // Half-close so the server sees EOF (the mid-frame disconnect)
    // immediately instead of waiting for more bytes.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut reply = Vec::new();
    let _ = stream.read_to_end(&mut reply);
    reply
}

/// Parse a single reply frame out of raw bytes.
fn parse_reply(bytes: &[u8], tag: &str) -> Frame {
    Frame::read_from(&mut &bytes[..]).unwrap_or_else(|e| panic!("{tag}: unparseable reply: {e}"))
}

fn expect_error(server: &ServerHandle, raw: &[u8], code: ErrorCode, tag: &str) {
    let reply = parse_reply(&send_raw(server, raw), tag);
    assert_eq!(
        reply.status,
        code as u16,
        "{tag}: expected {code:?}, got status {} ({})",
        reply.status,
        String::from_utf8_lossy(&reply.payload)
    );
    assert_alive(server, tag);
}

#[test]
fn stream_level_violations_answer_typed_errors_and_close() {
    let server = boot();

    // An HTTP request is the classic cross-protocol probe.
    expect_error(
        &server,
        b"GET / HTTP/1.1\r\nHost: qn\r\n\r\n",
        ErrorCode::BadMagic,
        "http probe",
    );

    // Correct magic, future protocol version.
    let mut future = Frame::request(Opcode::Info, 1, Vec::new()).to_bytes();
    future[4] = 200;
    refix_frame_crc(&mut future);
    expect_error(
        &server,
        &future,
        ErrorCode::UnsupportedVersion,
        "future version",
    );

    // Allocation bomb: length field claims 4 GiB. Must be rejected
    // before any allocation, typed, and the connection closed.
    let mut bomb = Frame::request(Opcode::Decode, 2, Vec::new()).to_bytes();
    bomb[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    expect_error(&server, &bomb, ErrorCode::FrameTooLarge, "length bomb");

    // Bit-flipped payload with the original CRC.
    let mut flipped = Frame::request(Opcode::Info, 3, vec![0u8; 32]).to_bytes();
    flipped[HEADER_LEN + 5] ^= 0x40;
    expect_error(&server, &flipped, ErrorCode::BadCrc, "bit flip");
}

#[test]
fn truncations_and_midframe_disconnects_close_cleanly() {
    let server = boot();
    let full = Frame::request(Opcode::Info, 9, vec![7u8; 64]).to_bytes();
    // Cut everywhere interesting: inside the magic, the header, the
    // payload and the CRC. The server gets EOF mid-frame and must just
    // drop the connection.
    for cut in [
        0,
        1,
        3,
        7,
        15,
        HEADER_LEN,
        HEADER_LEN + 1,
        full.len() - 5,
        full.len() - 1,
    ] {
        let reply = send_raw(&server, &full[..cut]);
        assert!(
            reply.is_empty(),
            "cut {cut}: expected silent close, got {} reply bytes",
            reply.len()
        );
    }
    assert_alive(&server, "after truncations");
}

#[test]
fn request_level_failures_keep_the_connection_alive() {
    let server = boot();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown opcode: typed error, connection survives.
    let reply = client.roundtrip_raw_opcode(0x6E, Vec::new());
    assert_eq!(reply.status, ErrorCode::BadRequest as u16);

    // Corrupt container in DECODE.
    match client.decode(b"QNC1 but not really a container") {
        Err(qn_serve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::Codec as u16)
        }
        other => panic!("corrupt decode: {other:?}"),
    }

    // Structurally valid container whose model is not in the zoo.
    let img = datasets::grayscale_blobs(1, 16, 16, 21).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let lean = codec
        .encode_image(
            &img,
            &CodecOptions {
                inline_model: false,
                ..CodecOptions::default()
            },
        )
        .unwrap();
    match client.decode(&lean) {
        Err(qn_serve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::UnknownModel as u16)
        }
        other => panic!("unknown model: {other:?}"),
    }

    // Garbage LOAD_MODEL payload.
    match client.load_model(b"QNMD???????") {
        Err(qn_serve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::Codec as u16)
        }
        other => panic!("garbage model: {other:?}"),
    }

    // Malformed ENCODE payloads: too short, and a pixel-count bomb.
    let reply = client.roundtrip_raw_opcode(Opcode::Encode as u8, vec![0u8; 10]);
    assert_eq!(reply.status, ErrorCode::BadRequest as u16);
    let mut bomb = vec![0u8; 24];
    bomb[0..2].copy_from_slice(&4u16.to_le_bytes());
    bomb[2] = 8;
    bomb[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes());
    bomb[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes());
    let reply = client.roundtrip_raw_opcode(Opcode::Encode as u8, bomb);
    assert_eq!(reply.status, ErrorCode::BadRequest as u16);

    // Spectral tile-size bomb: a tiny (1×1) image asking for a 65535²
    // model must be rejected typed, not allocated (~34 GB otherwise).
    let mut tile_bomb = vec![0u8; 24 + 8];
    tile_bomb[0..2].copy_from_slice(&u16::MAX.to_le_bytes());
    tile_bomb[2] = 8;
    tile_bomb[4..6].copy_from_slice(&1u16.to_le_bytes());
    tile_bomb[16..20].copy_from_slice(&1u32.to_le_bytes());
    tile_bomb[20..24].copy_from_slice(&1u32.to_le_bytes());
    tile_bomb[24..32].copy_from_slice(&0.5f64.to_bits().to_le_bytes());
    let reply = client.roundtrip_raw_opcode(Opcode::Encode as u8, tile_bomb);
    assert_eq!(reply.status, ErrorCode::BadRequest as u16);

    // Decode dimension bomb: a structurally plausible container
    // declaring a 131072×131072 image (only empty-tile bits, so the
    // tile count passes the payload-bits check) must be rejected by
    // the serving pixel limit before any tile vector or untile buffer
    // is allocated. The dims sit at fixed offsets 16..24.
    let mut dim_bomb = codec.encode_image(&img, &CodecOptions::default()).unwrap();
    dim_bomb[16..20].copy_from_slice(&(1u32 << 17).to_le_bytes());
    dim_bomb[20..24].copy_from_slice(&(1u32 << 17).to_le_bytes());
    let body = dim_bomb.len() - 4;
    let crc = qn_codec::bitstream::crc32(&dim_bomb[..body]).to_le_bytes();
    dim_bomb[body..].copy_from_slice(&crc);
    for op in [Opcode::Decode, Opcode::Info] {
        let reply = client.roundtrip_raw_opcode(op as u8, dim_bomb.clone());
        assert_eq!(
            reply.status,
            ErrorCode::BadRequest as u16,
            "{op:?} dim bomb: {}",
            String::from_utf8_lossy(&reply.payload)
        );
    }

    // INFO on unrecognised bytes.
    match client.info(Some(b"neither format")) {
        Err(qn_serve::ServeError::Remote { code, .. }) => {
            assert_eq!(code, ErrorCode::Codec as u16)
        }
        other => panic!("garbage info: {other:?}"),
    }

    // The same connection still serves a healthy request after the
    // whole gauntlet.
    let bytes = client
        .encode(&spectral_encode_request(&img, &CodecOptions::default(), 8))
        .unwrap();
    assert_eq!(
        client.decode(&bytes).unwrap(),
        codec.decode_bytes(&bytes).unwrap()
    );
}

#[test]
fn every_truncation_of_a_valid_frame_is_handled() {
    // The fine-grained sweep: every prefix of a real encode request
    // either closes cleanly (EOF mid-frame) — it can never panic the
    // server or elicit a malformed reply.
    let server = boot();
    let img = datasets::grayscale_blobs(1, 8, 8, 2).remove(0);
    let full = Frame::request(
        Opcode::Encode,
        1,
        spectral_encode_request(&img, &CodecOptions::default(), 8).to_payload(),
    )
    .to_bytes();
    // Sample the cut space (full sweeps of multi-hundred-byte frames
    // are slow over real sockets; header cuts are exhaustive).
    let cuts: Vec<usize> = (0..HEADER_LEN + 4)
        .chain((HEADER_LEN + 4..full.len()).step_by(97))
        .collect();
    for cut in cuts {
        let reply = send_raw(&server, &full[..cut]);
        if !reply.is_empty() {
            // A parseable typed reply is also acceptable (e.g. the cut
            // landed exactly on a frame boundary).
            parse_reply(&reply, &format!("cut {cut}"));
        }
    }
    assert_alive(&server, "after truncation sweep");
}

#[test]
fn pipelined_garbage_after_a_valid_frame_does_not_corrupt_the_reply() {
    let server = boot();
    let img = datasets::grayscale_blobs(1, 8, 8, 3).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let offline = codec.encode_image(&img, &CodecOptions::default()).unwrap();
    let mut raw = Frame::request(
        Opcode::Encode,
        5,
        spectral_encode_request(&img, &CodecOptions::default(), 8).to_payload(),
    )
    .to_bytes();
    raw.extend_from_slice(b"trailing garbage that is not a frame");
    let reply_bytes = send_raw(&server, &raw);
    let reply = parse_reply(&reply_bytes, "pipelined garbage");
    assert_eq!(
        reply.status,
        0,
        "{}",
        String::from_utf8_lossy(&reply.payload)
    );
    assert_eq!(
        reply.payload, offline,
        "valid request must answer correct bytes"
    );
    assert_alive(&server, "after pipelined garbage");
}

#[test]
fn a_thousand_idle_connections_stay_alive_with_timeouts_disabled() {
    // The poll core's reason to exist: idle connections cost no
    // threads and are never reaped (the read deadline only runs
    // mid-frame). Park 1000 of them, then prove a sample still
    // round-trips.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        read_timeout: Duration::ZERO,
        batch_deadline: Duration::from_millis(1),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let mut socks = Vec::with_capacity(1000);
    for i in 0..1000 {
        let stream = TcpStream::connect(server.addr())
            .unwrap_or_else(|e| panic!("connect #{i}: {e} (check the process fd limit)"));
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        socks.push(stream);
    }
    // Wait for every accept to land in the reactor.
    let metrics = std::sync::Arc::clone(server.metrics().expect("metrics on"));
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    loop {
        if metrics
            .stats_json()
            .contains("\"serve_open_connections\":1000")
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "reactor never reached 1000 open connections: {}",
            metrics.stats_json()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Idle for several poll cycles, then every 100th connection must
    // still answer — no reap, no starvation by its 999 idle peers.
    std::thread::sleep(Duration::from_millis(200));
    for (i, stream) in socks.iter_mut().enumerate().step_by(100) {
        let frame = Frame::request(Opcode::Info, i as u32, Vec::new());
        frame.write_to(stream).expect("write INFO");
        let reply = Frame::read_from(stream).unwrap_or_else(|e| panic!("conn #{i} reply: {e}"));
        assert_eq!(reply.status, 0, "conn #{i}: {reply:?}");
        assert_eq!(reply.request_id, i as u32);
    }
    assert!(
        metrics
            .stats_json()
            .contains("\"serve_read_deadline_reaps_total\":0"),
        "idle connections must never be reaped: {}",
        metrics.stats_json()
    );
}

#[test]
fn a_peer_that_reads_late_is_throttled_and_still_gets_every_reply() {
    // A peer pipelines far more requests than the reply queue limit
    // can hold while not reading any replies: the server must stop
    // reading (TCP flow control throttles the writer) instead of
    // queueing replies without bound — and once the peer does read,
    // every request must still get its typed reply, in order, on a
    // connection that was never dropped or reaped. Run with a short
    // read timeout to pin that the throttle window does not count
    // against the frame-completion deadline.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let n = 20_000u32;
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let writer = {
        let mut s = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            for id in 0..n {
                Frame::request(Opcode::Info, id, Vec::new())
                    .write_to(&mut s)
                    .unwrap_or_else(|e| panic!("request #{id} refused mid-flood: {e}"));
            }
        })
    };
    // Let the flood hit the backlog gate before reading anything.
    std::thread::sleep(Duration::from_millis(700));
    let mut stream = stream;
    let mut served = 0u64;
    let mut shed = 0u64;
    for id in 0..n {
        let reply = Frame::read_from(&mut stream).unwrap_or_else(|e| panic!("reply #{id}: {e}"));
        assert_eq!(reply.request_id, id, "replies stay in order");
        match reply.status {
            0 => served += 1,
            s if s == ErrorCode::Busy as u16 => shed += 1,
            s => panic!(
                "reply #{id}: unexpected status {s}: {}",
                String::from_utf8_lossy(&reply.payload)
            ),
        }
    }
    writer.join().expect("writer thread");
    assert_eq!(served + shed, u64::from(n), "every request answered");
    assert!(served > 0, "some requests served");
    assert_alive(&server, "after reply-backlog flood");
}

/// Pipeline `frames` in one write on one fresh connection and read
/// `frames.len()` replies back, in order.
fn pipelined_replies(server: &ServerHandle, frames: &[Frame]) -> (TcpStream, Vec<Frame>) {
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut wire = Vec::new();
    for f in frames {
        wire.extend_from_slice(&f.to_bytes());
    }
    stream.write_all(&wire).expect("write pipelined frames");
    let replies = (0..frames.len())
        .map(|i| Frame::read_from(&mut stream).unwrap_or_else(|e| panic!("reply #{i}: {e}")))
        .collect();
    (stream, replies)
}

#[test]
fn saturated_global_admission_sheds_typed_busy_and_recovers() {
    // max_inflight 1: the first frame of a pipelined pair takes the
    // only admission slot (released when its reply is fully written,
    // which cannot happen before the reactor finishes parsing the
    // burst), so the second frame is deterministically shed — with a
    // typed BUSY reply on a connection that stays usable, never a
    // drop or an unbounded queue.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        max_inflight: 1,
        conn_inflight: 0,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let img = datasets::grayscale_blobs(1, 8, 8, 5).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let container = codec.encode_image(&img, &CodecOptions::default()).unwrap();
    let (mut stream, replies) = pipelined_replies(
        &server,
        &[
            Frame::request(Opcode::Decode, 1, container.clone()),
            Frame::request(Opcode::Info, 2, Vec::new()),
        ],
    );
    assert_eq!(replies[0].status, 0, "first request is admitted and served");
    assert_eq!(replies[0].request_id, 1);
    assert_eq!(
        replies[1].status,
        ErrorCode::Busy as u16,
        "over-cap request answers typed BUSY: {}",
        String::from_utf8_lossy(&replies[1].payload)
    );
    assert_eq!(replies[1].request_id, 2, "BUSY echoes the request id");
    // The shed is visible in telemetry...
    let stats = server.metrics().expect("metrics on").stats_json();
    assert!(
        stats.contains("\"serve_busy_total\":1"),
        "busy counter: {stats}"
    );
    // ...and the connection recovers: the slot is free once the first
    // reply was written, so the same socket serves the retry.
    Frame::request(Opcode::Info, 3, Vec::new())
        .write_to(&mut stream)
        .expect("write retry");
    let retry = Frame::read_from(&mut stream).expect("retry reply");
    assert_eq!(retry.status, 0, "retry after BUSY succeeds");
    assert_alive(&server, "after global admission shed");
}

#[test]
fn per_connection_inflight_cap_sheds_typed_busy() {
    // conn_inflight 1 with an unlimited global cap: one pipelining
    // connection cannot hold more than one admitted request, and the
    // shed must echo BUSY *in reply order* after the first frame's
    // real reply.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        max_inflight: 0,
        conn_inflight: 1,
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let img = datasets::grayscale_blobs(1, 8, 8, 6).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let container = codec.encode_image(&img, &CodecOptions::default()).unwrap();
    let (mut stream, replies) = pipelined_replies(
        &server,
        &[
            Frame::request(Opcode::Decode, 7, container),
            Frame::request(Opcode::Decode, 8, b"never admitted".to_vec()),
        ],
    );
    assert_eq!(replies[0].status, 0, "first decode served");
    assert_eq!(
        replies[1].status,
        ErrorCode::Busy as u16,
        "second pipelined request shed: {}",
        String::from_utf8_lossy(&replies[1].payload)
    );
    // A healthy request on the same connection afterwards: the cap
    // shed requests, never the connection.
    Frame::request(Opcode::Info, 9, Vec::new())
        .write_to(&mut stream)
        .expect("write follow-up");
    assert_eq!(Frame::read_from(&mut stream).expect("follow-up").status, 0);
    assert_alive(&server, "after per-connection shed");
}

#[test]
fn remote_bytes_match_offline_for_every_entropy_coder_through_the_poll_path() {
    // Byte-identity re-pinned through the event-driven core: for all
    // three entropy coders, the served encode equals the offline
    // encode bit for bit, and the served decode inverts it.
    let server = boot();
    let mut client = Client::connect(server.addr()).unwrap();
    let img = datasets::grayscale_blobs(1, 16, 16, 11).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    for coder in [
        qn_codec::EntropyCoder::Rice,
        qn_codec::EntropyCoder::RicePos,
        qn_codec::EntropyCoder::Range,
    ] {
        let opts = CodecOptions {
            entropy: coder,
            ..CodecOptions::default()
        };
        let offline = codec.encode_image(&img, &opts).unwrap();
        let remote = client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap_or_else(|e| panic!("{coder:?}: remote encode: {e}"));
        assert_eq!(remote, offline, "{coder:?}: encode bytes drifted");
        let round = client
            .decode(&remote)
            .unwrap_or_else(|e| panic!("{coder:?}: remote decode: {e}"));
        assert_eq!(
            round,
            codec.decode_bytes(&offline).unwrap(),
            "{coder:?}: decode pixels drifted"
        );
    }
}

/// Re-fix a frame's trailing CRC after mutating its header.
fn refix_frame_crc(bytes: &mut [u8]) {
    let body = bytes.len() - 4;
    let crc = crc32(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&crc);
}

/// Frame-level escape hatch used by this suite: send an arbitrary
/// opcode byte and return the reply frame.
trait RawRoundtrip {
    fn roundtrip_raw_opcode(&mut self, opcode: u8, payload: Vec<u8>) -> Frame;
}

impl RawRoundtrip for Client {
    fn roundtrip_raw_opcode(&mut self, opcode: u8, payload: Vec<u8>) -> Frame {
        let frame = Frame {
            opcode,
            status: 0,
            request_id: 77,
            payload,
        };
        let mut stream = self.stream_mut();
        frame.write_to(&mut stream).expect("write raw frame");
        match Frame::read_from(&mut stream) {
            Ok(reply) => reply,
            Err(FrameError::Io(e)) => panic!("server closed on raw opcode {opcode:#04x}: {e}"),
            Err(e) => panic!("bad reply to raw opcode {opcode:#04x}: {e}"),
        }
    }
}
