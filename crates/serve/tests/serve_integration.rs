//! Integration suite: a real server on an ephemeral port, real TCP
//! clients, and the acceptance property — **remote responses are
//! byte-identical to offline `qnc` runs** with the same model and
//! options, including under 16-way concurrent load where tiles from
//! different requests coalesce into shared backend passes.

use qn_backend::BackendKind;
use qn_codec::model::encode_model;
use qn_codec::{info, Codec, CodecOptions};
use qn_image::datasets;
use qn_serve::client::{model_encode_request, spectral_encode_request};
use qn_serve::{spawn, Client, ServerConfig, ServerHandle};
use std::time::Duration;

/// A server on an ephemeral port with batching on (tiny deadline so
/// solo requests don't stall the suite).
fn boot(store_dir: Option<std::path::PathBuf>) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir,
        batch_deadline: Duration::from_millis(2),
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("qn_serve_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn remote_spectral_encode_is_byte_identical_to_offline() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 32, 24, 42).remove(0);
    let opts = CodecOptions::default();

    // Offline reference: qnc compress without --model.
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let offline_img = codec.decode_bytes(&offline).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client
        .encode(&spectral_encode_request(&img, &opts, 8))
        .unwrap();
    assert_eq!(remote, offline, "remote encode must be byte-identical");

    let decoded = client.decode(&remote).unwrap();
    assert_eq!(
        decoded, offline_img,
        "remote decode must be pixel-identical"
    );
}

#[test]
fn zoo_models_encode_and_decode_without_inline_models() {
    let dir = temp_dir("zoo");
    let server = boot(Some(dir.clone()));
    let img = datasets::grayscale_blobs(1, 32, 32, 7).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let model_bytes = encode_model(codec.model());
    let opts = CodecOptions {
        inline_model: false,
        ..CodecOptions::default()
    };
    let offline = codec.encode_image(&img, &opts).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let id = client.load_model(&model_bytes).unwrap();
    assert_eq!(id, codec.model_id(), "LOAD_MODEL returns the content id");
    assert!(
        dir.join(format!("{id:016x}.qnm")).exists(),
        "zoo persists the model under its id"
    );

    let remote = client
        .encode(&model_encode_request(&img, &opts, id))
        .unwrap();
    assert_eq!(remote, offline);

    // The container has no inline model: the server resolves the model
    // id against the zoo.
    let decoded = client.decode(&remote).unwrap();
    assert_eq!(decoded, codec.decode_bytes(&offline).unwrap());

    // A second server over the same zoo dir decodes cold from disk.
    drop(client);
    server.shutdown();
    let reborn = boot(Some(dir));
    let mut client = Client::connect(reborn.addr()).unwrap();
    let decoded = client.decode(&remote).unwrap();
    assert_eq!(decoded, codec.decode_bytes(&offline).unwrap());
}

#[test]
fn sixteen_concurrent_clients_round_trip_byte_identically() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 24, 24, 99).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let offline_img = codec.decode_bytes(&offline).unwrap();

    let addr = server.addr();
    let workers: Vec<_> = (0..16)
        .map(|worker| {
            let img = img.clone();
            let opts = opts.clone();
            let offline = offline.clone();
            let offline_img = offline_img.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3 {
                    let bytes = client
                        .encode(&spectral_encode_request(&img, &opts, 8))
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(
                        bytes, offline,
                        "worker {worker} round {round}: encode bytes"
                    );
                    let decoded = client
                        .decode(&bytes)
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(
                        decoded, offline_img,
                        "worker {worker} round {round}: decode"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    assert!(server.requests_served() >= 16 * 3 * 2);
}

#[test]
fn solo_requests_flush_adaptively_well_under_the_deadline() {
    // A deliberately huge batch deadline: without the adaptive flush a
    // solo request would stall the full two seconds waiting for
    // batch-mates that never come. With it, the server notices no
    // other request is past its frame header and flushes immediately.
    let deadline = Duration::from_secs(2);
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: deadline,
        ..ServerConfig::default()
    })
    .unwrap();
    let img = datasets::grayscale_blobs(1, 24, 24, 31).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let offline_img = codec.decode_bytes(&offline).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    for round in 0..3 {
        let t0 = std::time::Instant::now();
        let bytes = client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap();
        let decoded = client.decode(&bytes).unwrap();
        let elapsed = t0.elapsed();
        // Bytes stay identical — the eager flush changes latency only.
        assert_eq!(bytes, offline, "round {round}");
        assert_eq!(decoded, offline_img, "round {round}");
        assert!(
            elapsed < deadline / 2,
            "round {round}: solo encode+decode took {elapsed:?}, \
             deadline is {deadline:?} — adaptive flush not engaging"
        );
    }
}

#[test]
fn overlapping_closed_loop_clients_never_pay_the_full_deadline() {
    // Two clients in a closed loop (each sends its next request as
    // soon as its reply lands): with the in-flight count released at
    // *submission* rather than at reply time, the last submitter of
    // any overlap sees no other incoming request and flushes the
    // merged group eagerly — so neither client ever stalls out a full
    // deadline, even while the other is mid mesh-pass. Were the count
    // held through the reply, roughly every second request here would
    // pay the whole 2 s.
    let deadline = Duration::from_secs(2);
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: deadline,
        ..ServerConfig::default()
    })
    .unwrap();
    let img = datasets::grayscale_blobs(1, 24, 24, 61).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();

    let addr = server.addr();
    let rounds = 4;
    let t0 = std::time::Instant::now();
    let workers: Vec<_> = (0..2)
        .map(|worker| {
            let img = img.clone();
            let opts = opts.clone();
            let offline = offline.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..rounds {
                    let bytes = client
                        .encode(&spectral_encode_request(&img, &opts, 8))
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(bytes, offline, "worker {worker} round {round}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < deadline,
        "2 clients × {rounds} rounds took {elapsed:?} against a {deadline:?} \
         deadline — some request waited out the batch deadline"
    );
}

#[test]
fn encode_options_travel_the_wire() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 24, 16, 5).remove(0);
    let mut client = Client::connect(server.addr()).unwrap();
    for (per_tile_scale, inline_model, bits) in
        [(true, true, 8u8), (true, false, 5), (false, false, 12)]
    {
        let opts = CodecOptions {
            bits,
            per_tile_scale,
            inline_model,
            ..CodecOptions::default()
        };
        let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
        let offline = codec.encode_image(&img, &opts).unwrap();
        let remote = client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap();
        assert_eq!(
            remote, offline,
            "options (scale={per_tile_scale}, inline={inline_model}, bits={bits})"
        );
    }
}

#[test]
fn every_entropy_coder_round_trips_byte_identically_over_the_wire() {
    // The bitstream-v2 acceptance property: remote encode and decode
    // are byte-identical to offline for all three entropy coders —
    // the coder choice travels the wire, the served container carries
    // the right format version, and the server decodes every format
    // it encodes.
    use qn_codec::EntropyCoder;
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 32, 24, 17).remove(0);
    let mut client = Client::connect(server.addr()).unwrap();
    for entropy in EntropyCoder::ALL {
        let opts = CodecOptions {
            entropy,
            ..CodecOptions::default()
        };
        let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
        let offline = codec.encode_image(&img, &opts).unwrap();
        let offline_img = codec.decode_bytes(&offline).unwrap();

        let remote = client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap();
        assert_eq!(remote, offline, "{entropy}: remote encode bytes");
        let header = qn_codec::Container::from_bytes(&remote).unwrap().header;
        assert_eq!(header.entropy().unwrap(), entropy, "{entropy}: wire format");
        let decoded = client.decode(&remote).unwrap();
        assert_eq!(decoded, offline_img, "{entropy}: remote decode pixels");
    }
}

#[test]
fn stalled_mid_frame_peer_is_reaped_and_releases_the_eager_flush() {
    // A peer that sends an ENCODE frame header and then stalls used to
    // pin the adaptive-flush in-flight gauge until it went away,
    // degrading every other request to deadline-bounded batching. With
    // the read timeout the server reaps the stalled connection, so a
    // concurrent client flushes eagerly again — pinned here with a
    // deliberately huge 2 s deadline a solo request must stay well
    // under.
    use std::io::{Read as _, Write as _};
    let deadline = Duration::from_secs(2);
    let timeout = Duration::from_millis(250);
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: deadline,
        read_timeout: timeout,
        ..ServerConfig::default()
    })
    .unwrap();

    // The stalling peer: a full 16-byte ENCODE header promising a
    // 4096-byte payload that never comes.
    let mut stalled = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(b"QNF1");
    header.push(1); // protocol version
    header.push(0x01); // ENCODE
    header.extend_from_slice(&0u16.to_le_bytes()); // status
    header.extend_from_slice(&7u32.to_le_bytes()); // request id
    header.extend_from_slice(&4096u32.to_le_bytes()); // payload length
    stalled.write_all(&header).unwrap();
    stalled.flush().unwrap();

    // Give the timeout room to fire and the connection to be reaped.
    std::thread::sleep(timeout * 3);

    // The stalled socket is closed by the server (EOF / reset)...
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut probe = [0u8; 64];
    match stalled.read(&mut probe) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("stalled connection got {n} unexpected reply bytes"),
    }

    // ... and a fresh client is solo again: eager flush, not deadline.
    let img = datasets::grayscale_blobs(1, 24, 24, 43).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for round in 0..2 {
        let t0 = std::time::Instant::now();
        let bytes = client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(bytes, offline, "round {round}");
        assert!(
            elapsed < deadline / 2,
            "round {round}: encode took {elapsed:?} with a stalled peer reaped — \
             the in-flight gauge is still pinned"
        );
    }

    // A *drip-feeding* peer (one payload byte per interval, each well
    // under any per-recv timeout) must be reaped too: the deadline
    // covers the whole frame, not each read.
    let mut dripper = std::net::TcpStream::connect(server.addr()).unwrap();
    dripper.write_all(&header).unwrap();
    let drip_deadline = std::time::Instant::now() + timeout * 8;
    let mut reaped = false;
    while std::time::Instant::now() < drip_deadline {
        if dripper
            .write_all(&[0u8])
            .and_then(|()| dripper.flush())
            .is_err()
        {
            reaped = true; // connection closed mid-drip
            break;
        }
        std::thread::sleep(timeout / 5);
    }
    if !reaped {
        // Writes may buffer past the close; the read side settles it.
        dripper
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut probe = [0u8; 16];
        reaped = matches!(dripper.read(&mut probe), Ok(0) | Err(_));
    }
    assert!(reaped, "drip-feeding peer survived the frame deadline");
    // And the gauge is free again.
    let t0 = std::time::Instant::now();
    let bytes = client
        .encode(&spectral_encode_request(&img, &opts, 8))
        .unwrap();
    assert_eq!(bytes, offline);
    assert!(
        t0.elapsed() < deadline / 2,
        "dripper reaped but the in-flight gauge is still pinned"
    );
}

#[test]
fn list_models_enumerates_the_zoo_with_sizes_and_residency() {
    let dir = temp_dir("list_models");
    let server = boot(Some(dir));
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.list_models().unwrap(), vec![], "fresh zoo is empty");

    let mut expected = Vec::new();
    for seed in [21u64, 22] {
        let img = datasets::grayscale_blobs(1, 16, 16, seed).remove(0);
        let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
        let bytes = encode_model(codec.model());
        let id = client.load_model(&bytes).unwrap();
        expected.push((id, bytes.len() as u64));
    }
    expected.sort_unstable();

    let listed = client.list_models().unwrap();
    assert_eq!(
        listed
            .iter()
            .map(|e| (e.id, e.size_bytes))
            .collect::<Vec<_>>(),
        expected,
        "ids and serialized sizes, sorted by id"
    );
    assert!(
        listed.iter().all(|e| e.cached),
        "freshly loaded models are cache-resident"
    );

    // A malformed LIST_MODELS request (non-empty payload) fails typed
    // and keeps the connection usable.
    use qn_serve::protocol::{ErrorCode, Frame, Opcode};
    let bad = Frame::request(Opcode::ListModels, 77, vec![1, 2, 3]);
    bad.write_to(client.stream_mut()).unwrap();
    let reply = Frame::read_from(client.stream_mut()).unwrap();
    assert_eq!(reply.status, ErrorCode::BadRequest as u16);
    assert_eq!(client.list_models().unwrap().len(), 2, "connection lives");
}

#[test]
fn info_replies_share_the_cli_json() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 16, 16, 3).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let container = codec.encode_image(&img, &CodecOptions::default()).unwrap();
    let model_bytes = encode_model(codec.model());

    let mut client = Client::connect(server.addr()).unwrap();
    // File info: byte-for-byte the `qnc info --json` output.
    assert_eq!(
        client.info(Some(&container)).unwrap(),
        info::file_info_json(&container).unwrap()
    );
    assert_eq!(
        client.info(Some(&model_bytes)).unwrap(),
        info::file_info_json(&model_bytes).unwrap()
    );
    // Server info: names the serving parameters.
    let status = client.info(None).unwrap();
    assert!(status.contains("\"format\":\"qn-serve\""), "{status}");
    assert!(status.contains("\"backend\":\"panel\""), "{status}");
    assert!(status.contains("\"coalescing\":true"), "{status}");
}

#[test]
fn per_request_dispatch_servers_answer_the_same_bytes() {
    // Batching off (zero deadline) and the scalar backend: responses
    // must still be byte-identical — scheduling is never observable.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        backend: BackendKind::Scalar,
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    })
    .unwrap();
    let img = datasets::grayscale_blobs(1, 24, 24, 11).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client
        .encode(&spectral_encode_request(&img, &opts, 8))
        .unwrap();
    assert_eq!(remote, offline);
}

/// Extract a plain integer counter/gauge value from the stats JSON.
fn stat_int(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("{key} missing in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} is not an integer in {json}"))
}

/// Extract a histogram's observation count from the stats JSON.
fn hist_count(json: &str, key: &str) -> u64 {
    stat_int(json, &format!("{key}\":{{\"count"))
}

#[test]
fn stats_rejects_non_empty_payloads_with_a_typed_error() {
    let server = boot(None);
    let mut client = Client::connect(server.addr()).unwrap();
    let err = client
        .roundtrip(qn_serve::Opcode::Stats, b"extra".to_vec())
        .expect_err("STATS with a payload must fail");
    match err {
        qn_serve::ServeError::Remote { code, message } => {
            assert_eq!(code, qn_serve::ErrorCode::BadRequest as u16, "{message}");
            assert!(message.contains("no payload"), "{message}");
        }
        other => panic!("expected a remote BadRequest, got {other}"),
    }
    // The connection survives a request-level error.
    assert!(client.stats().unwrap().starts_with("{\"uptime_secs\":"));
}

#[test]
fn metrics_disabled_servers_say_so_and_reject_stats() {
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        metrics: false,
        ..ServerConfig::default()
    })
    .unwrap();
    assert!(server.metrics().is_none());
    let mut client = Client::connect(server.addr()).unwrap();
    // Feature detection: INFO carries metrics:false ...
    let status = client.info(None).unwrap();
    assert!(status.contains("\"metrics\":false"), "{status}");
    assert!(status.contains("\"uptime_secs\":"), "{status}");
    assert!(status.contains("\"server_version\":\""), "{status}");
    // ... and STATS answers a typed BadRequest, not a close.
    match client.stats().expect_err("STATS must fail without metrics") {
        qn_serve::ServeError::Remote { code, message } => {
            assert_eq!(code, qn_serve::ErrorCode::BadRequest as u16, "{message}");
        }
        other => panic!("expected a remote BadRequest, got {other}"),
    }
    // Disabled metrics never perturb the bytes either.
    let img = datasets::grayscale_blobs(1, 16, 16, 21).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    assert_eq!(
        client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap(),
        offline
    );
}

#[test]
fn stats_counts_match_a_client_side_tally_under_sixteen_clients() {
    let server = boot(None);
    let addr = server.addr();
    let img = datasets::grayscale_blobs(1, 16, 16, 33).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();

    // Client-side tally: 16 workers × (2 encodes + 1 decode + 1 info +
    // 1 list).
    let workers: Vec<_> = (0..16)
        .map(|_| {
            let img = img.clone();
            let opts = opts.clone();
            let offline = offline.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for _ in 0..2 {
                    client
                        .encode(&spectral_encode_request(&img, &opts, 8))
                        .expect("encode");
                }
                client.decode(&offline).expect("decode");
                client.info(None).expect("info");
                client.list_models().expect("list");
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    let (enc, dec, info_n, list_n) = (32u64, 16u64, 16u64, 16u64);

    // Request counters increment before the reply is written, so after
    // the workers join they are exact. Latency records after the reply
    // leaves, so the last write on each connection may still be racing
    // the stats read — poll briefly for the histograms to catch up.
    let mut client = Client::connect(addr).unwrap();
    let mut stats_calls = 0u64;
    let json = loop {
        stats_calls += 1;
        let json = client.stats().expect("stats");
        if hist_count(&json, "serve_request_latency_ns{op=encode}") == enc
            && hist_count(&json, "serve_request_latency_ns{op=decode}") == dec
        {
            break json;
        }
        assert!(
            stats_calls < 200,
            "latency histograms never caught up: {json}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    assert_eq!(stat_int(&json, "serve_requests_total{op=encode}"), enc);
    assert_eq!(stat_int(&json, "serve_requests_total{op=decode}"), dec);
    assert_eq!(stat_int(&json, "serve_requests_total{op=info}"), info_n);
    assert_eq!(
        stat_int(&json, "serve_requests_total{op=list_models}"),
        list_n
    );
    // The stats polls count themselves (each increments before its own
    // reply is built).
    assert_eq!(
        stat_int(&json, "serve_requests_total{op=stats}"),
        stats_calls
    );
    assert_eq!(stat_int(&json, "serve_connections_total"), 17);
    assert!(stat_int(&json, "serve_frame_bytes_in_total") > 0, "{json}");
    assert!(stat_int(&json, "serve_frame_bytes_out_total") > 0, "{json}");
    // Codec stage histograms populated by the mesh-bound requests.
    assert_eq!(
        hist_count(&json, "codec_stage_ns{op=encode,stage=mesh}"),
        enc
    );
    assert_eq!(
        hist_count(&json, "codec_stage_ns{op=decode,stage=parse}"),
        dec
    );
    assert_eq!(
        hist_count(&json, "codec_stage_ns{op=encode,stage=spectral}"),
        enc
    );
    // Every encode used the default rice coder.
    assert!(
        stat_int(&json, "codec_coded_bytes_total{coder=rice}") > 0,
        "{json}"
    );
    // Flush-cause attribution is total: the per-cause counters sum to
    // the number of executed batches.
    let flushes = hist_count(&json, "batch_flush_tiles");
    let by_cause: u64 = ["full", "deadline", "eager", "drain"]
        .iter()
        .map(|c| stat_int(&json, &format!("batch_flushes_total{{cause={c}}}")))
        .sum();
    assert_eq!(
        by_cause, flushes,
        "flush causes must sum to flushes: {json}"
    );
    assert!(flushes > 0, "{json}");
    // Adaptive-flush bookkeeping drained back to zero.
    assert_eq!(stat_int(&json, "serve_inflight_requests"), 0);

    // The handle exposes the same registry the wire serves.
    let handle_json = server
        .metrics()
        .expect("metrics on by default")
        .registry()
        .to_json();
    assert_eq!(
        stat_int(&handle_json, "serve_requests_total{op=encode}"),
        enc
    );
}
