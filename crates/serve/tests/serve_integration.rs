//! Integration suite: a real server on an ephemeral port, real TCP
//! clients, and the acceptance property — **remote responses are
//! byte-identical to offline `qnc` runs** with the same model and
//! options, including under 16-way concurrent load where tiles from
//! different requests coalesce into shared backend passes.

use qn_backend::BackendKind;
use qn_codec::model::encode_model;
use qn_codec::{info, Codec, CodecOptions};
use qn_image::datasets;
use qn_serve::client::{model_encode_request, spectral_encode_request};
use qn_serve::{spawn, Client, ServerConfig, ServerHandle};
use std::time::Duration;

/// A server on an ephemeral port with batching on (tiny deadline so
/// solo requests don't stall the suite).
fn boot(store_dir: Option<std::path::PathBuf>) -> ServerHandle {
    spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        store_dir,
        batch_deadline: Duration::from_millis(2),
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("qn_serve_tests")
        .join(format!("{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn remote_spectral_encode_is_byte_identical_to_offline() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 32, 24, 42).remove(0);
    let opts = CodecOptions::default();

    // Offline reference: qnc compress without --model.
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let offline_img = codec.decode_bytes(&offline).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client
        .encode(&spectral_encode_request(&img, &opts, 8))
        .unwrap();
    assert_eq!(remote, offline, "remote encode must be byte-identical");

    let decoded = client.decode(&remote).unwrap();
    assert_eq!(
        decoded, offline_img,
        "remote decode must be pixel-identical"
    );
}

#[test]
fn zoo_models_encode_and_decode_without_inline_models() {
    let dir = temp_dir("zoo");
    let server = boot(Some(dir.clone()));
    let img = datasets::grayscale_blobs(1, 32, 32, 7).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let model_bytes = encode_model(codec.model());
    let opts = CodecOptions {
        inline_model: false,
        ..CodecOptions::default()
    };
    let offline = codec.encode_image(&img, &opts).unwrap();

    let mut client = Client::connect(server.addr()).unwrap();
    let id = client.load_model(&model_bytes).unwrap();
    assert_eq!(id, codec.model_id(), "LOAD_MODEL returns the content id");
    assert!(
        dir.join(format!("{id:016x}.qnm")).exists(),
        "zoo persists the model under its id"
    );

    let remote = client
        .encode(&model_encode_request(&img, &opts, id))
        .unwrap();
    assert_eq!(remote, offline);

    // The container has no inline model: the server resolves the model
    // id against the zoo.
    let decoded = client.decode(&remote).unwrap();
    assert_eq!(decoded, codec.decode_bytes(&offline).unwrap());

    // A second server over the same zoo dir decodes cold from disk.
    drop(client);
    server.shutdown();
    let reborn = boot(Some(dir));
    let mut client = Client::connect(reborn.addr()).unwrap();
    let decoded = client.decode(&remote).unwrap();
    assert_eq!(decoded, codec.decode_bytes(&offline).unwrap());
}

#[test]
fn sixteen_concurrent_clients_round_trip_byte_identically() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 24, 24, 99).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let offline_img = codec.decode_bytes(&offline).unwrap();

    let addr = server.addr();
    let workers: Vec<_> = (0..16)
        .map(|worker| {
            let img = img.clone();
            let opts = opts.clone();
            let offline = offline.clone();
            let offline_img = offline_img.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..3 {
                    let bytes = client
                        .encode(&spectral_encode_request(&img, &opts, 8))
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(
                        bytes, offline,
                        "worker {worker} round {round}: encode bytes"
                    );
                    let decoded = client
                        .decode(&bytes)
                        .unwrap_or_else(|e| panic!("worker {worker} round {round}: {e}"));
                    assert_eq!(
                        decoded, offline_img,
                        "worker {worker} round {round}: decode"
                    );
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker panicked");
    }
    assert!(server.requests_served() >= 16 * 3 * 2);
}

#[test]
fn encode_options_travel_the_wire() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 24, 16, 5).remove(0);
    let mut client = Client::connect(server.addr()).unwrap();
    for (per_tile_scale, inline_model, bits) in
        [(true, true, 8u8), (true, false, 5), (false, false, 12)]
    {
        let opts = CodecOptions {
            bits,
            per_tile_scale,
            inline_model,
            ..CodecOptions::default()
        };
        let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
        let offline = codec.encode_image(&img, &opts).unwrap();
        let remote = client
            .encode(&spectral_encode_request(&img, &opts, 8))
            .unwrap();
        assert_eq!(
            remote, offline,
            "options (scale={per_tile_scale}, inline={inline_model}, bits={bits})"
        );
    }
}

#[test]
fn info_replies_share_the_cli_json() {
    let server = boot(None);
    let img = datasets::grayscale_blobs(1, 16, 16, 3).remove(0);
    let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
    let container = codec.encode_image(&img, &CodecOptions::default()).unwrap();
    let model_bytes = encode_model(codec.model());

    let mut client = Client::connect(server.addr()).unwrap();
    // File info: byte-for-byte the `qnc info --json` output.
    assert_eq!(
        client.info(Some(&container)).unwrap(),
        info::file_info_json(&container).unwrap()
    );
    assert_eq!(
        client.info(Some(&model_bytes)).unwrap(),
        info::file_info_json(&model_bytes).unwrap()
    );
    // Server info: names the serving parameters.
    let status = client.info(None).unwrap();
    assert!(status.contains("\"format\":\"qn-serve\""), "{status}");
    assert!(status.contains("\"backend\":\"panel\""), "{status}");
    assert!(status.contains("\"coalescing\":true"), "{status}");
}

#[test]
fn per_request_dispatch_servers_answer_the_same_bytes() {
    // Batching off (zero deadline) and the scalar backend: responses
    // must still be byte-identical — scheduling is never observable.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        backend: BackendKind::Scalar,
        batch_deadline: Duration::ZERO,
        ..ServerConfig::default()
    })
    .unwrap();
    let img = datasets::grayscale_blobs(1, 24, 24, 11).remove(0);
    let opts = CodecOptions::default();
    let codec = Codec::spectral_for_image(&img, opts.tile_size, 8).unwrap();
    let offline = codec.encode_image(&img, &opts).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let remote = client
        .encode(&spectral_encode_request(&img, &opts, 8))
        .unwrap();
    assert_eq!(remote, offline);
}
