//! Regression tests for server lifecycle bugs the event-driven core
//! fixed:
//!
//! 1. **Shutdown self-connect** — the old `ServerHandle::stop`
//!    unblocked its accept loop by connecting to the *listen* address,
//!    which is not connectable for wildcard (`0.0.0.0`) binds; the
//!    reactor's wakeup pipe works for any bind.
//! 2. **Leaked handler threads** — connection handlers were
//!    spawn-and-forget, so shutdown joined only the accept thread and
//!    in-flight connections raced test teardown; the reactor now
//!    drains in-flight replies within a bounded grace period and every
//!    server thread is joined before `shutdown()` returns.
//! 3. **Stale read deadline** — the old per-frame deadline was cleared
//!    with `let _ = stream.set_read_timeout(None)`, so a failed
//!    restore could reap the *next* frame spuriously; the reactor's
//!    deadline is plain per-connection state, armed at header arrival
//!    and cleared at frame completion, with nothing to restore.

use qn_serve::protocol::{Frame, Opcode, HEADER_LEN};
use qn_serve::{spawn, Client, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn shutdown_returns_promptly_on_a_wildcard_bind() {
    // Bug 1: bind the unconnectable-by-name address. Shutdown must
    // not wait for a real client to stumble in and unblock accept.
    let server = spawn(ServerConfig {
        addr: "0.0.0.0:0".into(),
        batch_deadline: Duration::from_millis(1),
        ..ServerConfig::default()
    })
    .expect("spawn on wildcard");
    let port = server.addr().port();
    // Sanity: the server actually serves (via loopback, since the
    // wildcard address itself is not a destination).
    let mut client = Client::connect(("127.0.0.1", port)).expect("connect via loopback");
    client.info(None).expect("INFO round-trip");
    drop(client);
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "wildcard-bound shutdown took {:?}",
        t0.elapsed()
    );
}

#[test]
fn shutdown_drains_inflight_replies_before_returning() {
    // Bug 2, the drain half: a request the server has admitted when
    // shutdown starts still gets its reply — the old spawn-and-forget
    // handlers could be killed (or race teardown) with work in flight.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    Frame::request(Opcode::Info, 42, Vec::new())
        .write_to(&mut stream)
        .expect("write INFO");
    // Wait until the server has committed to the request (counted at
    // frame completion, the same moment it is admitted), so shutdown
    // demonstrably starts with it in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.requests_served() == 0 {
        assert!(Instant::now() < deadline, "request never admitted");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.shutdown();
    // The reply was drained into our socket before shutdown returned.
    let reply = Frame::read_from(&mut stream).expect("drained reply after shutdown");
    assert_eq!(reply.status, 0);
    assert_eq!(reply.request_id, 42);
    // And the server is gone: the connection reaches EOF, not a hang.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after drain");
    assert!(rest.is_empty(), "no stray bytes after the drained reply");
}

#[test]
fn connection_held_mid_frame_cannot_stall_shutdown() {
    // Bug 2, the bounded-grace half: a peer parked mid-frame (header
    // sent, payload never coming) must not hold shutdown hostage —
    // and its parked adaptive-flush count must be released, not
    // leaked into the gauge.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        // Long enough that shutdown returning promptly proves the
        // mid-frame connection was dropped, not waited out.
        read_timeout: Duration::from_secs(60),
        shutdown_grace: Duration::from_secs(5),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let metrics = Arc::clone(server.metrics().expect("metrics on"));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A valid ENCODE header promising a payload that never arrives.
    let full = Frame::request(Opcode::Encode, 7, vec![0u8; 256]).to_bytes();
    stream.write_all(&full[..HEADER_LEN]).expect("write header");
    // Wait until the header registered (it raises the mesh in-flight
    // gauge), so shutdown demonstrably starts with the frame open.
    let deadline = Instant::now() + Duration::from_secs(10);
    while !metrics
        .stats_json()
        .contains("\"serve_inflight_requests\":1")
    {
        assert!(
            Instant::now() < deadline,
            "header never raised the in-flight gauge: {}",
            metrics.stats_json()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let t0 = Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "mid-frame connection stalled shutdown for {:?}",
        t0.elapsed()
    );
    // The half-read frame's in-flight count was released, not leaked.
    assert!(
        metrics
            .stats_json()
            .contains("\"serve_inflight_requests\":0"),
        "in-flight gauge leaked across shutdown: {}",
        metrics.stats_json()
    );
    // Our side observes the close, not a hang.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).expect("EOF after shutdown");
}

#[test]
fn read_deadline_never_leaks_into_the_next_frame() {
    // Bug 3: with a short frame deadline, a connection that idles
    // *between* frames for much longer than the deadline must stay
    // alive — the deadline only runs from header to frame completion,
    // and completing a frame must fully disarm it.
    let server = spawn(ServerConfig {
        addr: "127.0.0.1:0".into(),
        batch_deadline: Duration::from_millis(1),
        read_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    })
    .expect("spawn server");
    let metrics = Arc::clone(server.metrics().expect("metrics on"));
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    for (round, idle) in [
        Duration::ZERO,
        // 3x the frame deadline, twice: a stale deadline from the
        // previous frame would reap us here.
        Duration::from_millis(450),
        Duration::from_millis(450),
    ]
    .into_iter()
    .enumerate()
    {
        std::thread::sleep(idle);
        Frame::request(Opcode::Info, round as u32, Vec::new())
            .write_to(&mut stream)
            .unwrap_or_else(|e| panic!("round {round}: write after {idle:?} idle: {e}"));
        let reply = Frame::read_from(&mut stream)
            .unwrap_or_else(|e| panic!("round {round}: reaped after {idle:?} idle: {e}"));
        assert_eq!(reply.status, 0, "round {round}");
    }
    assert!(
        metrics
            .stats_json()
            .contains("\"serve_read_deadline_reaps_total\":0"),
        "idle-between-frames connection was reaped: {}",
        metrics.stats_json()
    );
}
