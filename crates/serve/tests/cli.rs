//! End-to-end tests of the `qnc` binary: the acceptance path
//! (`compress` → `decompress` → PSNR floor, size bound), model
//! training/reuse, `info` (text and `--json`), error behaviour on
//! malformed input, and the serving path — `qnc serve` booted as a real
//! subprocess on an ephemeral port with `qnc remote` driven against it.

use qn_image::{datasets, metrics, pgm};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};

fn qnc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qnc"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("qnc_cli_tests").join(name);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn write_dataset_image(path: &Path, w: usize, h: usize, seed: u64) -> qn_image::GrayImage {
    let img = datasets::grayscale_blobs(1, w, h, seed).remove(0);
    pgm::write_pgm(&img, path).expect("write pgm");
    img
}

fn run_ok(cmd: &mut Command) -> Output {
    let out = cmd.output().expect("spawn qnc");
    assert!(
        out.status.success(),
        "qnc failed: {:?}\nstdout: {}\nstderr: {}",
        cmd,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

/// The PR's acceptance criterion: compress a dataset image at d=8 /
/// 8-bit latents, decompress it standalone, and require PSNR ≥ 20 dB
/// with the container smaller than the raw pixel payload.
#[test]
fn compress_decompress_roundtrip_meets_acceptance() {
    let dir = work_dir("roundtrip");
    let input = dir.join("img.pgm");
    let container = dir.join("out.qnc");
    let restored = dir.join("rt.pgm");
    let img = write_dataset_image(&input, 128, 96, 42);

    run_ok(qnc().arg("compress").arg(&input).arg("-o").arg(&container));
    run_ok(
        qnc()
            .arg("decompress")
            .arg(&container)
            .arg("-o")
            .arg(&restored),
    );

    let container_bytes = std::fs::metadata(&container).unwrap().len() as usize;
    let raw_bytes = img.len(); // one byte per pixel
    assert!(
        container_bytes < raw_bytes,
        "container {container_bytes} B not smaller than raw {raw_bytes} B"
    );

    let back = pgm::read_pgm(&restored).unwrap();
    assert_eq!((back.width(), back.height()), (128, 96));
    let psnr = metrics::psnr(&img, &back);
    assert!(psnr >= 20.0, "PSNR {psnr:.2} dB below the 20 dB floor");
}

/// Model save → load reproduces identical reconstructions: compressing
/// with a saved model file and decompressing with the same file must
/// give byte-identical output to the standalone (inline-model) path.
#[test]
fn trained_model_file_reproduces_identical_output() {
    let dir = work_dir("model_reuse");
    let input = dir.join("img.pgm");
    let model = dir.join("model.qnm");
    write_dataset_image(&input, 64, 64, 7);

    run_ok(qnc().arg("train").arg(&input).arg("-o").arg(&model));

    // Compress twice with the same model file; outputs must be
    // byte-identical (bit-exact model load).
    let c1 = dir.join("a.qnc");
    let c2 = dir.join("b.qnc");
    for c in [&c1, &c2] {
        run_ok(
            qnc()
                .arg("compress")
                .arg(&input)
                .arg("-o")
                .arg(c)
                .arg("--model")
                .arg(&model)
                .arg("--no-inline-model")
                .arg("--no-verify"),
        );
    }
    assert_eq!(
        std::fs::read(&c1).unwrap(),
        std::fs::read(&c2).unwrap(),
        "same model file must produce identical containers"
    );

    // Decompress with the model file (no inline model present).
    let restored = dir.join("rt.pgm");
    run_ok(
        qnc()
            .arg("decompress")
            .arg(&c1)
            .arg("-o")
            .arg(&restored)
            .arg("--model")
            .arg(&model),
    );
    let img = pgm::read_pgm(&input).unwrap();
    let back = pgm::read_pgm(&restored).unwrap();
    let psnr = metrics::psnr(&img, &back);
    assert!(psnr >= 20.0, "PSNR {psnr:.2} dB below the 20 dB floor");
}

#[test]
fn gradient_refined_training_runs() {
    let dir = work_dir("train_iters");
    let input = dir.join("img.pgm");
    let model = dir.join("model.qnm");
    write_dataset_image(&input, 16, 16, 3);
    run_ok(
        qnc()
            .arg("train")
            .arg(&input)
            .arg("-o")
            .arg(&model)
            .arg("--iters")
            .arg("5")
            .arg("--latent")
            .arg("8"),
    );
    assert!(model.exists());
}

#[test]
fn info_reports_both_formats() {
    let dir = work_dir("info");
    let input = dir.join("img.pgm");
    let container = dir.join("out.qnc");
    let model = dir.join("model.qnm");
    write_dataset_image(&input, 32, 32, 11);
    run_ok(
        qnc()
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&container)
            .arg("--no-verify"),
    );
    run_ok(qnc().arg("train").arg(&input).arg("-o").arg(&model));

    let out = run_ok(qnc().arg("info").arg(&container));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("qnc container v1"), "got: {text}");
    assert!(text.contains("32x32 px"));

    let out = run_ok(qnc().arg("info").arg(&model));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("qnm model v1"), "got: {text}");
    assert!(text.contains("N=16 -> d=8"));
}

#[test]
fn corrupt_container_fails_cleanly_without_panicking() {
    let dir = work_dir("corrupt");
    let input = dir.join("img.pgm");
    let container = dir.join("out.qnc");
    write_dataset_image(&input, 32, 32, 13);
    run_ok(
        qnc()
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&container)
            .arg("--no-verify"),
    );

    let mut bytes = std::fs::read(&container).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    let corrupt = dir.join("corrupt.qnc");
    std::fs::write(&corrupt, &bytes).unwrap();

    let out = qnc()
        .arg("decompress")
        .arg(&corrupt)
        .arg("-o")
        .arg(dir.join("never.pgm"))
        .output()
        .expect("spawn qnc");
    assert!(!out.status.success(), "corrupt container must fail");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(
        !stderr.contains("panicked"),
        "decoder panicked on corrupt input: {stderr}"
    );
    assert!(
        stderr.contains("checksum") || stderr.contains("truncated"),
        "{stderr}"
    );
}

/// Bitstream v2 through the binary: every entropy coder compresses
/// and decompresses to pixel-identical output, both v2 coders shrink
/// the container on a multi-tile image, and an unknown coder name
/// fails cleanly.
#[test]
fn entropy_coders_are_selectable_and_decode_identically() {
    let dir = work_dir("entropy");
    let input = dir.join("img.pgm");
    write_dataset_image(&input, 48, 32, 83);

    let mut sizes = Vec::new();
    let mut decodes = Vec::new();
    for coder in ["rice", "rice-pos", "range"] {
        let container = dir.join(format!("{coder}.qnc"));
        let decoded = dir.join(format!("{coder}.pgm"));
        run_ok(
            qnc()
                .arg("compress")
                .arg(&input)
                .arg("-o")
                .arg(&container)
                .arg("--entropy")
                .arg(coder)
                .arg("--no-verify"),
        );
        // `info` names the coder.
        let info = run_ok(qnc().arg("info").arg(&container).arg("--json"));
        let json = String::from_utf8_lossy(&info.stdout).into_owned();
        assert!(
            json.contains(&format!("\"entropy\":\"{coder}\"")),
            "info --json must report the coder: {json}"
        );
        run_ok(
            qnc()
                .arg("decompress")
                .arg(&container)
                .arg("-o")
                .arg(&decoded),
        );
        sizes.push(std::fs::metadata(&container).unwrap().len());
        decodes.push(std::fs::read(&decoded).unwrap());
    }
    assert_eq!(decodes[0], decodes[1], "rice-pos decode differs from rice");
    assert_eq!(decodes[0], decodes[2], "range decode differs from rice");
    assert!(
        sizes[1] < sizes[0] && sizes[2] < sizes[0],
        "v2 coders must shrink the container: rice {} rice-pos {} range {}",
        sizes[0],
        sizes[1],
        sizes[2]
    );

    let out = qnc()
        .arg("compress")
        .arg(&input)
        .arg("-o")
        .arg(dir.join("bad.qnc"))
        .arg("--entropy")
        .arg("huffman")
        .output()
        .expect("spawn qnc");
    assert!(!out.status.success(), "unknown coder must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown entropy coder"));
}

/// `--backend` selects the execution schedule without changing a single
/// byte: every backend compresses to the same container, and a panel
/// decode of a scalar encode reproduces the scalar decode exactly.
#[test]
fn backends_are_byte_compatible_end_to_end() {
    let dir = work_dir("backends");
    let input = dir.join("img.pgm");
    write_dataset_image(&input, 48, 32, 29);

    let mut containers = Vec::new();
    for backend in ["scalar", "scalar-parallel", "panel"] {
        let out = dir.join(format!("{backend}.qnc"));
        run_ok(
            qnc()
                .arg("compress")
                .arg(&input)
                .arg("-o")
                .arg(&out)
                .arg("--backend")
                .arg(backend)
                .arg("--no-verify"),
        );
        containers.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(containers[0], containers[1], "scalar vs scalar-parallel");
    assert_eq!(containers[0], containers[2], "scalar vs panel");

    // Cross-decode: encode under one backend, decode under another.
    let scalar_pgm = dir.join("scalar.pgm");
    let panel_pgm = dir.join("panel.pgm");
    run_ok(
        qnc()
            .arg("decompress")
            .arg(dir.join("scalar.qnc"))
            .arg("-o")
            .arg(&scalar_pgm)
            .arg("--backend")
            .arg("scalar"),
    );
    run_ok(
        qnc()
            .arg("decompress")
            .arg(dir.join("scalar.qnc"))
            .arg("-o")
            .arg(&panel_pgm)
            .arg("--backend")
            .arg("panel"),
    );
    assert_eq!(
        std::fs::read(&scalar_pgm).unwrap(),
        std::fs::read(&panel_pgm).unwrap(),
        "panel decode must be byte-identical to scalar decode"
    );

    // Unknown backends fail cleanly.
    let out = qnc()
        .arg("compress")
        .arg(&input)
        .arg("-o")
        .arg(dir.join("never.qnc"))
        .arg("--backend")
        .arg("gpu")
        .output()
        .expect("spawn qnc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown backend"));
}

#[test]
fn info_json_is_machine_readable() {
    let dir = work_dir("info_json");
    let input = dir.join("img.pgm");
    let container = dir.join("out.qnc");
    write_dataset_image(&input, 32, 32, 17);
    run_ok(
        qnc()
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&container)
            .arg("--no-verify"),
    );
    let out = run_ok(qnc().arg("info").arg(&container).arg("--json"));
    let json = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        json.trim().starts_with('{') && json.trim().ends_with('}'),
        "{json}"
    );
    assert!(json.contains("\"format\":\"qnc\""), "{json}");
    assert!(json.contains("\"width\":32,\"height\":32"), "{json}");
    assert!(json.contains("\"payload_bytes\":"), "{json}");
    // And it matches the library producer the server's INFO reply uses.
    let bytes = std::fs::read(&container).unwrap();
    assert_eq!(json.trim(), qn_codec::info::file_info_json(&bytes).unwrap());
}

/// A `qnc serve` subprocess on an ephemeral port; killed on drop.
struct ServeProcess {
    child: Child,
    addr: String,
    // Keeps the stdout pipe's read end open for the child's lifetime.
    _stdout: BufReader<std::process::ChildStdout>,
}

impl ServeProcess {
    fn start(extra: &[&str]) -> ServeProcess {
        let mut child = qnc()
            .arg("serve")
            .arg("--addr")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn qnc serve");
        let stdout = child.stdout.take().expect("serve stdout");
        let mut reader = BufReader::new(stdout);
        let mut banner = String::new();
        reader.read_line(&mut banner).expect("read serve banner");
        let addr = banner
            .strip_prefix("qn-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .trim()
            .to_string();
        ServeProcess {
            child,
            addr,
            _stdout: reader,
        }
    }
}

impl Drop for ServeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The PR's acceptance criterion: a `.qnc` encoded via `qnc remote
/// compress` against a running `qn-serve` is byte-identical to offline
/// `qnc compress` with the same model/options — for both the spectral
/// and the explicit-model path — and `remote decompress` reproduces the
/// offline pixels.
#[test]
fn remote_compress_is_byte_identical_to_offline() {
    let dir = work_dir("remote");
    let input = dir.join("img.pgm");
    let model = dir.join("model.qnm");
    write_dataset_image(&input, 48, 32, 23);
    run_ok(qnc().arg("train").arg(&input).arg("-o").arg(&model));

    let server = ServeProcess::start(&["--store", dir.join("zoo").to_str().unwrap()]);

    // Spectral path (no --model on either side).
    let offline = dir.join("offline.qnc");
    let remote = dir.join("remote.qnc");
    run_ok(
        qnc()
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&offline)
            .arg("--no-verify"),
    );
    run_ok(
        qnc()
            .arg("remote")
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&remote)
            .arg("--addr")
            .arg(&server.addr),
    );
    assert_eq!(
        std::fs::read(&offline).unwrap(),
        std::fs::read(&remote).unwrap(),
        "spectral remote compress must be byte-identical"
    );

    // Explicit-model path: remote uploads the model to the zoo first.
    let offline_m = dir.join("offline_m.qnc");
    let remote_m = dir.join("remote_m.qnc");
    run_ok(
        qnc()
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&offline_m)
            .arg("--model")
            .arg(&model)
            .arg("--no-inline-model")
            .arg("--no-verify"),
    );
    run_ok(
        qnc()
            .arg("remote")
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(&remote_m)
            .arg("--model")
            .arg(&model)
            .arg("--no-inline-model")
            .arg("--addr")
            .arg(&server.addr),
    );
    assert_eq!(
        std::fs::read(&offline_m).unwrap(),
        std::fs::read(&remote_m).unwrap(),
        "model remote compress must be byte-identical"
    );

    // Remote decompress (zoo model, no inline) matches offline decode.
    let offline_pgm = dir.join("offline.pgm");
    let remote_pgm = dir.join("remote.pgm");
    run_ok(
        qnc()
            .arg("decompress")
            .arg(&offline_m)
            .arg("-o")
            .arg(&offline_pgm)
            .arg("--model")
            .arg(&model),
    );
    run_ok(
        qnc()
            .arg("remote")
            .arg("decompress")
            .arg(&remote_m)
            .arg("-o")
            .arg(&remote_pgm)
            .arg("--addr")
            .arg(&server.addr),
    );
    assert_eq!(
        std::fs::read(&offline_pgm).unwrap(),
        std::fs::read(&remote_pgm).unwrap(),
        "remote decompress must reproduce the offline pixels"
    );

    // Remote info over the wire equals local `info --json`.
    let out = run_ok(
        qnc()
            .arg("remote")
            .arg("info")
            .arg(&offline)
            .arg("--addr")
            .arg(&server.addr),
    );
    let local = run_ok(qnc().arg("info").arg(&offline).arg("--json"));
    assert_eq!(out.stdout, local.stdout);

    // Server status names the serving parameters.
    let out = run_ok(
        qnc()
            .arg("remote")
            .arg("info")
            .arg("--addr")
            .arg(&server.addr),
    );
    let status = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(status.contains("\"format\":\"qn-serve\""), "{status}");
}

/// `qnc remote models` lists zoo contents after a model upload and
/// reports an empty zoo before it.
#[test]
fn remote_models_lists_the_zoo() {
    let dir = work_dir("remote_models");
    let input = dir.join("img.pgm");
    let model = dir.join("model.qnm");
    write_dataset_image(&input, 16, 16, 77);
    run_ok(qnc().arg("train").arg(&input).arg("-o").arg(&model));

    // The work dir persists across test runs: start from a fresh zoo
    // so the emptiness check below means what it says.
    let _ = std::fs::remove_dir_all(dir.join("zoo"));
    let server = ServeProcess::start(&["--store", dir.join("zoo").to_str().unwrap()]);
    let out = run_ok(
        qnc()
            .arg("remote")
            .arg("models")
            .arg("--addr")
            .arg(&server.addr),
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("model zoo is empty"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Upload the model through a remote compress, then list again.
    run_ok(
        qnc()
            .arg("remote")
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(dir.join("out.qnc"))
            .arg("--model")
            .arg(&model)
            .arg("--addr")
            .arg(&server.addr),
    );
    let out = run_ok(
        qnc()
            .arg("remote")
            .arg("models")
            .arg("--addr")
            .arg(&server.addr),
    );
    let listing = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(listing.contains("1 model(s)"), "{listing}");
    assert!(listing.contains("yes"), "cached column: {listing}");
    let model_bytes = std::fs::metadata(&model).unwrap().len();
    assert!(listing.contains(&model_bytes.to_string()), "{listing}");
}

/// `--trace` end to end: a remote compress prints the server's span
/// tree for that exact request, `qnc remote trace` lists it again
/// afterwards, and the offline `compress --trace` renders the same
/// stage names locally.
#[test]
fn trace_flag_prints_span_trees_locally_and_remotely() {
    let dir = work_dir("trace_cli");
    let input = dir.join("img.pgm");
    write_dataset_image(&input, 32, 24, 9);

    let server = ServeProcess::start(&["--store", dir.join("zoo").to_str().unwrap()]);
    let out = run_ok(
        qnc()
            .arg("remote")
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(dir.join("out.qnc"))
            .arg("--trace")
            .arg("--addr")
            .arg(&server.addr),
    );
    let tree = String::from_utf8_lossy(&out.stdout).to_string();
    for stage in [
        "encode",
        "batch_wait",
        "mesh_pass",
        "entropy",
        "reply_write",
    ] {
        assert!(tree.contains(stage), "stage {stage} missing from: {tree}");
    }
    assert!(tree.contains("cause="), "flush-cause attr: {tree}");

    // The ring keeps it: `remote trace` lists at least that one trace.
    let out = run_ok(
        qnc()
            .arg("remote")
            .arg("trace")
            .arg("--addr")
            .arg(&server.addr),
    );
    let listing = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(listing.contains("encode"), "{listing}");
    assert!(listing.contains("trace(s)"), "{listing}");

    // Offline `compress --trace` renders the same stage vocabulary
    // without a server.
    let out = run_ok(
        qnc()
            .arg("compress")
            .arg(&input)
            .arg("-o")
            .arg(dir.join("offline.qnc"))
            .arg("--trace")
            .arg("--no-verify"),
    );
    let tree = String::from_utf8_lossy(&out.stdout).to_string();
    for stage in ["compress", "prepare", "mesh_pass", "quantize", "entropy"] {
        assert!(tree.contains(stage), "stage {stage} missing from: {tree}");
    }
}

/// `qnc eval` — the smoke sweep passes its pinned quality gates and
/// two runs write byte-identical JSON (the CI byte-stability check in
/// miniature).
#[test]
fn eval_smoke_is_gated_and_byte_stable() {
    let dir = work_dir("eval");
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    for path in [&a, &b] {
        let out = run_ok(
            qnc()
                .arg("eval")
                .arg("--datasets")
                .arg("blobs")
                .arg("--grid")
                .arg("smoke")
                .arg("--baselines")
                .arg("pca")
                .arg("--check")
                .arg("-o")
                .arg(path),
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("quality gates: OK"), "{stderr}");
        let table = String::from_utf8_lossy(&out.stdout);
        assert!(table.contains("quantum"), "{table}");
        assert!(table.contains("pca"), "{table}");
    }
    let a_bytes = std::fs::read(&a).unwrap();
    assert_eq!(
        a_bytes,
        std::fs::read(&b).unwrap(),
        "reports must be byte-stable"
    );
    let json = String::from_utf8_lossy(&a_bytes);
    assert!(json.contains("\"format\": \"qn-eval-quality\""), "{json}");
    assert!(json.contains("\"codec\": \"quantum\""), "{json}");

    // --json prints the same stable document to stdout.
    let out = run_ok(
        qnc()
            .arg("eval")
            .arg("--datasets")
            .arg("blobs")
            .arg("--grid")
            .arg("smoke")
            .arg("--baselines")
            .arg("pca")
            .arg("--json"),
    );
    assert_eq!(out.stdout, a_bytes, "--json must match the file report");

    // Unknown datasets fail cleanly with the registry listed.
    let out = qnc()
        .arg("eval")
        .arg("--datasets")
        .arg("imagenet")
        .output()
        .expect("spawn qnc");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("registry"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn remote_against_a_dead_server_fails_cleanly() {
    let dir = work_dir("remote_dead");
    let input = dir.join("img.pgm");
    write_dataset_image(&input, 16, 16, 9);
    let out = qnc()
        .arg("remote")
        .arg("compress")
        .arg(&input)
        .arg("-o")
        .arg(dir.join("never.qnc"))
        .arg("--addr")
        .arg("127.0.0.1:1") // nothing listens on port 1
        .output()
        .expect("spawn qnc");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");
    assert!(stderr.contains("connecting"), "{stderr}");
}

#[test]
fn usage_errors_exit_nonzero_with_help() {
    let out = qnc().output().expect("spawn qnc");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));

    let out = qnc().arg("explode").output().expect("spawn qnc");
    assert!(!out.status.success());

    let out = qnc()
        .arg("compress")
        .arg("/nonexistent/input.pgm")
        .arg("-o")
        .arg("/tmp/never.qnc")
        .output()
        .expect("spawn qnc");
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).contains("panicked"));
}
