//! `qnc` — the quantum-network image codec CLI.
//!
//! ```text
//! qnc compress   <input.pgm> -o <out.qnc> [options]
//! qnc decompress <input.qnc> -o <out.pgm> [options]
//! qnc train      <input.pgm> -o <model.qnm> [options]
//! qnc info       <file.qnc | file.qnm> [--json]
//! qnc serve      [--addr HOST:PORT] [--store DIR] [options]
//! qnc remote     compress|decompress|info|models … --addr HOST:PORT
//! qnc eval       [--datasets LIST] [--grid SPEC] [--baselines LIST]
//!                [-o report.json] [--json] [--check] [--timings]
//! ```
//!
//! Argument parsing is hand-rolled (the dependency set is frozen); every
//! failure exits with a message on stderr and a non-zero status — no
//! panics on user input.

use qn_codec::{
    decode_standalone_with, info, model, BackendKind, Codec, CodecOptions, EntropyCoder,
};
use qn_core::config::{
    CompressionTargetKind, InitStrategy, NetworkConfig, OptimizerKind, SubspaceKind,
};
use qn_core::trainer::Trainer;
use qn_image::{metrics, pgm, tiles, GrayImage};
use qn_serve::client::{model_encode_request, spectral_encode_request};
use qn_serve::{Client, ServerConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
qnc — quantum-network image codec

USAGE:
    qnc compress   <input.pgm> -o <out.qnc> [--model <m.qnm>] [--tile N]
                   [--latent D] [--bits B] [--entropy rice|rice-pos|range]
                   [--per-tile-scale] [--no-inline-model] [--backend B]
                   [--serial] [--no-verify] [--timings] [--trace]
    qnc decompress <input.qnc> -o <out.pgm> [--model <m.qnm>]
                   [--backend B] [--serial] [--timings] [--trace]
    qnc train      <input.pgm> -o <model.qnm> [--tile N] [--latent D]
                   [--layers-c N] [--layers-r N] [--iters N] [--seed S]
    qnc info       <file.qnc | file.qnm> [--json]
    qnc serve      [--addr HOST:PORT] [--store DIR] [--backend B]
                   [--batch-tiles N] [--batch-deadline-ms T] [--cache-models N]
                   [--read-timeout-ms T] [--log-level off|warn|info|debug]
                   [--workers N] [--max-inflight N] [--conn-inflight N]
                   [--max-conns N] [--shutdown-grace-ms T]
                   [--quiet] [--no-metrics] [--metrics-dump-secs N]
                   [--no-tracing] [--slow-ms MS]
    qnc remote compress   <input.pgm> -o <out.qnc> --addr HOST:PORT
                   [--model <m.qnm>] [--tile N] [--latent D] [--bits B]
                   [--entropy C] [--per-tile-scale] [--no-inline-model]
                   [--trace]
    qnc remote decompress <input.qnc> -o <out.pgm> --addr HOST:PORT
                   [--trace]
    qnc remote info       [file.qnc | file.qnm] --addr HOST:PORT
    qnc remote models     --addr HOST:PORT
    qnc remote stats      --addr HOST:PORT [--watch SECS]
    qnc remote trace      --addr HOST:PORT [--slow] [--id HEX] [--json]
    qnc eval       [--datasets a,b,c] [--dir PGM_DIR] [--grid SPEC]
                   [--baselines svd,pca,csc|all|none] [--backend B]
                   [-o report.json] [--json] [--seed S] [--check]
                   [--timings]

Defaults: tile 4, latent 8, bits 8, rice entropy coding, inline model,
panel backend. Backends (--backend scalar|scalar-parallel|panel|simd;
--serial is shorthand for --backend scalar) change throughput only:
every backend produces byte-identical containers and pixel-identical
decodes. --entropy picks the latent bitstream coder: rice writes
format v1 (readable by every build), rice-pos and range write format
v2 (per-position Rice parameters / adaptive range coding + norm
deltas — smaller files, identical pixels). `decompress` reads all
three automatically. `compress` without --model builds a PCA-spectral
model from the input image itself and (unless --no-inline-model)
embeds it in the container, so the .qnc decodes standalone. `train`
distills a model from an image's tiles: spectral initialisation plus
--iters gradient refinement steps (0 = spectral only). `serve` runs
the batching codec server (default addr 127.0.0.1:7733, port 0 =
ephemeral; --store names the model-zoo directory; --quiet drops the
banner, --log-level gates the timestamped stderr event lines,
--no-metrics disables telemetry, --metrics-dump-secs prints the
telemetry snapshot as one JSON line per interval); `remote` runs
compress/decompress/info/models/stats against it, with responses
byte-identical to the offline commands. `remote
compress --model` uploads the model to the server's zoo first.
`remote stats` prints the server's telemetry JSON (counters, gauges,
latency percentiles); --watch repeats it every SECS seconds.
`compress`/`decompress` --timings print a per-stage wall-clock report
(identical bytes — the timed path only reads clocks). --trace renders
the request's span tree: offline it is rebuilt from the stage clocks;
on `remote` commands the request carries a trace context, the server
records the full tree (frame read, batcher wait with flush cause,
mesh pass, codec stages, reply write) and the client fetches it back
— bytes are identical with tracing on or off. `remote trace` lists
the server's captured traces (recent ring, or the always-keep slow
buffer with --slow; --id filters to one hex trace id). `serve
--slow-ms` arms slow capture: requests at or over MS milliseconds are
kept in the slow buffer and logged as WARN lines with their stage
breakdown; --no-tracing disables tracing entirely. `eval`
runs the rate-distortion sweep (datasets from the registry and/or a
--dir of PGMs, grid spec like 'tile=4;d=2,4,8;bits=4,8' or
smoke/default) with classical baselines at matched rates, prints the
summary table (or the stable JSON with --json), writes the JSON report
with -o, and with --check fails unless the pinned quality gates hold
at the golden operating point. --timings adds wall-clock throughput
(which makes the report run-dependent, so stable reports omit it).";

/// Nanoseconds → milliseconds for the `--timings` stage reports.
#[allow(clippy::cast_precision_loss)]
fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("qnc: {msg}");
    ExitCode::from(2)
}

fn usage(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("qnc: {msg}\n\n{USAGE}");
    ExitCode::from(1)
}

/// Minimal flag cracker: positionals plus `--flag [value]` options.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags: Vec<(String, Option<String>)> = Vec::new();
        let takes_value = [
            "-o",
            "--output",
            "--model",
            "--tile",
            "--latent",
            "--bits",
            "--backend",
            "--layers-c",
            "--layers-r",
            "--iters",
            "--seed",
            "--addr",
            "--store",
            "--batch-tiles",
            "--batch-deadline-ms",
            "--cache-models",
            "--read-timeout-ms",
            "--workers",
            "--max-inflight",
            "--conn-inflight",
            "--max-conns",
            "--shutdown-grace-ms",
            "--metrics-dump-secs",
            "--log-level",
            "--slow-ms",
            "--id",
            "--watch",
            "--entropy",
            "--datasets",
            "--grid",
            "--baselines",
            "--dir",
        ];
        let boolean = [
            "--per-tile-scale",
            "--no-inline-model",
            "--serial",
            "--no-verify",
            "--json",
            "--check",
            "--timings",
            "--quiet",
            "--no-metrics",
            "--no-tracing",
            "--trace",
            "--slow",
            "--help",
            "-h",
        ];
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if takes_value.contains(&arg.as_str()) {
                let value = it
                    .next()
                    .ok_or_else(|| format!("flag {arg} needs a value"))?;
                flags.push((arg.clone(), Some(value.clone())));
            } else if boolean.contains(&arg.as_str()) {
                flags.push((arg.clone(), None));
            } else if arg.starts_with('-') && arg.len() > 1 {
                return Err(format!("unknown flag {arg}"));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(f, _)| f == name)
    }

    fn value(&self, names: &[&str]) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(f, _)| names.contains(&f.as_str()))
            .and_then(|(_, v)| v.as_deref())
    }

    fn numeric<T: std::str::FromStr>(&self, names: &[&str], default: T) -> Result<T, String> {
        match self.value(names) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("{} needs a number, got {s:?}", names[0])),
        }
    }
}

fn read_image(path: &Path) -> Result<GrayImage, String> {
    pgm::read_pgm(path).map_err(|e| format!("reading {}: {e}", path.display()))
}

/// Backend selection: `--backend <name>` wins, `--serial` is shorthand
/// for the scalar backend, default is the panel backend.
fn backend_choice(args: &Args) -> Result<BackendKind, String> {
    match args.value(&["--backend"]) {
        Some(name) => name.parse(),
        None if args.has("--serial") => Ok(BackendKind::Scalar),
        None => Ok(BackendKind::Panel),
    }
}

/// Entropy-coder selection: `--entropy rice|rice-pos|range`, default
/// rice (the v1 bitstream every build reads).
fn entropy_choice(args: &Args) -> Result<EntropyCoder, String> {
    match args.value(&["--entropy"]) {
        Some(name) => name.parse(),
        None => Ok(EntropyCoder::Rice),
    }
}

/// The codec for `compress`: an explicit model file, or a spectral model
/// distilled from the image itself.
fn codec_for_compress(
    args: &Args,
    img: &GrayImage,
    tile: usize,
    latent: usize,
) -> Result<(Codec, &'static str), String> {
    match args.value(&["--model"]) {
        Some(path) => Codec::from_model_file(Path::new(path))
            .map(|c| (c, "file"))
            .map_err(|e| format!("loading model {path}: {e}")),
        None => Codec::spectral_for_image(img, tile, latent)
            .map(|c| (c, "spectral"))
            .map_err(|e| format!("building spectral model: {e}")),
    }
}

fn cmd_compress(args: &Args) -> Result<(), String> {
    let [input] = args.positional.as_slice() else {
        return Err("compress needs exactly one input image".into());
    };
    let output = PathBuf::from(
        args.value(&["-o", "--output"])
            .ok_or("compress needs -o <out.qnc>")?,
    );
    let tile: usize = args.numeric(&["--tile"], 4)?;
    let latent: usize = args.numeric(&["--latent"], 8)?;
    let opts = CodecOptions {
        tile_size: tile,
        bits: args.numeric(&["--bits"], 8u8)?,
        per_tile_scale: args.has("--per-tile-scale"),
        inline_model: !args.has("--no-inline-model"),
        backend: backend_choice(args)?,
        entropy: entropy_choice(args)?,
    };

    let img = read_image(Path::new(input))?;
    let (codec, model_source) = codec_for_compress(args, &img, tile, latent)?;
    let (bytes, stats) = if args.has("--timings") || args.has("--trace") {
        // The timed path produces identical bytes; it only reads clocks.
        let trace_start = std::time::Instant::now();
        let (bytes, stats, t) = codec
            .encode_image_timed(&img, &opts)
            .map_err(|e| format!("encoding: {e}"))?;
        if args.has("--timings") {
            println!(
                "timings: prepare {:.3} ms, mesh {:.3} ms, quantize {:.3} ms, entropy {:.3} ms",
                ms(t.prepare_ns),
                ms(t.mesh_ns),
                ms(t.quantize_ns),
                ms(t.entropy_ns)
            );
        }
        if args.has("--trace") {
            // The same tree a traced `qnc remote compress` renders,
            // rebuilt from the offline stage clocks (stages laid end to
            // end; no batcher, so no batch_wait span).
            let mut b =
                qn_trace::TraceBuilder::with_anchor(fresh_trace_id(), "compress", trace_start);
            let mut off = 0u64;
            for (name, ns) in [
                ("prepare", t.prepare_ns),
                ("mesh_pass", t.mesh_ns),
                ("quantize", t.quantize_ns),
                ("entropy", t.entropy_ns),
            ] {
                let s = b.record(qn_trace::SpanId::ROOT, name, off, off + ns);
                if name == "entropy" {
                    b.attr(s, "coder", opts.entropy);
                }
                off += ns;
            }
            b.attr(qn_trace::SpanId::ROOT, "tiles", stats.tiles);
            print!("{}", qn_trace::render_tree(&b.finish()));
        }
        (bytes, stats)
    } else {
        codec
            .encode_image_with_stats(&img, &opts)
            .map_err(|e| format!("encoding: {e}"))?
    };
    std::fs::write(&output, &bytes).map_err(|e| format!("writing {}: {e}", output.display()))?;

    println!(
        "compressed {}x{} ({} px) -> {} bytes  [{:.3} bpp, ratio {:.2}x, {} tiles, {} empty, model: {model_source}]",
        img.width(),
        img.height(),
        img.len(),
        stats.container_bytes,
        stats.bits_per_pixel,
        stats.ratio(),
        stats.tiles,
        stats.empty_tiles,
    );

    if !args.has("--no-verify") {
        let back = codec
            .decode_bytes_with(&bytes, opts.backend)
            .map_err(|e| format!("verify decode: {e}"))?;
        let psnr = metrics::psnr(&img, &back.clamped());
        println!(
            "verify: PSNR {psnr:.2} dB, SSIM {:.4}",
            metrics::ssim(&img, &back.clamped())
        );
    }
    Ok(())
}

fn cmd_decompress(args: &Args) -> Result<(), String> {
    let [input] = args.positional.as_slice() else {
        return Err("decompress needs exactly one input container".into());
    };
    let output = PathBuf::from(
        args.value(&["-o", "--output"])
            .ok_or("decompress needs -o <out.pgm>")?,
    );
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let backend = backend_choice(args)?;

    let codec = match args.value(&["--model"]) {
        Some(path) => Some(
            Codec::from_model_file(Path::new(path))
                .map_err(|e| format!("loading model {path}: {e}"))?,
        ),
        None => None,
    };
    let img = if args.has("--timings") || args.has("--trace") {
        // Same decode, clocked per stage; a standalone container first
        // rebuilds its codec from the inline model.
        let codec = match codec {
            Some(c) => c,
            None => {
                let container = qn_codec::Container::from_bytes(&bytes)
                    .map_err(|e| format!("decoding: {e}"))?;
                qn_codec::codec_from_inline(&container).map_err(|e| format!("decoding: {e}"))?
            }
        };
        let trace_start = std::time::Instant::now();
        let (img, t) = codec
            .decode_bytes_timed(&bytes, backend)
            .map_err(|e| format!("decoding: {e}"))?;
        if args.has("--timings") {
            println!(
                "timings: parse {:.3} ms, prepare {:.3} ms, mesh {:.3} ms, stitch {:.3} ms",
                ms(t.parse_ns),
                ms(t.prepare_ns),
                ms(t.mesh_ns),
                ms(t.stitch_ns)
            );
        }
        if args.has("--trace") {
            let mut b =
                qn_trace::TraceBuilder::with_anchor(fresh_trace_id(), "decompress", trace_start);
            let mut off = 0u64;
            for (name, ns) in [
                ("parse", t.parse_ns),
                ("prepare", t.prepare_ns),
                ("mesh_pass", t.mesh_ns),
                ("stitch", t.stitch_ns),
            ] {
                b.record(qn_trace::SpanId::ROOT, name, off, off + ns);
                off += ns;
            }
            print!("{}", qn_trace::render_tree(&b.finish()));
        }
        img
    } else {
        match codec {
            Some(codec) => codec
                .decode_bytes_with(&bytes, backend)
                .map_err(|e| format!("decoding: {e}"))?,
            None => {
                decode_standalone_with(&bytes, backend).map_err(|e| format!("decoding: {e}"))?
            }
        }
    };

    pgm::write_pgm(&img.clamped(), &output)
        .map_err(|e| format!("writing {}: {e}", output.display()))?;
    println!(
        "decompressed -> {} ({}x{})",
        output.display(),
        img.width(),
        img.height()
    );
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let [input] = args.positional.as_slice() else {
        return Err("train needs exactly one input image".into());
    };
    let output = PathBuf::from(
        args.value(&["-o", "--output"])
            .ok_or("train needs -o <model.qnm>")?,
    );
    let tile: usize = args.numeric(&["--tile"], 4)?;
    let latent: usize = args.numeric(&["--latent"], 8)?;
    let iters: usize = args.numeric(&["--iters"], 0)?;
    let dim = tile * tile;

    let img = read_image(Path::new(input))?;
    let model = if iters == 0 {
        Codec::spectral_for_image(&img, tile, latent)
            .map_err(|e| format!("spectral model: {e}"))?
            .model()
            .clone()
    } else {
        // Gradient refinement from the spectral start, on the image's
        // own non-empty tiles.
        let tiling = tiles::tile(&img, tile);
        let samples: Vec<GrayImage> = tiling
            .tiles
            .into_iter()
            .filter(|t| t.pixels().iter().any(|&p| p > 0.0))
            .collect();
        if samples.is_empty() {
            return Err("image is entirely black; nothing to train on".into());
        }
        let config = NetworkConfig {
            dim,
            compressed_dim: latent,
            layers_c: args.numeric(&["--layers-c"], 12)?,
            layers_r: args.numeric(&["--layers-r"], 14)?,
            iterations: iters,
            seed: args.numeric(&["--seed"], 7u64)?,
            init: InitStrategy::Spectral,
            target: CompressionTargetKind::TrashPenalty,
            subspace: SubspaceKind::KeepLast,
            // Plain GD on sample-normalised gradients: the spectral
            // start is already near-optimal, and adaptive optimizers
            // (Adam normalises tiny gradients up to full-size steps)
            // walk away from it before re-converging; unnormalised sum
            // gradients diverge outright on hundreds of tiles.
            optimizer: OptimizerKind::Gd,
            learning_rate: 0.05,
            normalize_gradient: true,
            ..NetworkConfig::paper_default()
        };
        let mut trainer =
            Trainer::new(config, &samples).map_err(|e| format!("trainer setup: {e}"))?;
        let report = trainer.train().map_err(|e| format!("training: {e}"))?;
        println!(
            "trained {iters} iterations on {} tiles: L_C {:.3e}, L_R {:.3e}",
            samples.len(),
            report.final_compression_loss,
            report.final_reconstruction_loss
        );
        trainer.into_autoencoder()
    };

    model::save_model(&output, &model).map_err(|e| format!("saving model: {e}"))?;
    println!(
        "model -> {} (N={}, d={}, id {:#018x})",
        output.display(),
        model.dim(),
        model.compression.compressed_dim(),
        model::model_id(&model)
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let [input] = args.positional.as_slice() else {
        return Err("info needs exactly one file".into());
    };
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    if args.has("--json") {
        // The same JSON a running server's INFO reply carries.
        let json = info::file_info_json(&bytes).map_err(|e| format!("{input}: {e}"))?;
        println!("{json}");
        return Ok(());
    }
    match bytes.get(..4) {
        Some(m) if m == qn_codec::container::CONTAINER_MAGIC => {
            let c = qn_codec::Container::from_bytes(&bytes)
                .map_err(|e| format!("parsing container: {e}"))?;
            let h = &c.header;
            println!("qnc container v{}", h.version);
            println!("  image        {}x{} px", h.width, h.height);
            println!(
                "  tiles        {}x{} of {}px ({} total)",
                h.tiles_x(),
                h.tiles_y(),
                h.tile_size,
                h.tile_count()
            );
            println!("  latents      d={} @ {} bits", h.latent_dim, h.bits);
            println!("  model id     {:#018x}", h.model_id);
            println!("  per-tile scale  {}", h.per_tile_scale());
            println!(
                "  inline model {}",
                c.inline_model
                    .as_ref()
                    .map_or("no".to_string(), |m| format!("{} bytes", m.len()))
            );
            println!(
                "  occupied     {}/{} tiles",
                c.tiles.iter().filter(|t| t.is_some()).count(),
                c.tiles.len()
            );
            println!("  file size    {} bytes", bytes.len());
        }
        Some(m) if m == qn_codec::model::MODEL_MAGIC => {
            let model =
                qn_codec::model::decode_model(&bytes).map_err(|e| format!("parsing model: {e}"))?;
            println!("qnm model v{}", qn_codec::model::MODEL_VERSION);
            println!(
                "  dimensions   N={} -> d={}",
                model.dim(),
                model.compression.compressed_dim()
            );
            println!(
                "  mesh U_C     {} layers, {} parameters",
                model.compression.mesh().n_layers(),
                model.compression.mesh().param_count()
            );
            println!(
                "  mesh U_R     {} layers, {} parameters",
                model.reconstruction.mesh().n_layers(),
                model.reconstruction.mesh().param_count()
            );
            println!("  model id     {:#018x}", qn_codec::model::model_id(&model));
            println!("  file size    {} bytes", bytes.len());
        }
        _ => return Err(format!("{input}: not a .qnc container or .qnm model")),
    }
    Ok(())
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err(format!(
            "serve takes no positionals, got {:?}",
            args.positional
        ));
    }
    let log_level = match args.value(&["--log-level"]) {
        // The CLI server logs by default; the library default (Off)
        // stays silent for embedded servers.
        None => qn_serve::LogLevel::Info,
        Some(s) => qn_serve::LogLevel::parse(s)
            .ok_or_else(|| format!("--log-level takes off|warn|info|debug, got {s:?}"))?,
    };
    let dump_secs: u64 = args.numeric(&["--metrics-dump-secs"], 0u64)?;
    let config = ServerConfig {
        addr: args.value(&["--addr"]).unwrap_or("127.0.0.1:7733").into(),
        store_dir: args.value(&["--store"]).map(PathBuf::from),
        model_cache: args.numeric(&["--cache-models"], 16usize)?,
        backend: backend_choice(args)?,
        batch_tiles: args.numeric(&["--batch-tiles"], 4096usize)?,
        batch_deadline: Duration::from_millis(args.numeric(&["--batch-deadline-ms"], 2u64)?),
        read_timeout: Duration::from_millis(args.numeric(&["--read-timeout-ms"], 30_000u64)?),
        workers: args.numeric(&["--workers"], 0usize)?,
        max_inflight: args.numeric(&["--max-inflight"], 256usize)?,
        conn_inflight: args.numeric(&["--conn-inflight"], 8usize)?,
        max_conns: args.numeric(&["--max-conns"], 0usize)?,
        shutdown_grace: Duration::from_millis(args.numeric(&["--shutdown-grace-ms"], 5_000u64)?),
        metrics: !args.has("--no-metrics"),
        log_level,
        tracing: !args.has("--no-tracing"),
        slow_threshold: Duration::from_millis(args.numeric(&["--slow-ms"], 0u64)?),
    };
    if config.slow_threshold > Duration::ZERO && !config.tracing {
        return Err("--slow-ms needs tracing; drop --no-tracing".into());
    }
    if dump_secs > 0 && !config.metrics {
        return Err("--metrics-dump-secs needs metrics; drop --no-metrics".into());
    }
    let store = config
        .store_dir
        .as_ref()
        .map_or("none (in-memory models only)".to_string(), |d| {
            d.display().to_string()
        });
    let handle = qn_serve::spawn(config.clone()).map_err(|e| format!("starting server: {e}"))?;
    // The address line is the startup handshake scripts and tests parse
    // (ephemeral ports are only knowable here). Written fallibly: a
    // server must keep serving even if stdout is a pipe whose reader
    // went away after the handshake. --quiet suppresses it (and the
    // whole banner) for setups that discover the address elsewhere.
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    if !args.has("--quiet") {
        let _ = writeln!(
            stdout,
            "qn-serve listening on {}\n  backend {}, batch {} tiles / {} ms deadline, model store: {store}\n  metrics {}, tracing {}, log level {}",
            handle.addr(),
            config.backend,
            config.batch_tiles,
            config.batch_deadline.as_millis(),
            if config.metrics { "on" } else { "off" },
            match (config.tracing, config.slow_threshold.as_millis()) {
                (false, _) => "off".to_string(),
                (true, 0) => "on".to_string(),
                (true, ms) => format!("on (slow >= {ms} ms)"),
            },
            config.log_level,
        );
        let _ = stdout.flush();
    }
    // Serve until killed, optionally dumping the telemetry snapshot as
    // one JSON line per interval.
    match handle.metrics().filter(|_| dump_secs > 0) {
        Some(m) => {
            let m = std::sync::Arc::clone(m);
            loop {
                std::thread::sleep(Duration::from_secs(dump_secs));
                let _ = writeln!(stdout, "{}", m.stats_json());
                let _ = stdout.flush();
            }
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}

/// Connect to the server every remote subcommand talks to.
fn remote_client(args: &Args) -> Result<Client, String> {
    let addr = args
        .value(&["--addr"])
        .ok_or("remote needs --addr HOST:PORT")?;
    Client::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))
}

fn cmd_remote(args: &Args) -> Result<(), String> {
    let Some((sub, rest)) = args.positional.split_first() else {
        return Err("remote needs a subcommand: compress, decompress or info".into());
    };
    match sub.as_str() {
        "compress" => remote_compress(args, rest),
        "decompress" => remote_decompress(args, rest),
        "info" => remote_info(args, rest),
        "models" => remote_models(args, rest),
        "stats" => remote_stats(args, rest),
        "trace" => remote_trace(args, rest),
        other => Err(format!("unknown remote subcommand {other:?}")),
    }
}

fn remote_stats(args: &Args, positional: &[String]) -> Result<(), String> {
    if !positional.is_empty() {
        return Err(format!(
            "remote stats takes no positionals, got {positional:?}"
        ));
    }
    let mut client = remote_client(args)?;
    let watch: u64 = args.numeric(&["--watch"], 0u64)?;
    // Written fallibly: `--watch` output is made for piping (`| head`,
    // a pager that quits), and a closed stdout must end the loop
    // cleanly, not panic the process mid-print.
    use std::io::Write as _;
    let mut stdout = std::io::stdout();
    loop {
        let json = client.stats().map_err(|e| format!("remote stats: {e}"))?;
        if writeln!(stdout, "{json}")
            .and_then(|()| stdout.flush())
            .is_err()
        {
            return Ok(());
        }
        if watch == 0 {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs(watch));
    }
}

/// A fresh (non-zero) trace id for `--trace` round-trips: wall-clock
/// nanoseconds mixed with the pid, so concurrent invocations against
/// one server get distinct ids without a PRNG dependency.
fn fresh_trace_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| {
            u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(u64::MAX)
        });
    let id = nanos ^ (u64::from(std::process::id()) << 32);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Fetch and render the span tree the server recorded under `id` (a
/// `--trace` round-trip just completed on `client`'s connection, so
/// the trace is guaranteed captured).
fn print_remote_trace(client: &mut Client, id: u64) -> Result<(), String> {
    let json = client
        .trace(false, Some(id))
        .map_err(|e| format!("fetching trace: {e}"))?;
    let traces = qn_trace::parse_traces(&json).map_err(|e| format!("parsing trace reply: {e}"))?;
    match traces.last() {
        Some(t) => print!("{}", qn_trace::render_tree(t)),
        None => println!("trace {id:016x}: evicted from the server's recent ring before fetch"),
    }
    Ok(())
}

fn remote_trace(args: &Args, positional: &[String]) -> Result<(), String> {
    if !positional.is_empty() {
        return Err(format!(
            "remote trace takes no positionals, got {positional:?}"
        ));
    }
    let id = match args.value(&["--id"]) {
        Some(hex) => {
            let hex = hex.strip_prefix("0x").unwrap_or(hex);
            Some(
                u64::from_str_radix(hex, 16)
                    .map_err(|_| format!("--id takes a hex trace id, got {hex:?}"))?,
            )
        }
        None => None,
    };
    let slow = args.has("--slow");
    let mut client = remote_client(args)?;
    let json = client
        .trace(slow, id)
        .map_err(|e| format!("remote trace: {e}"))?;
    if args.has("--json") {
        println!("{json}");
        return Ok(());
    }
    let traces = qn_trace::parse_traces(&json).map_err(|e| format!("parsing trace reply: {e}"))?;
    if traces.is_empty() {
        println!(
            "no {} traces captured{}",
            if slow { "slow" } else { "recent" },
            id.map_or(String::new(), |id| format!(" under id {id:016x}")),
        );
        return Ok(());
    }
    for t in &traces {
        print!("{}", qn_trace::render_tree(t));
    }
    println!("{} trace(s)", traces.len());
    Ok(())
}

fn remote_models(args: &Args, positional: &[String]) -> Result<(), String> {
    if !positional.is_empty() {
        return Err(format!(
            "remote models takes no positionals, got {positional:?}"
        ));
    }
    let mut client = remote_client(args)?;
    let entries = client
        .list_models()
        .map_err(|e| format!("remote models: {e}"))?;
    if entries.is_empty() {
        println!("model zoo is empty");
        return Ok(());
    }
    println!("{:<18}  {:>10}  cached", "model id", "bytes");
    for e in &entries {
        println!(
            "{:#018x}  {:>10}  {}",
            e.id,
            e.size_bytes,
            if e.cached { "yes" } else { "no" }
        );
    }
    println!("{} model(s)", entries.len());
    Ok(())
}

fn remote_compress(args: &Args, positional: &[String]) -> Result<(), String> {
    let [input] = positional else {
        return Err("remote compress needs exactly one input image".into());
    };
    let output = PathBuf::from(
        args.value(&["-o", "--output"])
            .ok_or("remote compress needs -o <out.qnc>")?,
    );
    let tile: usize = args.numeric(&["--tile"], 4)?;
    let latent: usize = args.numeric(&["--latent"], 8)?;
    let max_tile = usize::from(qn_serve::protocol::MAX_TILE_SIZE);
    if tile == 0 || tile > max_tile {
        return Err(format!(
            "remote compress accepts --tile 1..={max_tile} (the server caps the \
             per-request model dimension), got {tile}"
        ));
    }
    let opts = CodecOptions {
        tile_size: tile,
        bits: args.numeric(&["--bits"], 8u8)?,
        per_tile_scale: args.has("--per-tile-scale"),
        inline_model: !args.has("--no-inline-model"),
        backend: BackendKind::Panel, // server-side choice; irrelevant to bytes
        entropy: entropy_choice(args)?,
    };
    let img = read_image(Path::new(input))?;
    let mut client = remote_client(args)?;
    let request = match args.value(&["--model"]) {
        Some(path) => {
            let model_bytes =
                std::fs::read(path).map_err(|e| format!("reading model {path}: {e}"))?;
            let id = client
                .load_model(&model_bytes)
                .map_err(|e| format!("uploading model: {e}"))?;
            model_encode_request(&img, &opts, id)
        }
        None => spectral_encode_request(&img, &opts, latent),
    };
    let trace_ctx = args.has("--trace").then(|| qn_serve::TraceContext {
        id: fresh_trace_id(),
        sampled: true,
    });
    let bytes = match trace_ctx {
        Some(ctx) => client.encode_traced(&request, ctx),
        None => client.encode(&request),
    }
    .map_err(|e| format!("remote encode: {e}"))?;
    std::fs::write(&output, &bytes).map_err(|e| format!("writing {}: {e}", output.display()))?;
    println!(
        "compressed {}x{} ({} px) -> {} bytes  [remote, model: {}]",
        img.width(),
        img.height(),
        img.len(),
        bytes.len(),
        if args.has("--model") {
            "file"
        } else {
            "spectral"
        },
    );
    if let Some(ctx) = trace_ctx {
        print_remote_trace(&mut client, ctx.id)?;
    }
    Ok(())
}

fn remote_decompress(args: &Args, positional: &[String]) -> Result<(), String> {
    let [input] = positional else {
        return Err("remote decompress needs exactly one input container".into());
    };
    let output = PathBuf::from(
        args.value(&["-o", "--output"])
            .ok_or("remote decompress needs -o <out.pgm>")?,
    );
    let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
    let mut client = remote_client(args)?;
    let trace_ctx = args.has("--trace").then(|| qn_serve::TraceContext {
        id: fresh_trace_id(),
        sampled: true,
    });
    let img = match trace_ctx {
        Some(ctx) => client.decode_traced(&bytes, ctx),
        None => client.decode(&bytes),
    }
    .map_err(|e| format!("remote decode: {e}"))?;
    pgm::write_pgm(&img.clamped(), &output)
        .map_err(|e| format!("writing {}: {e}", output.display()))?;
    println!(
        "decompressed -> {} ({}x{}) [remote]",
        output.display(),
        img.width(),
        img.height()
    );
    if let Some(ctx) = trace_ctx {
        print_remote_trace(&mut client, ctx.id)?;
    }
    Ok(())
}

fn remote_info(args: &Args, positional: &[String]) -> Result<(), String> {
    let mut client = remote_client(args)?;
    let json = match positional {
        [] => client.info(None),
        [input] => {
            let bytes = std::fs::read(input).map_err(|e| format!("reading {input}: {e}"))?;
            client.info(Some(&bytes))
        }
        more => return Err(format!("remote info takes at most one file, got {more:?}")),
    }
    .map_err(|e| format!("remote info: {e}"))?;
    println!("{json}");
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    if !args.positional.is_empty() {
        return Err(format!(
            "eval takes no positionals, got {:?}",
            args.positional
        ));
    }
    let seed: u64 = args.numeric(&["--seed"], 0u64)?;
    let mut datasets = match args.value(&["--datasets"]) {
        Some(roster) => qn_eval::registry::resolve(roster, seed)?,
        None if args.value(&["--dir"]).is_some() => Vec::new(),
        None => qn_eval::registry::all_builtin(seed),
    };
    if let Some(dir) = args.value(&["--dir"]) {
        datasets.push(qn_eval::registry::from_pgm_dir(Path::new(dir))?);
    }
    let mut grid = qn_eval::Grid::parse(args.value(&["--grid"]).unwrap_or("default"))?;
    grid.backend = backend_choice(args)?;
    let baselines = qn_eval::BaselineSet::parse(args.value(&["--baselines"]).unwrap_or("all"))?;
    let report =
        qn_eval::QualityReport::build(&datasets, &grid, &baselines, args.has("--timings"), seed)?;
    if args.has("--json") {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.human_table());
    }
    if let Some(out) = args.value(&["-o", "--output"]) {
        std::fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("eval: report -> {out}");
    }
    if args.has("--check") {
        match qn_eval::gates::check(&report, &qn_eval::QualityGates::PINNED) {
            Ok(outcome) => eprintln!(
                "quality gates: OK ({:.2} dB >= {:.2} dB floor, {:.3} bpp <= {:.3} bpp ceiling)",
                outcome.psnr_db,
                qn_eval::QualityGates::PINNED.psnr_floor_db,
                outcome.bpp,
                qn_eval::QualityGates::PINNED.bpp_ceiling,
            ),
            Err(violations) => return Err(violations.join("; ")),
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        return usage("missing command");
    };
    let args = match Args::parse(rest) {
        Ok(args) => args,
        Err(e) => return usage(e),
    };
    if args.has("--help") || args.has("-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match command.as_str() {
        "compress" => cmd_compress(&args),
        "decompress" => cmd_decompress(&args),
        "train" => cmd_train(&args),
        "info" => cmd_info(&args),
        "serve" => cmd_serve(&args),
        "remote" => cmd_remote(&args),
        "eval" => cmd_eval(&args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => return usage(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
