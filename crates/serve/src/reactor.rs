//! The event-driven connection core: a `poll(2)`-based reactor that
//! owns every socket, so 10k+ mostly-idle connections cost one thread
//! instead of one thread each.
//!
//! # Shape
//!
//! One reactor thread multiplexes the listener, a wakeup pipe and all
//! client sockets (nonblocking) through `poll(2)` — a two-symbol FFI
//! surface (`poll`, `pipe`), no `libc` crate, no async runtime
//! (compat-shim discipline: crates.io is unreachable here). Frame
//! bytes accumulate per connection in a state machine built on
//! [`FrameHeader::parse`](crate::protocol::FrameHeader::parse) — the
//! exact validation path blocking readers use — and complete frames
//! are handed to a bounded worker pool. Workers never touch sockets:
//! replies come back through each connection's ordered outbox and the
//! reactor writes them out under `POLLOUT`, so a slow-reading peer
//! stalls only its own connection, never a worker.
//!
//! # Ordering
//!
//! Every parsed frame gets a per-connection sequence number and every
//! frame produces exactly one reply (success, typed error, or `BUSY`).
//! The outbox releases replies strictly in sequence order, so a
//! pipelining client sees replies in request order and a stream-level
//! error always flushes *after* the replies to the valid frames that
//! preceded it — the same observable order the old sequential loop
//! produced.
//!
//! # Deadlines and lifecycle
//!
//! The frame-level read deadline survives as a poll deadline: armed
//! when a header parses, checked against the earliest-deadline poll
//! timeout, and an expiry reaps the connection (idle connections are
//! never timed out — the clock only runs between header and frame
//! completion). Shutdown writes a byte into the wakeup pipe (no
//! self-connect hack, works on wildcard binds), the reactor stops
//! accepting, drains in-flight replies within a bounded grace period
//! and force-closes whatever remains.

use crate::protocol::HEADER_LEN;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// The three-symbol FFI surface. `nfds_t` is `c_ulong` on Linux; the
// event bits below are identical across the unix platforms this repo
// targets.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
struct RawPollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

const F_GETFL: std::ffi::c_int = 3;
const F_SETFL: std::ffi::c_int = 4;
#[cfg(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd"))]
const O_NONBLOCK: std::ffi::c_int = 0x0004;
#[cfg(not(any(target_os = "macos", target_os = "freebsd", target_os = "netbsd")))]
const O_NONBLOCK: std::ffi::c_int = 0o4000;

extern "C" {
    fn poll(
        fds: *mut RawPollFd,
        nfds: std::ffi::c_ulong,
        timeout_ms: std::ffi::c_int,
    ) -> std::ffi::c_int;
    fn pipe(fds: *mut std::ffi::c_int) -> std::ffi::c_int;
    // fcntl(2) is variadic in C; the int-argument forms used here pass
    // identically through the non-variadic declaration on every ABI
    // this repo targets.
    fn fcntl(fd: RawFd, cmd: std::ffi::c_int, arg: std::ffi::c_int) -> std::ffi::c_int;
}

/// Put a descriptor into nonblocking mode via `F_GETFL`/`F_SETFL`.
fn set_nonblocking(fd: RawFd) -> std::io::Result<()> {
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(std::io::Error::last_os_error());
    }
    if unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
        return Err(std::io::Error::last_os_error());
    }
    Ok(())
}

/// What a registered descriptor wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable only.
    Read,
    /// Writable only.
    Write,
    /// Readable or writable.
    ReadWrite,
}

/// Readiness delivered for one registered descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Bytes (or an accept/EOF) are waiting.
    pub readable: bool,
    /// The socket can take more outbound bytes.
    pub writable: bool,
    /// Error / hangup / invalid-descriptor condition — readers should
    /// drain and close.
    pub error: bool,
}

impl Readiness {
    fn from_revents(revents: i16) -> Readiness {
        Readiness {
            readable: revents & POLLIN != 0,
            writable: revents & POLLOUT != 0,
            error: revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
        }
    }

    /// Any condition at all.
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.error
    }
}

/// A thin safe wrapper over one `poll(2)` call: callers re-register
/// their descriptor set every iteration (O(n), perfectly adequate at
/// the 10k-connection scale this server targets — the syscall itself
/// walks the set anyway) and read back per-slot [`Readiness`].
#[derive(Debug, Default)]
pub struct Poller {
    fds: Vec<RawPollFd>,
}

impl Poller {
    /// A poller with no registered descriptors.
    pub fn new() -> Poller {
        Poller::default()
    }

    /// Drop all registrations (start of a loop iteration).
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Register a descriptor; the returned slot indexes [`Poller::readiness`].
    pub fn register(&mut self, fd: RawFd, interest: Interest) -> usize {
        let events = match interest {
            Interest::Read => POLLIN,
            Interest::Write => POLLOUT,
            Interest::ReadWrite => POLLIN | POLLOUT,
        };
        self.fds.push(RawPollFd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Block until readiness or timeout (`None` = wait indefinitely).
    /// Returns the number of ready descriptors (0 on timeout).
    ///
    /// # Errors
    /// The raw `poll(2)` failure, with `EINTR` retried internally.
    pub fn poll(&mut self, timeout: Option<Duration>) -> std::io::Result<usize> {
        let timeout_ms: std::ffi::c_int = match timeout {
            // Round up so a 0.4 ms deadline does not spin at 0 ms.
            Some(t) => std::ffi::c_int::try_from(t.as_millis().saturating_add(1))
                .unwrap_or(std::ffi::c_int::MAX),
            None => -1,
        };
        loop {
            let n = unsafe {
                poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::ffi::c_ulong,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Readiness of the descriptor registered at `slot`.
    pub fn readiness(&self, slot: usize) -> Readiness {
        Readiness::from_revents(self.fds[slot].revents)
    }
}

/// A self-wakeup pipe: the reactor parks in `poll` on the read end;
/// any thread (a worker with a finished reply, `ServerHandle::stop`)
/// writes one byte to interrupt the wait. This replaces the old
/// self-connect shutdown hack, which connected to the *listen*
/// address and therefore hung on wildcard (`0.0.0.0`) binds.
#[derive(Debug)]
pub struct WakePipe {
    reader: File,
    writer: Arc<Waker>,
}

/// The clonable write end of a [`WakePipe`].
#[derive(Debug)]
pub struct Waker {
    writer: Mutex<File>,
}

impl Waker {
    /// Interrupt the reactor's poll wait. Never blocks: the write end
    /// is nonblocking, so a full pipe fails with `WouldBlock` — which
    /// is fine, because a full pipe genuinely means a wakeup is
    /// already pending. A closed pipe means the reactor is gone.
    pub fn wake(&self) {
        if let Ok(mut w) = self.writer.lock() {
            let _ = w.write(&[1u8]);
        }
    }
}

impl WakePipe {
    /// Create the pipe pair.
    ///
    /// # Errors
    /// The raw `pipe(2)` failure.
    pub fn new() -> std::io::Result<WakePipe> {
        let mut fds = [0 as std::ffi::c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: pipe(2) returned two fresh descriptors we now own.
        let (reader, writer) = unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) };
        // Both ends nonblocking: a blocking write end would stall
        // workers (Mutex held) whenever replies outpace the reactor's
        // drain and the pipe fills; a blocking read end would let
        // `drain`'s catch-up loop hang once the pipe empties.
        set_nonblocking(reader.as_raw_fd())?;
        set_nonblocking(writer.as_raw_fd())?;
        Ok(WakePipe {
            reader,
            writer: Arc::new(Waker {
                writer: Mutex::new(writer),
            }),
        })
    }

    /// The write end, shared with workers and the server handle.
    pub fn waker(&self) -> Arc<Waker> {
        Arc::clone(&self.writer)
    }

    /// The read end's descriptor, for [`Poller::register`].
    pub fn fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Swallow every pending wakeup byte. The read end is nonblocking,
    /// so the loop ends with `WouldBlock` (or a short read) once the
    /// pipe is empty — one drain per reactor iteration keeps up with
    /// any number of writers, where a single bounded read could fall
    /// behind a full pipe one iteration at a time.
    pub fn drain(&mut self) {
        let mut sink = [0u8; 4096];
        loop {
            match self.reader.read(&mut sink) {
                Ok(n) if n == sink.len() => {}
                _ => return,
            }
        }
    }
}

/// One finished reply, parked in a connection's outbox until the
/// reactor can write it in sequence order.
pub struct Reply {
    /// Complete wire bytes of the reply frame.
    pub bytes: Vec<u8>,
    /// The admission slot this reply's request holds; dropped (and the
    /// global in-flight count released) once the reply is fully
    /// written — or discarded with the connection. Carried as a boxed
    /// droppable so the reactor stays independent of the server's
    /// accounting types.
    pub admission: Option<Box<dyn Send>>,
    /// Close the connection once this reply has flushed (stream-level
    /// errors: framing is lost, nothing after this is parseable).
    pub close_after: bool,
}

impl std::fmt::Debug for Reply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reply")
            .field("bytes", &self.bytes.len())
            .field("admission", &self.admission.is_some())
            .field("close_after", &self.close_after)
            .finish()
    }
}

/// Per-connection state shared between the reactor and the workers:
/// the ordered outbox of finished replies. Everything else about a
/// connection is reactor-private.
#[derive(Debug)]
pub struct ConnShared {
    outbox: Mutex<Outbox>,
    /// Set by workers after parking a reply so the reactor can skip
    /// the outbox lock for the (vast) majority of idle connections.
    dirty: AtomicBool,
}

#[derive(Debug, Default)]
struct Outbox {
    /// The connection died; park nothing, drop replies on arrival
    /// (their admission slots release on drop).
    closed: bool,
    /// Finished replies keyed by frame sequence number, released to
    /// the wire strictly in order.
    ready: BTreeMap<u64, Reply>,
}

impl ConnShared {
    /// Fresh shared state for one accepted connection.
    pub fn new() -> Arc<ConnShared> {
        Arc::new(ConnShared {
            outbox: Mutex::new(Outbox::default()),
            dirty: AtomicBool::new(false),
        })
    }

    /// Park a finished reply for in-order delivery. Returns `false`
    /// when the connection is already gone (the reply is dropped and
    /// its admission slot released here).
    pub fn push_reply(&self, seq: u64, reply: Reply) -> bool {
        let mut box_ = self.outbox.lock().expect("outbox poisoned");
        if box_.closed {
            return false;
        }
        box_.ready.insert(seq, reply);
        drop(box_);
        self.dirty.store(true, Ordering::Release);
        true
    }

    /// Reactor side: take every reply that is next in sequence order.
    pub fn take_in_order(&self, next: &mut u64) -> Vec<Reply> {
        self.dirty.store(false, Ordering::Release);
        let mut box_ = self.outbox.lock().expect("outbox poisoned");
        let mut out = Vec::new();
        while let Some(reply) = box_.ready.remove(next) {
            out.push(reply);
            *next += 1;
        }
        out
    }

    /// Whether a worker parked a reply since the last drain.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::Acquire)
    }

    /// Mark the connection dead and drop any parked replies (releasing
    /// their admission slots).
    pub fn close(&self) {
        let mut box_ = self.outbox.lock().expect("outbox poisoned");
        box_.closed = true;
        box_.ready.clear();
    }
}

/// Incremental frame accumulation over a nonblocking byte stream: the
/// per-connection read buffer plus the parse cursor. The caller feeds
/// bytes and asks for complete frames; header validation happens
/// exactly once per frame via [`FrameHeader::parse`]
/// (crate::protocol::FrameHeader), at the earliest moment the 16
/// header bytes are present — which is when mesh-bound requests start
/// counting toward the adaptive flush and the read deadline arms.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
    /// Bytes consumed from the front of `buf` (compacted lazily so a
    /// burst of pipelined frames doesn't memmove per frame).
    consumed: usize,
}

/// Consumed-prefix size past which [`FrameAccumulator::extend`]
/// compacts even though the buffer is not fully drained. Without this
/// threshold a long-lived pipelining connection whose reads rarely
/// land exactly on a frame boundary would keep every byte it ever
/// sent resident — memory growing with total traffic, not with
/// pending data.
const COMPACT_CONSUMED_LIMIT: usize = 64 * 1024;

/// One step of [`FrameAccumulator::next_frame`].
#[derive(Debug)]
pub enum FrameStep {
    /// Not enough bytes buffered for the next header/frame.
    NeedMore,
    /// A header just validated (fires once per frame, before the
    /// payload is complete).
    Header(crate::protocol::FrameHeader),
    /// A full frame passed its CRC.
    Frame(crate::protocol::Frame),
    /// Stream-level violation: framing is lost at this byte offset.
    Violation(crate::protocol::FrameError),
}

impl FrameAccumulator {
    /// Append freshly read bytes, compacting first when the consumed
    /// prefix is the whole buffer (free) or has outgrown
    /// [`COMPACT_CONSUMED_LIMIT`] (one memmove of the pending bytes —
    /// amortised O(1) per byte, and what keeps the buffer bounded by
    /// pending data instead of total traffic).
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        } else if self.consumed > COMPACT_CONSUMED_LIMIT {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Advance the state machine one step. `header` carries the
    /// already-validated header of the in-progress frame (from a prior
    /// `Header` step); pass `None` to (re)parse one.
    pub fn step(&mut self, header: Option<&crate::protocol::FrameHeader>) -> FrameStep {
        let avail = &self.buf[self.consumed..];
        let header = match header {
            Some(h) => h,
            None => {
                if avail.len() < HEADER_LEN {
                    return FrameStep::NeedMore;
                }
                let raw: &[u8; HEADER_LEN] = avail[..HEADER_LEN].try_into().expect("16 bytes");
                return match crate::protocol::FrameHeader::parse(raw) {
                    Ok(h) => FrameStep::Header(h),
                    Err(e) => FrameStep::Violation(e),
                };
            }
        };
        let frame_len = header.frame_len();
        if avail.len() < frame_len {
            return FrameStep::NeedMore;
        }
        let payload = avail[HEADER_LEN..HEADER_LEN + header.payload_len].to_vec();
        let stored = u32::from_le_bytes(
            avail[frame_len - 4..frame_len]
                .try_into()
                .expect("4 CRC bytes"),
        );
        self.consumed += frame_len;
        if self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        match header.finish(payload, stored) {
            Ok(frame) => FrameStep::Frame(frame),
            Err(e) => FrameStep::Violation(e),
        }
    }
}

/// A reply frame mid-write: wire bytes plus the write cursor.
#[derive(Debug)]
pub struct WireReply {
    /// The parked reply being written.
    pub reply: Reply,
    /// Bytes already written.
    pub cursor: usize,
}

/// Outcome of pushing one connection's wire queue toward the socket.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteProgress {
    /// Everything queued has been written.
    Drained,
    /// The socket stopped accepting bytes (register for `POLLOUT`).
    Blocked,
    /// The peer is gone; close the connection.
    Broken,
    /// A reply with `close_after` finished writing; close now.
    CloseRequested,
}

/// Write as much of `queue` as the nonblocking stream accepts,
/// invoking `on_written` with each fully flushed reply.
pub fn write_queue(
    stream: &std::net::TcpStream,
    queue: &mut std::collections::VecDeque<WireReply>,
    mut on_written: impl FnMut(&Reply),
) -> WriteProgress {
    while let Some(front) = queue.front_mut() {
        while front.cursor < front.reply.bytes.len() {
            match (&mut (&*stream)).write(&front.reply.bytes[front.cursor..]) {
                Ok(0) => return WriteProgress::Broken,
                Ok(n) => front.cursor += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return WriteProgress::Blocked
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return WriteProgress::Broken,
            }
        }
        let done = queue.pop_front().expect("front exists");
        on_written(&done.reply);
        if done.reply.close_after {
            return WriteProgress::CloseRequested;
        }
    }
    WriteProgress::Drained
}

/// Read what the nonblocking stream offers into the accumulator, up
/// to `budget` bytes per call — the cap bounds how much one service
/// pass can inhale before the caller's write-backlog gate is
/// re-checked (the socket stays level-triggered readable, so the rest
/// is picked up next iteration). Returns `(bytes_read, saw_eof)`;
/// errors other than `WouldBlock`/`Interrupted` surface as `Err`
/// (close the connection).
pub fn read_available(
    stream: &std::net::TcpStream,
    acc: &mut FrameAccumulator,
    budget: usize,
) -> std::io::Result<(usize, bool)> {
    let mut chunk = [0u8; 64 * 1024];
    let mut total = 0usize;
    while total < budget {
        let want = chunk.len().min(budget - total);
        match (&mut (&*stream)).read(&mut chunk[..want]) {
            Ok(0) => return Ok((total, true)),
            Ok(n) => {
                acc.extend(&chunk[..n]);
                total += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok((total, false)),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok((total, false))
}

/// The earliest of two optional deadlines.
pub fn earliest(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Frame, FrameError, Opcode};

    #[test]
    fn wake_pipe_interrupts_a_poll_wait() {
        let mut pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let mut poller = Poller::new();
        let slot = poller.register(pipe.fd(), Interest::Read);
        let start = Instant::now();
        let n = poller.poll(Some(Duration::from_secs(10))).unwrap();
        assert!(n >= 1, "wakeup delivered");
        assert!(poller.readiness(slot).readable);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "woke early, not at timeout"
        );
        pipe.drain();
        t.join().unwrap();
    }

    #[test]
    fn accumulator_parses_pipelined_frames_and_flags_garbage() {
        let f1 = Frame::request(Opcode::Info, 1, Vec::new());
        let f2 = Frame::request(Opcode::ListModels, 2, Vec::new());
        let mut wire = f1.to_bytes();
        wire.extend_from_slice(&f2.to_bytes());
        wire.extend_from_slice(b"garbage that is not a frame!");

        let mut acc = FrameAccumulator::default();
        // Drip-feed to exercise NeedMore at every boundary.
        let mut frames = Vec::new();
        let mut header: Option<crate::protocol::FrameHeader> = None;
        let mut violation = None;
        for chunk in wire.chunks(7) {
            acc.extend(chunk);
            loop {
                match acc.step(header.as_ref()) {
                    FrameStep::NeedMore => break,
                    FrameStep::Header(h) => header = Some(h),
                    FrameStep::Frame(f) => {
                        header = None;
                        frames.push(f);
                    }
                    FrameStep::Violation(e) => {
                        violation = Some(e);
                        break;
                    }
                }
            }
            if violation.is_some() {
                break;
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], f1);
        assert_eq!(frames[1], f2);
        assert!(
            matches!(violation, Some(FrameError::BadMagic(_))),
            "{violation:?}"
        );
    }

    #[test]
    fn waker_never_blocks_when_the_pipe_is_full() {
        // Far more wakes than any pipe capacity: every one must return
        // immediately (the write end is nonblocking; a full pipe means
        // a wakeup is already pending). The old blocking write end
        // made this loop hang at the capacity mark.
        let mut pipe = WakePipe::new().unwrap();
        let waker = pipe.waker();
        for _ in 0..100_000 {
            waker.wake();
        }
        let mut poller = Poller::new();
        let slot = poller.register(pipe.fd(), Interest::Read);
        poller.poll(Some(Duration::ZERO)).unwrap();
        assert!(poller.readiness(slot).readable, "wakeups pending");
        // One drain must swallow the whole backlog, not 256 bytes of it.
        pipe.drain();
        let mut poller = Poller::new();
        let slot = poller.register(pipe.fd(), Interest::Read);
        poller.poll(Some(Duration::ZERO)).unwrap();
        assert!(
            !poller.readiness(slot).readable,
            "drain empties the pipe completely"
        );
    }

    #[test]
    fn accumulator_compacts_when_reads_never_land_on_frame_boundaries() {
        // Worst case for the old fully-drained-only compaction: every
        // extend leaves one byte of the next frame pending, so the
        // buffer never drains exactly and `consumed` grows forever —
        // memory proportional to total traffic. The threshold
        // compaction must keep the buffer bounded by pending data.
        let frame = Frame::request(Opcode::Info, 9, vec![0u8; 100]).to_bytes();
        let mut acc = FrameAccumulator::default();
        acc.extend(&frame[..1]);
        let rounds = 10_000usize; // ~1.2 MB of traffic uncompacted
        for _ in 0..rounds {
            acc.extend(&frame[1..]);
            acc.extend(&frame[..1]);
            let header = match acc.step(None) {
                FrameStep::Header(h) => h,
                other => panic!("expected header, got {other:?}"),
            };
            assert!(matches!(acc.step(Some(&header)), FrameStep::Frame(_)));
            assert!(matches!(acc.step(None), FrameStep::NeedMore));
            assert_eq!(acc.pending(), 1, "one byte of the next frame pending");
        }
        assert!(
            acc.buf.len() <= COMPACT_CONSUMED_LIMIT + 2 * frame.len(),
            "buffer bounded by the compaction threshold, got {} after {} bytes",
            acc.buf.len(),
            rounds * frame.len()
        );
    }

    #[test]
    fn read_available_honours_its_budget() {
        let (a, b) = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let client = std::net::TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            (client, server)
        };
        b.set_nonblocking(true).unwrap();
        (&a).write_all(&[7u8; 8 * 1024]).unwrap();
        // Give the kernel a beat to move the bytes across loopback.
        std::thread::sleep(Duration::from_millis(50));
        let mut acc = FrameAccumulator::default();
        let (n, eof) = read_available(&b, &mut acc, 1024).unwrap();
        assert_eq!(n, 1024, "stops at the budget with more bytes waiting");
        assert!(!eof);
        let (n, eof) = read_available(&b, &mut acc, usize::MAX).unwrap();
        assert_eq!(n, 7 * 1024, "the rest arrives on the next pass");
        assert!(!eof);
        assert_eq!(acc.pending(), 8 * 1024);
    }

    #[test]
    fn accumulator_rejects_corrupt_crc_and_oversize_headers() {
        let mut bytes = Frame::request(Opcode::Info, 3, vec![0u8; 32]).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut acc = FrameAccumulator::default();
        acc.extend(&bytes);
        let header = match acc.step(None) {
            FrameStep::Header(h) => h,
            other => panic!("expected header, got {other:?}"),
        };
        assert!(matches!(
            acc.step(Some(&header)),
            FrameStep::Violation(FrameError::BadCrc { .. })
        ));

        let mut bomb = Frame::request(Opcode::Info, 4, Vec::new()).to_bytes();
        bomb[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut acc = FrameAccumulator::default();
        acc.extend(&bomb);
        assert!(matches!(
            acc.step(None),
            FrameStep::Violation(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn outbox_releases_replies_in_sequence_order() {
        let shared = ConnShared::new();
        let park = |seq: u64| {
            shared.push_reply(
                seq,
                Reply {
                    bytes: vec![seq as u8],
                    admission: None,
                    close_after: false,
                },
            )
        };
        assert!(park(2));
        let mut next = 0u64;
        assert!(shared.take_in_order(&mut next).is_empty(), "gap at 0");
        assert!(park(0));
        let got = shared.take_in_order(&mut next);
        assert_eq!(got.len(), 1, "seq 1 still missing");
        assert!(park(1));
        let got = shared.take_in_order(&mut next);
        assert_eq!(got.len(), 2, "1 then the parked 2");
        assert_eq!(next, 3);
        shared.close();
        assert!(!park(3), "closed outboxes drop replies");
    }
}
