//! Typed errors for the serving layer, and their mapping onto wire
//! [`ErrorCode`]s. Every failure a connection can provoke — malformed
//! frames, corrupt payloads, missing models — surfaces as one of these
//! variants, never as a panic.

use crate::protocol::{ErrorCode, FrameError};
use qn_codec::CodecError;
use std::fmt;

/// Everything that can go wrong serving or speaking to a server.
#[derive(Debug)]
pub enum ServeError {
    /// Underlying socket/file failure.
    Io(std::io::Error),
    /// Stream-level framing violation.
    Frame(FrameError),
    /// Codec-level failure (corrupt container/model, geometry).
    Codec(CodecError),
    /// The zoo holds no model with this id.
    UnknownModel(u64),
    /// A request payload was structurally malformed.
    BadRequest(String),
    /// The server is at an admission limit and shed the request
    /// (typed `BUSY` reply; the connection stays usable and the
    /// client may retry).
    Busy(String),
    /// The peer answered with a typed error reply.
    Remote {
        /// Wire error code (0 if the peer sent an unknown code).
        code: u16,
        /// Human-readable message from the peer.
        message: String,
    },
    /// A server-side invariant failed (e.g. the batcher was torn down
    /// mid-request).
    Internal(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Frame(e) => write!(f, "frame error: {e}"),
            ServeError::Codec(e) => write!(f, "codec error: {e}"),
            ServeError::UnknownModel(id) => {
                write!(f, "no model {id:#018x} in the zoo (LOAD_MODEL it first)")
            }
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Busy(msg) => write!(f, "server busy: {msg}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e)
    }
}

impl From<CodecError> for ServeError {
    fn from(e: CodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl ServeError {
    /// The wire error code a server reply carries for this failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            ServeError::Io(_) | ServeError::Internal(_) => ErrorCode::Internal,
            ServeError::Frame(e) => e.code(),
            ServeError::Codec(CodecError::ModelMismatch { .. }) => ErrorCode::ModelMismatch,
            ServeError::Codec(_) => ErrorCode::Codec,
            ServeError::UnknownModel(_) => ErrorCode::UnknownModel,
            ServeError::BadRequest(_) => ErrorCode::BadRequest,
            ServeError::Busy(_) => ErrorCode::Busy,
            ServeError::Remote { .. } => ErrorCode::Internal, // client-side only
        }
    }

    /// Whether this is a typed `BUSY` shed from the server — the one
    /// error class where a client should back off and retry rather
    /// than treat the request as failed.
    pub fn is_busy(&self) -> bool {
        match self {
            ServeError::Busy(_) => true,
            ServeError::Remote { code, .. } => *code == ErrorCode::Busy as u16,
            _ => false,
        }
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_is_recognised_on_both_sides_of_the_wire() {
        let shed = ServeError::Busy("admission limit".into());
        assert_eq!(shed.code(), ErrorCode::Busy);
        assert!(shed.is_busy());
        assert!(shed.to_string().contains("busy"));
        let remote = ServeError::Remote {
            code: ErrorCode::Busy as u16,
            message: "server busy".into(),
        };
        assert!(remote.is_busy());
        assert!(!ServeError::BadRequest("x".into()).is_busy());
    }

    #[test]
    fn codes_map_by_failure_class() {
        assert_eq!(ServeError::UnknownModel(7).code(), ErrorCode::UnknownModel);
        assert_eq!(
            ServeError::BadRequest("x".into()).code(),
            ErrorCode::BadRequest
        );
        assert_eq!(
            ServeError::Codec(CodecError::ModelMismatch {
                container: 1,
                supplied: 2
            })
            .code(),
            ErrorCode::ModelMismatch
        );
        assert_eq!(
            ServeError::Codec(CodecError::Invalid("x".into())).code(),
            ErrorCode::Codec
        );
        assert_eq!(
            ServeError::Frame(FrameError::TooLarge(u32::MAX)).code(),
            ErrorCode::FrameTooLarge
        );
    }

    #[test]
    fn display_names_every_variant() {
        for (err, needle) in [
            (ServeError::UnknownModel(0xABC), "no model"),
            (ServeError::BadRequest("short".into()), "bad request"),
            (
                ServeError::Remote {
                    code: 17,
                    message: "gone".into(),
                },
                "server error 17",
            ),
            (ServeError::Internal("oops".into()), "internal"),
        ] {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
