//! The wire protocol: length-prefixed, versioned, CRC-checked binary
//! frames over a byte stream.
//!
//! # Frame layout (protocol version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QNF1"
//! 4       1     protocol version (1)
//! 5       1     opcode
//! 6       2     status: replies: 0 = OK, else an error code;
//!               requests: 0, or trace-context bits (see below)
//! 8       4     request id (echoed verbatim in the reply)
//! 12      4     payload length (bytes, ≤ MAX_PAYLOAD)
//! 16      …     payload
//! end     4     CRC-32 (IEEE) of header + payload
//! ```
//!
//! Requests use opcodes `0x01..=0x07`; a success reply echoes the
//! request opcode with bit 7 set (`op | 0x80`) and status 0; an error
//! reply uses opcode `0xFF` with a non-zero status code and a UTF-8
//! message payload. Stream-level violations (bad magic, oversized
//! length, CRC mismatch, unknown version) poison the framing — the
//! server answers with a typed error where possible and closes the
//! connection; request-level failures (corrupt container, unknown
//! model) keep the connection alive.
//!
//! # Request payloads
//!
//! `ENCODE` (fixed 24-byte prefix, then pixels):
//!
//! ```text
//! 0   2   tile size (1..=MAX_TILE_SIZE; larger values are rejected)
//! 2   1   quantizer bit depth
//! 3   1   flags: bit 0 per-tile scale, bit 1 inline model,
//!                bit 2 encode with the model id below (else a
//!                      PCA-spectral model is built from the image)
//! 4   2   latent dimension d (spectral model; ignored with bit 2)
//! 6   1   entropy coder: 0 rice (what pre-v2 clients send), 1
//!         rice-pos, 2 range — unknown ids are rejected typed
//! 7   1   reserved (0)
//! 8   8   model id (with bit 2)
//! 16  4   image width    20  4  image height
//! 24  …   width·height pixel values, f64 raw IEEE-754 bits
//! ```
//!
//! Pixels travel as raw `f64` bits so a remote encode sees *exactly*
//! the floats an offline `qnc` run reads from disk — the
//! byte-identical-response guarantee starts here. The `ENCODE` reply
//! payload is the finished `.qnc` file.
//!
//! `DECODE`: the payload is a `.qnc` file; the reply is an image
//! payload (`width u32, height u32, pixels f64 × w·h`). `LOAD_MODEL`:
//! the payload is a `.qnm` file; the reply is the 8-byte model id.
//! `INFO`: an empty payload returns server status JSON; a `.qnc` or
//! `.qnm` payload returns the same JSON `qnc info --json` prints.
//! `LIST_MODELS`: an empty payload; the reply enumerates the zoo as a
//! `count u32` followed by 17-byte entries (`id u64, size u64,
//! cached u8`), sorted by id — see [`ModelEntry`].
//! `STATS`: an empty payload; the reply is the server's telemetry
//! registry as single-line JSON (`uptime_secs` plus the
//! `counters`/`gauges`/`histograms` sections of
//! `qn_metrics::Registry::to_json`). Servers running with metrics
//! disabled answer a typed `BadRequest` — clients feature-detect via
//! the `metrics` field of the empty-payload `INFO` reply.
//! `TRACE`: an empty payload returns the recent-trace ring; a 9-byte
//! payload (`mode u8` — 0 recent, 1 slow — then `trace id u64`, 0 =
//! unfiltered) selects a buffer and optionally one id. The reply is
//! `qn_trace::traces_json` bytes. Servers running with tracing off
//! answer a typed `BadRequest`, feature-detected via the `tracing`
//! field of the `INFO` reply.
//!
//! # Trace context (request status bits)
//!
//! The status field was reserved-zero in requests before PR 9 —
//! replies used it for error codes, requests never carried meaning.
//! A client that wants its request traced sets
//! [`REQ_STATUS_TRACED`] (bit 0) and prefixes the payload with a
//! 9-byte trace context: `trace id u64` (non-zero, client-chosen) and
//! a flags byte (bit 0 = sampled: record the trace server-side). The
//! server strips the prefix before normal payload parsing, so every
//! operation's payload format is unchanged on the wire for untraced
//! clients — a zero status byte-for-byte matches what pre-PR-9
//! clients send. Unknown status bits and malformed contexts are
//! rejected with a typed `BadRequest` (strict-validation discipline:
//! relaxed *only* for the bits defined here).

use crate::error::ServeError;
use qn_codec::bitstream::{crc32, crc32_of_parts};
use qn_codec::EntropyCoder;
use qn_image::GrayImage;
use std::io::{Read, Write};

/// Leading magic of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"QNF1";
/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Hard limit on a frame's payload (64 MiB) — read loops reject larger
/// length fields *before* allocating.
pub const MAX_PAYLOAD: usize = 64 << 20;
/// Fixed frame-header length.
pub const HEADER_LEN: usize = 16;

/// Frame opcodes. Requests are `0x01..=0x07`; success replies set bit 7;
/// `0xFF` is the typed error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Compress an image into a `.qnc` container.
    Encode = 0x01,
    /// Decompress a `.qnc` container into pixels.
    Decode = 0x02,
    /// Add a `.qnm` model to the zoo and pre-warm its cache slot.
    LoadModel = 0x03,
    /// Describe the server, or a submitted `.qnc`/`.qnm` file, as JSON.
    Info = 0x04,
    /// Enumerate the model zoo (empty request payload; the reply is a
    /// [`ModelEntry`] list — see [`model_list_to_payload`]).
    ListModels = 0x05,
    /// Report the server's telemetry registry as JSON (empty request
    /// payload; `BadRequest` when the server runs with metrics off).
    Stats = 0x06,
    /// Fetch recent or slow request traces as JSON (optionally
    /// filtered by trace id; `BadRequest` when tracing is off).
    Trace = 0x07,
    /// Success reply to [`Opcode::Encode`].
    EncodeReply = 0x81,
    /// Success reply to [`Opcode::Decode`].
    DecodeReply = 0x82,
    /// Success reply to [`Opcode::LoadModel`].
    LoadModelReply = 0x83,
    /// Success reply to [`Opcode::Info`].
    InfoReply = 0x84,
    /// Success reply to [`Opcode::ListModels`].
    ListModelsReply = 0x85,
    /// Success reply to [`Opcode::Stats`].
    StatsReply = 0x86,
    /// Success reply to [`Opcode::Trace`].
    TraceReply = 0x87,
    /// Typed error reply (status carries the [`ErrorCode`]).
    ErrorReply = 0xFF,
}

impl Opcode {
    /// Decode a wire opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Some(match b {
            0x01 => Opcode::Encode,
            0x02 => Opcode::Decode,
            0x03 => Opcode::LoadModel,
            0x04 => Opcode::Info,
            0x05 => Opcode::ListModels,
            0x06 => Opcode::Stats,
            0x07 => Opcode::Trace,
            0x81 => Opcode::EncodeReply,
            0x82 => Opcode::DecodeReply,
            0x83 => Opcode::LoadModelReply,
            0x84 => Opcode::InfoReply,
            0x85 => Opcode::ListModelsReply,
            0x86 => Opcode::StatsReply,
            0x87 => Opcode::TraceReply,
            0xFF => Opcode::ErrorReply,
            _ => return None,
        })
    }

    /// The success-reply opcode for a request opcode.
    pub fn reply(self) -> Opcode {
        match self {
            Opcode::Encode => Opcode::EncodeReply,
            Opcode::Decode => Opcode::DecodeReply,
            Opcode::LoadModel => Opcode::LoadModelReply,
            Opcode::Info => Opcode::InfoReply,
            Opcode::ListModels => Opcode::ListModelsReply,
            Opcode::Stats => Opcode::StatsReply,
            Opcode::Trace => Opcode::TraceReply,
            other => other,
        }
    }

    /// Stable lowercase label for metric keys
    /// (`serve_requests_total{op=...}`); reply opcodes share their
    /// request's label.
    pub fn label(self) -> &'static str {
        match self {
            Opcode::Encode | Opcode::EncodeReply => "encode",
            Opcode::Decode | Opcode::DecodeReply => "decode",
            Opcode::LoadModel | Opcode::LoadModelReply => "load_model",
            Opcode::Info | Opcode::InfoReply => "info",
            Opcode::ListModels | Opcode::ListModelsReply => "list_models",
            Opcode::Stats | Opcode::StatsReply => "stats",
            Opcode::Trace | Opcode::TraceReply => "trace",
            Opcode::ErrorReply => "error",
        }
    }
}

/// Typed error codes carried in a reply frame's status field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Frame did not start with [`FRAME_MAGIC`].
    BadMagic = 1,
    /// Protocol version newer than this build.
    UnsupportedVersion = 2,
    /// Opcode byte names no known operation.
    UnknownOpcode = 3,
    /// Payload length field exceeds [`MAX_PAYLOAD`].
    FrameTooLarge = 4,
    /// Frame checksum mismatch.
    BadCrc = 5,
    /// Request payload is structurally malformed.
    BadRequest = 16,
    /// No model with the requested id in the zoo.
    UnknownModel = 17,
    /// Codec-level failure (corrupt container/model, geometry mismatch).
    Codec = 18,
    /// Container was encoded with a different model than resolved.
    ModelMismatch = 19,
    /// Server-side invariant failure.
    Internal = 20,
    /// The server is at its admission limit (global `--max-inflight`
    /// or the per-connection in-flight cap) and sheds this request
    /// instead of queueing it unboundedly. Request-level: the
    /// connection stays open and the client may retry.
    Busy = 21,
}

impl ErrorCode {
    /// Decode a wire status value.
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BadMagic,
            2 => ErrorCode::UnsupportedVersion,
            3 => ErrorCode::UnknownOpcode,
            4 => ErrorCode::FrameTooLarge,
            5 => ErrorCode::BadCrc,
            16 => ErrorCode::BadRequest,
            17 => ErrorCode::UnknownModel,
            18 => ErrorCode::Codec,
            19 => ErrorCode::ModelMismatch,
            20 => ErrorCode::Internal,
            21 => ErrorCode::Busy,
            _ => return None,
        })
    }

    /// Stable lowercase label for metric keys
    /// (`serve_errors_total{code=...}`).
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::BadMagic => "bad_magic",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownOpcode => "unknown_opcode",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::BadCrc => "bad_crc",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownModel => "unknown_model",
            ErrorCode::Codec => "codec",
            ErrorCode::ModelMismatch => "model_mismatch",
            ErrorCode::Internal => "internal",
            ErrorCode::Busy => "busy",
        }
    }
}

/// Stream-level framing failures (distinct from request-level
/// [`ServeError`]s: these poison the connection).
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream failure (including EOF mid-frame).
    Io(std::io::Error),
    /// Leading bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// Version byte newer than [`PROTOCOL_VERSION`].
    UnsupportedVersion(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    TooLarge(u32),
    /// Stored CRC disagrees with the computed one.
    BadCrc {
        /// CRC carried by the frame.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream error: {e}"),
            FrameError::BadMagic(found) => write!(f, "bad frame magic {found:02x?}"),
            FrameError::UnsupportedVersion(v) => write!(
                f,
                "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
            ),
            FrameError::TooLarge(len) => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_PAYLOAD}-byte limit"
                )
            }
            FrameError::BadCrc { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl FrameError {
    /// The wire error code a server replies with for this failure.
    pub fn code(&self) -> ErrorCode {
        match self {
            FrameError::Io(_) => ErrorCode::Internal, // never sent: the stream is gone
            FrameError::BadMagic(_) => ErrorCode::BadMagic,
            FrameError::UnsupportedVersion(_) => ErrorCode::UnsupportedVersion,
            FrameError::TooLarge(_) => ErrorCode::FrameTooLarge,
            FrameError::BadCrc { .. } => ErrorCode::BadCrc,
        }
    }
}

/// One parsed (or to-be-written) frame. The opcode stays a raw byte so
/// servers can echo typed errors for opcodes they don't recognise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Wire opcode byte (see [`Opcode`]).
    pub opcode: u8,
    /// 0 = OK; otherwise an [`ErrorCode`] (replies only).
    pub status: u16,
    /// Correlates replies with requests; echoed verbatim.
    pub request_id: u32,
    /// Operation-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A request frame.
    pub fn request(op: Opcode, request_id: u32, payload: Vec<u8>) -> Frame {
        Frame {
            opcode: op as u8,
            status: 0,
            request_id,
            payload,
        }
    }

    /// A success reply to `request_op`.
    pub fn reply(request_op: Opcode, request_id: u32, payload: Vec<u8>) -> Frame {
        Frame {
            opcode: request_op.reply() as u8,
            status: 0,
            request_id,
            payload,
        }
    }

    /// A typed error reply.
    pub fn error(request_id: u32, code: ErrorCode, message: &str) -> Frame {
        Frame {
            opcode: Opcode::ErrorReply as u8,
            status: code as u16,
            request_id,
            payload: message.as_bytes().to_vec(),
        }
    }

    /// Serialise to complete wire bytes (header + payload + CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(HEADER_LEN + self.payload.len() + 4);
        bytes.extend_from_slice(&FRAME_MAGIC);
        bytes.push(PROTOCOL_VERSION);
        bytes.push(self.opcode);
        bytes.extend_from_slice(&self.status.to_le_bytes());
        bytes.extend_from_slice(&self.request_id.to_le_bytes());
        bytes.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&self.payload);
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    /// Write the frame to a stream.
    ///
    /// # Errors
    /// `InvalidInput` when the payload exceeds [`MAX_PAYLOAD`] (a
    /// receiver would reject it anyway — failing here names the limit
    /// instead of surfacing as a broken pipe, and guards the u32
    /// length field against wrapping); otherwise IO failures.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        if self.payload.len() > MAX_PAYLOAD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds the {MAX_PAYLOAD}-byte protocol limit",
                    self.payload.len()
                ),
            ));
        }
        w.write_all(&self.to_bytes())?;
        w.flush()
    }

    /// Read one frame from a stream. Oversized length fields are
    /// rejected *before* any payload allocation.
    ///
    /// # Errors
    /// [`FrameError`] for stream-level violations; EOF (clean or
    /// mid-frame) surfaces as [`FrameError::Io`].
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, FrameError> {
        Frame::read_from_tracked(r, |_| {})
    }

    /// [`Frame::read_from`] with a progress hook: `on_header` fires
    /// with the frame's opcode byte once the fixed header has arrived
    /// and validated — the earliest moment a reader *knows* a request
    /// is in flight, and of which kind (before that, a blocked read
    /// just means an idle connection). The server's adaptive batch
    /// flush keys off this: a batch waits out its deadline only while
    /// some other connection has a *mesh-bound* request past its
    /// header.
    ///
    /// # Errors
    /// See [`Frame::read_from`]. The hook does not fire on
    /// header-level violations.
    pub fn read_from_tracked<R: Read>(
        r: &mut R,
        on_header: impl FnOnce(u8),
    ) -> Result<Frame, FrameError> {
        let mut raw = [0u8; HEADER_LEN];
        r.read_exact(&mut raw).map_err(FrameError::Io)?;
        let header = FrameHeader::parse(&raw)?;
        on_header(header.opcode);
        let mut payload = vec![0u8; header.payload_len];
        r.read_exact(&mut payload).map_err(FrameError::Io)?;
        let mut crc_bytes = [0u8; 4];
        r.read_exact(&mut crc_bytes).map_err(FrameError::Io)?;
        let stored = u32::from_le_bytes(crc_bytes);
        header.finish(payload, stored)
    }
}

/// A validated frame header — the fixed 16-byte prefix with its magic,
/// version and length checks already applied. This is the unit the
/// server's nonblocking connection state machine accumulates toward:
/// once a header parses, the frame's full wire size is known
/// ([`FrameHeader::frame_len`]), the opcode is known (so mesh-bound
/// requests can be counted in flight before their payload lands), and
/// the read deadline is armed.
#[derive(Debug, Clone, Copy)]
pub struct FrameHeader {
    /// Wire opcode byte (see [`Opcode`]).
    pub opcode: u8,
    /// Request status bits / reply error code.
    pub status: u16,
    /// Correlates replies with requests.
    pub request_id: u32,
    /// Declared payload length (validated ≤ [`MAX_PAYLOAD`]).
    pub payload_len: usize,
    /// The raw header bytes, kept for the trailing-CRC check (the CRC
    /// covers header + payload).
    pub raw: [u8; HEADER_LEN],
}

impl FrameHeader {
    /// Validate the fixed 16-byte header: magic, version, length bound.
    ///
    /// # Errors
    /// The same stream-level [`FrameError`]s `read_from` raises —
    /// blocking and nonblocking readers share one validation path.
    pub fn parse(raw: &[u8; HEADER_LEN]) -> Result<FrameHeader, FrameError> {
        if raw[..4] != FRAME_MAGIC {
            return Err(FrameError::BadMagic(raw[..4].try_into().expect("4 bytes")));
        }
        if raw[4] > PROTOCOL_VERSION || raw[4] == 0 {
            return Err(FrameError::UnsupportedVersion(raw[4]));
        }
        let len = u32::from_le_bytes(raw[12..16].try_into().expect("4 bytes"));
        if len as usize > MAX_PAYLOAD {
            return Err(FrameError::TooLarge(len));
        }
        Ok(FrameHeader {
            opcode: raw[5],
            status: u16::from_le_bytes(raw[6..8].try_into().expect("2 bytes")),
            request_id: u32::from_le_bytes(raw[8..12].try_into().expect("4 bytes")),
            payload_len: len as usize,
            raw: *raw,
        })
    }

    /// Total wire bytes of the frame this header announces
    /// (header + payload + CRC trailer).
    pub fn frame_len(&self) -> usize {
        HEADER_LEN + self.payload_len + 4
    }

    /// Whether the opcode submits tiles to the mesh batcher (drives
    /// the adaptive-flush in-flight count).
    pub fn mesh_bound(&self) -> bool {
        matches!(
            Opcode::from_u8(self.opcode),
            Some(Opcode::Encode | Opcode::Decode)
        )
    }

    /// Check the trailing CRC against header + payload and assemble the
    /// frame.
    ///
    /// # Errors
    /// [`FrameError::BadCrc`] on checksum mismatch.
    pub fn finish(&self, payload: Vec<u8>, stored_crc: u32) -> Result<Frame, FrameError> {
        let computed = crc32_of_parts(&[&self.raw, &payload]);
        if stored_crc != computed {
            return Err(FrameError::BadCrc {
                stored: stored_crc,
                computed,
            });
        }
        Ok(Frame {
            opcode: self.opcode,
            status: self.status,
            request_id: self.request_id,
            payload,
        })
    }
}

/// Request-status bit: the payload starts with a
/// [`TraceContext`] prefix. All other request-status bits stay
/// reserved-zero.
pub const REQ_STATUS_TRACED: u16 = 1 << 0;
/// Trace-context flag: record the trace server-side (unset, the id is
/// merely propagated).
pub const TRACE_FLAG_SAMPLED: u8 = 1 << 0;
/// Serialized trace-context length: `id u64` + `flags u8`.
pub const TRACE_CONTEXT_LEN: usize = 9;

/// Client-supplied trace context for one request, carried as a
/// 9-byte payload prefix flagged by [`REQ_STATUS_TRACED`] in the
/// request's status field (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Client-chosen 64-bit trace id; zero is reserved (= untraced)
    /// and rejected on the wire.
    pub id: u64,
    /// Whether the server should record (sample) the trace.
    pub sampled: bool,
}

impl TraceContext {
    /// Serialise as the wire prefix.
    pub fn to_prefix(self) -> [u8; TRACE_CONTEXT_LEN] {
        let mut p = [0u8; TRACE_CONTEXT_LEN];
        p[..8].copy_from_slice(&self.id.to_le_bytes());
        p[8] = if self.sampled { TRACE_FLAG_SAMPLED } else { 0 };
        p
    }

    /// Validate a request's status field and strip the trace-context
    /// prefix from its payload. Returns the context (if any) and the
    /// operation payload proper.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for unknown status bits, a truncated
    /// prefix, a zero trace id, or unknown context flags — the strict
    /// reserved-byte discipline, relaxed only for the bits defined
    /// here.
    pub fn strip(status: u16, payload: &[u8]) -> Result<(Option<TraceContext>, &[u8]), ServeError> {
        if status & !REQ_STATUS_TRACED != 0 {
            return Err(ServeError::BadRequest(format!(
                "unknown request status bits {:#06x}",
                status & !REQ_STATUS_TRACED
            )));
        }
        if status & REQ_STATUS_TRACED == 0 {
            return Ok((None, payload));
        }
        if payload.len() < TRACE_CONTEXT_LEN {
            return Err(ServeError::BadRequest(format!(
                "traced request needs a {TRACE_CONTEXT_LEN}-byte trace context, got {} bytes",
                payload.len()
            )));
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        if id == 0 {
            return Err(ServeError::BadRequest(
                "trace id 0 is reserved (means untraced)".into(),
            ));
        }
        let flags = payload[8];
        if flags & !TRACE_FLAG_SAMPLED != 0 {
            return Err(ServeError::BadRequest(format!(
                "unknown trace-context flags {:#04x}",
                flags & !TRACE_FLAG_SAMPLED
            )));
        }
        Ok((
            Some(TraceContext {
                id,
                sampled: flags & TRACE_FLAG_SAMPLED != 0,
            }),
            &payload[TRACE_CONTEXT_LEN..],
        ))
    }
}

/// Build a traced request frame: status bit set, payload prefixed with
/// the serialized context.
pub fn traced_request(op: Opcode, request_id: u32, ctx: TraceContext, payload: &[u8]) -> Frame {
    let mut p = Vec::with_capacity(TRACE_CONTEXT_LEN + payload.len());
    p.extend_from_slice(&ctx.to_prefix());
    p.extend_from_slice(payload);
    Frame {
        opcode: op as u8,
        status: REQ_STATUS_TRACED,
        request_id,
        payload: p,
    }
}

/// Serialise a `TRACE` request payload: which buffer to read (`slow`)
/// and an optional single-id filter.
pub fn trace_request_payload(slow: bool, id: Option<u64>) -> Vec<u8> {
    let mut p = Vec::with_capacity(9);
    p.push(u8::from(slow));
    p.extend_from_slice(&id.unwrap_or(0).to_le_bytes());
    p
}

/// Parse a `TRACE` request payload (empty = recent, unfiltered).
///
/// # Errors
/// [`ServeError::BadRequest`] for a length other than 0/9 or an
/// unknown mode byte.
pub fn parse_trace_request(payload: &[u8]) -> Result<(bool, Option<u64>), ServeError> {
    match payload {
        [] => Ok((false, None)),
        p if p.len() == 9 => {
            let slow = match p[0] {
                0 => false,
                1 => true,
                other => {
                    return Err(ServeError::BadRequest(format!(
                        "trace request mode must be 0 (recent) or 1 (slow), got {other}"
                    )))
                }
            };
            let id = u64::from_le_bytes(p[1..9].try_into().expect("8 bytes"));
            Ok((slow, (id != 0).then_some(id)))
        }
        p => Err(ServeError::BadRequest(format!(
            "trace request payload must be empty or 9 bytes, got {}",
            p.len()
        ))),
    }
}

/// Hard cap on the tile size a remote `ENCODE` may request. The
/// spectral path builds a model of dimension `tile_size²` from the
/// request alone, so an unbounded value would let one small frame
/// drive an enormous allocation (65535² ≈ 34 GB of padded tile) and
/// O(tile⁶) eigensolver work. 64 (state dimension 4096) is far above
/// any useful codec tile while keeping the worst case bounded.
pub const MAX_TILE_SIZE: u16 = 64;

/// Option flag: spend 32 bits/tile on a per-tile amplitude scale.
pub const ENC_FLAG_PER_TILE_SCALE: u8 = 1 << 0;
/// Option flag: embed the model in the container.
pub const ENC_FLAG_INLINE_MODEL: u8 = 1 << 1;
/// Option flag: encode with the request's model id (from the zoo)
/// instead of building a spectral model from the image.
pub const ENC_FLAG_USE_MODEL_ID: u8 = 1 << 2;

/// Parsed `ENCODE` request payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeRequest {
    /// Tile edge length.
    pub tile_size: u16,
    /// Quantizer bit depth.
    pub bits: u8,
    /// `ENC_FLAG_*` options.
    pub flags: u8,
    /// Spectral-model latent dimension (ignored with
    /// [`ENC_FLAG_USE_MODEL_ID`]).
    pub latent_dim: u16,
    /// Entropy coder for the latent bitstream (pre-v2 clients leave
    /// the byte zero, which is `rice` — the v1 format).
    pub entropy: EntropyCoder,
    /// Zoo model to encode with (with [`ENC_FLAG_USE_MODEL_ID`]).
    pub model_id: u64,
    /// The image to compress.
    pub image: GrayImage,
}

impl EncodeRequest {
    /// Serialise to a frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(24 + self.image.len() * 8);
        p.extend_from_slice(&self.tile_size.to_le_bytes());
        p.push(self.bits);
        p.push(self.flags);
        p.extend_from_slice(&self.latent_dim.to_le_bytes());
        p.push(self.entropy.wire_id());
        p.push(0); // reserved
        p.extend_from_slice(&self.model_id.to_le_bytes());
        p.extend_from_slice(&(self.image.width() as u32).to_le_bytes());
        p.extend_from_slice(&(self.image.height() as u32).to_le_bytes());
        for &px in self.image.pixels() {
            p.extend_from_slice(&px.to_bits().to_le_bytes());
        }
        p
    }

    /// Parse a frame payload.
    ///
    /// # Errors
    /// [`ServeError::BadRequest`] for structural malformations; the
    /// pixel count is validated against the payload length before any
    /// image allocation.
    pub fn from_payload(payload: &[u8]) -> Result<EncodeRequest, ServeError> {
        if payload.len() < 24 {
            return Err(ServeError::BadRequest(format!(
                "encode request needs a 24-byte prefix, got {} bytes",
                payload.len()
            )));
        }
        let tile_size = u16::from_le_bytes(payload[0..2].try_into().expect("2 bytes"));
        if tile_size == 0 || tile_size > MAX_TILE_SIZE {
            return Err(ServeError::BadRequest(format!(
                "tile size must be in 1..={MAX_TILE_SIZE}, got {tile_size}"
            )));
        }
        let bits = payload[2];
        let flags = payload[3];
        let known = ENC_FLAG_PER_TILE_SCALE | ENC_FLAG_INLINE_MODEL | ENC_FLAG_USE_MODEL_ID;
        if flags & !known != 0 {
            return Err(ServeError::BadRequest(format!(
                "unknown encode flags {:#04x}",
                flags & !known
            )));
        }
        let latent_dim = u16::from_le_bytes(payload[4..6].try_into().expect("2 bytes"));
        // Byte 6 was reserved-zero before bitstream v2, so pre-v2
        // clients land on `rice` and this build's rejections stay
        // typed for ids it does not implement.
        let entropy = EntropyCoder::from_wire_id(payload[6]).ok_or_else(|| {
            ServeError::BadRequest(format!(
                "entropy coder id {} names no coder this build understands",
                payload[6]
            ))
        })?;
        // The remaining reserved byte must be zero, like unknown flag
        // bits: a future revision that assigns it meaning must not be
        // silently misread by this build.
        if payload[7] != 0 {
            return Err(ServeError::BadRequest(
                "reserved encode-request bytes must be zero".into(),
            ));
        }
        let model_id = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
        let (image, rest) = read_image_payload(&payload[16..])?;
        if !rest.is_empty() {
            return Err(ServeError::BadRequest(format!(
                "{} trailing bytes after the encode request",
                rest.len()
            )));
        }
        Ok(EncodeRequest {
            tile_size,
            bits,
            flags,
            latent_dim,
            entropy,
            model_id,
            image,
        })
    }
}

/// Serialise an image as a `width u32, height u32, f64 pixels` payload
/// (the `DECODE` reply format).
pub fn image_to_payload(img: &GrayImage) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + img.len() * 8);
    p.extend_from_slice(&(img.width() as u32).to_le_bytes());
    p.extend_from_slice(&(img.height() as u32).to_le_bytes());
    for &px in img.pixels() {
        p.extend_from_slice(&px.to_bits().to_le_bytes());
    }
    p
}

/// Parse an image payload, returning any trailing bytes.
///
/// # Errors
/// [`ServeError::BadRequest`] when the dimensions are zero/inconsistent
/// with the available bytes (checked before allocating pixels).
pub fn read_image_payload(payload: &[u8]) -> Result<(GrayImage, &[u8]), ServeError> {
    if payload.len() < 8 {
        return Err(ServeError::BadRequest(
            "image payload needs width and height".into(),
        ));
    }
    let width = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let height = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
    if width == 0 || height == 0 {
        return Err(ServeError::BadRequest(format!(
            "image dimensions {width}x{height} out of range"
        )));
    }
    let need = (width as u64)
        .checked_mul(height as u64)
        .and_then(|px| px.checked_mul(8))
        .filter(|&n| n <= (payload.len() - 8) as u64)
        .ok_or_else(|| {
            ServeError::BadRequest(format!(
                "image of {width}x{height} pixels does not fit a {}-byte payload",
                payload.len()
            ))
        })? as usize;
    let pixels: Vec<f64> = payload[8..8 + need]
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
        .collect();
    let image = GrayImage::from_pixels(width, height, pixels)
        .map_err(|e| ServeError::BadRequest(format!("image payload: {e}")))?;
    Ok((image, &payload[8 + need..]))
}

/// One zoo model in a `LIST_MODELS` reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelEntry {
    /// Content-addressed model id.
    pub id: u64,
    /// Serialized `.qnm` size in bytes (on disk, or of the in-memory
    /// body for a store without a zoo directory).
    pub size_bytes: u64,
    /// Whether a parsed copy currently sits in the RAM cache.
    pub cached: bool,
}

/// Serialise a `LIST_MODELS` reply: `count u32`, then per entry
/// `id u64, size u64, cached u8`.
pub fn model_list_to_payload(entries: &[ModelEntry]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + entries.len() * 17);
    p.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        p.extend_from_slice(&e.id.to_le_bytes());
        p.extend_from_slice(&e.size_bytes.to_le_bytes());
        p.push(u8::from(e.cached));
    }
    p
}

/// Parse a `LIST_MODELS` reply payload.
///
/// # Errors
/// [`ServeError::BadRequest`] when the count disagrees with the
/// payload length (checked before allocating) or a cached flag is not
/// 0/1.
pub fn model_list_from_payload(payload: &[u8]) -> Result<Vec<ModelEntry>, ServeError> {
    if payload.len() < 4 {
        return Err(ServeError::BadRequest(
            "model list payload needs a 4-byte count".into(),
        ));
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let body = &payload[4..];
    if count.checked_mul(17) != Some(body.len()) {
        return Err(ServeError::BadRequest(format!(
            "model list declares {count} entries but carries {} body bytes",
            body.len()
        )));
    }
    body.chunks_exact(17)
        .map(|c| {
            let cached = match c[16] {
                0 => false,
                1 => true,
                other => {
                    return Err(ServeError::BadRequest(format!(
                        "model list cached flag must be 0 or 1, got {other}"
                    )))
                }
            };
            Ok(ModelEntry {
                id: u64::from_le_bytes(c[0..8].try_into().expect("8 bytes")),
                size_bytes: u64::from_le_bytes(c[8..16].try_into().expect("8 bytes")),
                cached,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_through_a_byte_stream() {
        let frame = Frame::request(Opcode::Decode, 42, vec![1, 2, 3, 4, 5]);
        let bytes = frame.to_bytes();
        let back = Frame::read_from(&mut bytes.as_slice()).unwrap();
        assert_eq!(back, frame);
        assert_eq!(Opcode::from_u8(back.opcode), Some(Opcode::Decode));
    }

    #[test]
    fn every_header_violation_is_typed() {
        let good = Frame::request(Opcode::Info, 1, Vec::new()).to_bytes();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4] = 9;
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(FrameError::UnsupportedVersion(9))
        ));

        let mut bad = good.clone();
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(FrameError::TooLarge(u32::MAX))
        ));

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        assert!(matches!(
            Frame::read_from(&mut bad.as_slice()),
            Err(FrameError::BadCrc { .. })
        ));

        for cut in 0..good.len() {
            assert!(matches!(
                Frame::read_from(&mut &good[..cut]),
                Err(FrameError::Io(_))
            ));
        }
    }

    #[test]
    fn oversized_payloads_are_refused_at_write_time() {
        // Fabricate the length without allocating 64 MiB: a Vec with a
        // huge len is UB, so just build a frame at the boundary and one
        // past it.
        let ok = Frame::request(Opcode::Info, 1, vec![0u8; 1024]);
        assert!(ok.write_to(&mut Vec::new()).is_ok());
        let too_big = Frame::request(Opcode::Info, 1, vec![0u8; MAX_PAYLOAD + 1]);
        let err = too_big.write_to(&mut std::io::sink()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("protocol limit"), "{err}");
    }

    #[test]
    fn error_frames_carry_code_and_message() {
        let e = Frame::error(7, ErrorCode::UnknownModel, "no model 0xabc");
        let back = Frame::read_from(&mut e.to_bytes().as_slice()).unwrap();
        assert_eq!(back.status, ErrorCode::UnknownModel as u16);
        assert_eq!(
            ErrorCode::from_u16(back.status),
            Some(ErrorCode::UnknownModel)
        );
        assert_eq!(back.payload, b"no model 0xabc");
        assert_eq!(Opcode::from_u8(back.opcode), Some(Opcode::ErrorReply));
    }

    #[test]
    fn encode_request_roundtrips_pixels_bit_exactly() {
        let image =
            GrayImage::from_pixels(3, 2, vec![0.0, 0.25, 1.0, 0.5, 1.0 / 3.0, 0.9]).unwrap();
        let req = EncodeRequest {
            tile_size: 4,
            bits: 8,
            flags: ENC_FLAG_INLINE_MODEL,
            latent_dim: 8,
            entropy: EntropyCoder::RicePos,
            model_id: 0,
            image,
        };
        let back = EncodeRequest::from_payload(&req.to_payload()).unwrap();
        assert_eq!(back, req);
        for (a, b) in back.image.pixels().iter().zip(req.image.pixels()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn malformed_request_payloads_fail_typed_without_allocating() {
        assert!(EncodeRequest::from_payload(&[0u8; 10]).is_err());
        // Pixel count inconsistent with the payload length: a crafted
        // 2^31-pixel header must be rejected before allocation.
        let mut p = vec![0u8; 24];
        p[0..2].copy_from_slice(&4u16.to_le_bytes());
        p[2] = 8;
        p[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes());
        p[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(
            EncodeRequest::from_payload(&p),
            Err(ServeError::BadRequest(_))
        ));
        // Tile sizes outside 1..=MAX_TILE_SIZE are rejected before the
        // spectral path can turn them into a tile_size² model.
        for bad_tile in [0u16, MAX_TILE_SIZE + 1, u16::MAX] {
            let mut p = vec![0u8; 32];
            p[0..2].copy_from_slice(&bad_tile.to_le_bytes());
            p[2] = 8;
            p[16..20].copy_from_slice(&1u32.to_le_bytes());
            p[20..24].copy_from_slice(&1u32.to_le_bytes());
            assert!(
                matches!(
                    EncodeRequest::from_payload(&p),
                    Err(ServeError::BadRequest(_))
                ),
                "tile size {bad_tile} must be rejected"
            );
        }
        // Unknown entropy-coder ids are rejected typed (byte 6 was
        // reserved-zero before v2, so 0 still means rice).
        let mut ok = vec![0u8; 32];
        ok[0..2].copy_from_slice(&4u16.to_le_bytes());
        ok[2] = 8;
        ok[16..20].copy_from_slice(&1u32.to_le_bytes());
        ok[20..24].copy_from_slice(&1u32.to_le_bytes());
        assert_eq!(
            EncodeRequest::from_payload(&ok).unwrap().entropy,
            EntropyCoder::Rice
        );
        for (byte, value) in [(6usize, 3u8), (6, 0xFF), (7, 1)] {
            let mut bad = ok.clone();
            bad[byte] = value;
            assert!(
                matches!(
                    EncodeRequest::from_payload(&bad),
                    Err(ServeError::BadRequest(_))
                ),
                "byte {byte} = {value} must be rejected"
            );
        }
        // Unknown flags are rejected (reserved for future versions).
        let img = GrayImage::from_pixels(1, 1, vec![0.5]).unwrap();
        let mut req = EncodeRequest {
            tile_size: 4,
            bits: 8,
            flags: 0x80,
            latent_dim: 8,
            entropy: EntropyCoder::Rice,
            model_id: 0,
            image: img,
        };
        let payload = {
            req.flags = 0x80;
            req.to_payload()
        };
        assert!(matches!(
            EncodeRequest::from_payload(&payload),
            Err(ServeError::BadRequest(_))
        ));
    }

    #[test]
    fn model_lists_roundtrip_and_reject_malformed_payloads() {
        let entries = [
            ModelEntry {
                id: 0x0123_4567_89ab_cdef,
                size_bytes: 4096,
                cached: true,
            },
            ModelEntry {
                id: u64::MAX,
                size_bytes: 0,
                cached: false,
            },
        ];
        let p = model_list_to_payload(&entries);
        assert_eq!(p.len(), 4 + 2 * 17);
        assert_eq!(model_list_from_payload(&p).unwrap(), entries);
        assert_eq!(
            model_list_from_payload(&model_list_to_payload(&[])).unwrap(),
            vec![]
        );
        // Truncated, count-mismatched and flag-corrupted payloads fail
        // typed.
        assert!(model_list_from_payload(&p[..3]).is_err());
        assert!(model_list_from_payload(&p[..p.len() - 1]).is_err());
        let mut huge = p.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(model_list_from_payload(&huge).is_err());
        let mut bad_flag = p;
        let last = bad_flag.len() - 1;
        bad_flag[last] = 7;
        assert!(model_list_from_payload(&bad_flag).is_err());
    }

    #[test]
    fn list_models_opcode_has_a_reply() {
        assert_eq!(Opcode::from_u8(0x05), Some(Opcode::ListModels));
        assert_eq!(Opcode::from_u8(0x85), Some(Opcode::ListModelsReply));
        assert_eq!(Opcode::ListModels.reply(), Opcode::ListModelsReply);
    }

    #[test]
    fn stats_opcode_has_a_reply_and_stable_labels() {
        assert_eq!(Opcode::from_u8(0x06), Some(Opcode::Stats));
        assert_eq!(Opcode::from_u8(0x86), Some(Opcode::StatsReply));
        assert_eq!(Opcode::Stats.reply(), Opcode::StatsReply);
        // Metric labels are wire-adjacent: every request opcode and its
        // reply share one stable label, and error codes label uniquely.
        for op in [
            Opcode::Encode,
            Opcode::Decode,
            Opcode::LoadModel,
            Opcode::Info,
            Opcode::ListModels,
            Opcode::Stats,
        ] {
            assert_eq!(op.label(), op.reply().label());
        }
        let mut labels: Vec<&str> = (1..=21)
            .filter_map(ErrorCode::from_u16)
            .map(ErrorCode::label)
            .collect();
        assert_eq!(labels.len(), 11);
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 11, "error-code labels must be unique");
    }

    #[test]
    fn trace_opcode_has_a_reply_and_label() {
        assert_eq!(Opcode::from_u8(0x07), Some(Opcode::Trace));
        assert_eq!(Opcode::from_u8(0x87), Some(Opcode::TraceReply));
        assert_eq!(Opcode::Trace.reply(), Opcode::TraceReply);
        assert_eq!(Opcode::Trace.label(), "trace");
        assert_eq!(Opcode::TraceReply.label(), "trace");
    }

    #[test]
    fn trace_context_strips_cleanly_and_rejects_malformed_prefixes() {
        // Untraced requests (status 0) pass through untouched — the
        // pre-PR-9 wire shape.
        let (ctx, rest) = TraceContext::strip(0, b"payload").unwrap();
        assert!(ctx.is_none());
        assert_eq!(rest, b"payload");

        // A traced request strips its 9-byte prefix.
        let ctx = TraceContext {
            id: 0xdead_beef_cafe_f00d,
            sampled: true,
        };
        let frame = traced_request(Opcode::Encode, 5, ctx, b"body");
        assert_eq!(frame.status, REQ_STATUS_TRACED);
        let (got, rest) = TraceContext::strip(frame.status, &frame.payload).unwrap();
        assert_eq!(got, Some(ctx));
        assert_eq!(rest, b"body");
        // ...and survives the byte stream like any other frame.
        let back = Frame::read_from(&mut frame.to_bytes().as_slice()).unwrap();
        assert_eq!(back, frame);

        // Propagate-only context: flags byte zero.
        let quiet = TraceContext {
            id: 7,
            sampled: false,
        };
        let (got, _) = TraceContext::strip(REQ_STATUS_TRACED, &quiet.to_prefix()).unwrap();
        assert_eq!(got, Some(quiet));

        // Strict validation for everything else: unknown status bits,
        // truncated prefix, the reserved zero id, unknown flags.
        assert!(TraceContext::strip(0x0002, b"").is_err());
        assert!(TraceContext::strip(REQ_STATUS_TRACED, &[1u8; 8]).is_err());
        let mut zero_id = ctx.to_prefix();
        zero_id[..8].copy_from_slice(&0u64.to_le_bytes());
        assert!(TraceContext::strip(REQ_STATUS_TRACED, &zero_id).is_err());
        let mut bad_flags = ctx.to_prefix();
        bad_flags[8] = 0x82;
        assert!(TraceContext::strip(REQ_STATUS_TRACED, &bad_flags).is_err());
    }

    #[test]
    fn trace_request_payloads_roundtrip_and_reject_malformed() {
        assert_eq!(parse_trace_request(&[]).unwrap(), (false, None));
        for (slow, id) in [
            (false, None),
            (true, None),
            (false, Some(42)),
            (true, Some(7)),
        ] {
            let p = trace_request_payload(slow, id);
            assert_eq!(p.len(), 9);
            assert_eq!(parse_trace_request(&p).unwrap(), (slow, id));
        }
        assert!(parse_trace_request(&[2u8; 9]).is_err(), "unknown mode");
        assert!(parse_trace_request(&[0u8; 5]).is_err(), "bad length");
        assert!(parse_trace_request(&[0u8; 10]).is_err(), "bad length");
    }

    #[test]
    fn image_payload_rejects_zero_dims_and_truncation() {
        let img = GrayImage::from_pixels(2, 2, vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let p = image_to_payload(&img);
        let (back, rest) = read_image_payload(&p).unwrap();
        assert_eq!(back, img);
        assert!(rest.is_empty());
        assert!(read_image_payload(&p[..11]).is_err());
        let mut zero = p.clone();
        zero[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(read_image_payload(&zero).is_err());
    }
}
