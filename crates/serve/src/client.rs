//! Blocking client for the serve protocol — the transport behind
//! `qnc remote` and the integration/robustness suites.

use crate::error::{Result, ServeError};
use crate::protocol::{
    model_list_from_payload, read_image_payload, trace_request_payload, traced_request,
    EncodeRequest, Frame, ModelEntry, Opcode, TraceContext, ENC_FLAG_INLINE_MODEL,
    ENC_FLAG_PER_TILE_SCALE, ENC_FLAG_USE_MODEL_ID,
};
use qn_codec::CodecOptions;
use qn_image::GrayImage;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to a `qn-serve` instance. Requests are synchronous:
/// each call writes one frame and blocks for its reply.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u32,
}

impl Client {
    /// Connect to a server.
    ///
    /// # Errors
    /// Connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream, next_id: 1 })
    }

    /// Raw access to the underlying stream, for suites that need to
    /// put hand-crafted (malformed) frames on a live connection.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// One request/reply exchange; typed server errors surface as
    /// [`ServeError::Remote`].
    ///
    /// # Errors
    /// Frame/IO errors and remote error replies.
    pub fn roundtrip(&mut self, op: Opcode, payload: Vec<u8>) -> Result<Frame> {
        self.exchange(op, None, payload)
    }

    /// [`Client::roundtrip`] with a trace context riding the request
    /// (see the protocol docs on `REQ_STATUS_TRACED`): the server
    /// records a span trace for this exact request under `ctx.id`,
    /// retrievable afterwards via [`Client::trace`]. The reply bytes
    /// are identical to an untraced exchange.
    ///
    /// # Errors
    /// Frame/IO errors and remote error replies.
    pub fn roundtrip_traced(
        &mut self,
        op: Opcode,
        ctx: TraceContext,
        payload: Vec<u8>,
    ) -> Result<Frame> {
        self.exchange(op, Some(ctx), payload)
    }

    fn exchange(
        &mut self,
        op: Opcode,
        ctx: Option<TraceContext>,
        payload: Vec<u8>,
    ) -> Result<Frame> {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let frame = match ctx {
            Some(ctx) => traced_request(op, id, ctx, &payload),
            None => Frame::request(op, id, payload),
        };
        frame.write_to(&mut self.stream)?;
        let reply = Frame::read_from(&mut self.stream)?;
        // Status first: stream-level server errors carry request id 0
        // (the offending frame's id may not have been parseable), and
        // their diagnostic beats a correlation complaint.
        if reply.status != 0 {
            return Err(ServeError::Remote {
                code: reply.status,
                message: String::from_utf8_lossy(&reply.payload).into_owned(),
            });
        }
        if reply.request_id != id {
            return Err(ServeError::Internal(format!(
                "reply correlates to request {} instead of {id}",
                reply.request_id
            )));
        }
        if reply.opcode != op.reply() as u8 {
            return Err(ServeError::Internal(format!(
                "reply opcode {:#04x} does not answer request {:#04x}",
                reply.opcode, op as u8
            )));
        }
        Ok(reply)
    }

    /// Compress an image remotely; returns the `.qnc` bytes
    /// (byte-identical to an offline encode with the same model and
    /// options).
    ///
    /// # Errors
    /// Transport and remote errors.
    pub fn encode(&mut self, req: &EncodeRequest) -> Result<Vec<u8>> {
        Ok(self.roundtrip(Opcode::Encode, req.to_payload())?.payload)
    }

    /// [`Client::encode`] with a trace context riding the request; the
    /// returned `.qnc` bytes are identical to an untraced encode.
    ///
    /// # Errors
    /// Transport and remote errors.
    pub fn encode_traced(&mut self, req: &EncodeRequest, ctx: TraceContext) -> Result<Vec<u8>> {
        Ok(self
            .roundtrip_traced(Opcode::Encode, ctx, req.to_payload())?
            .payload)
    }

    /// Decompress `.qnc` bytes remotely (inline model, or a model the
    /// server's zoo knows).
    ///
    /// # Errors
    /// Transport and remote errors; malformed reply payloads.
    pub fn decode(&mut self, container: &[u8]) -> Result<GrayImage> {
        let reply = self.roundtrip(Opcode::Decode, container.to_vec())?;
        image_from_reply(&reply)
    }

    /// [`Client::decode`] with a trace context riding the request; the
    /// returned pixels are identical to an untraced decode.
    ///
    /// # Errors
    /// Transport and remote errors; malformed reply payloads.
    pub fn decode_traced(&mut self, container: &[u8], ctx: TraceContext) -> Result<GrayImage> {
        let reply = self.roundtrip_traced(Opcode::Decode, ctx, container.to_vec())?;
        image_from_reply(&reply)
    }

    /// Add a `.qnm` model to the server's zoo; returns its id.
    ///
    /// # Errors
    /// Transport and remote errors; malformed reply payloads.
    pub fn load_model(&mut self, model: &[u8]) -> Result<u64> {
        let reply = self.roundtrip(Opcode::LoadModel, model.to_vec())?;
        let bytes: [u8; 8] = reply.payload.as_slice().try_into().map_err(|_| {
            ServeError::Internal(format!(
                "model-id reply holds {} bytes, expected 8",
                reply.payload.len()
            ))
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Enumerate the server's model zoo (id, serialized size, RAM
    /// residency), sorted by id.
    ///
    /// # Errors
    /// Transport and remote errors; malformed reply payloads.
    pub fn list_models(&mut self) -> Result<Vec<ModelEntry>> {
        let reply = self.roundtrip(Opcode::ListModels, Vec::new())?;
        model_list_from_payload(&reply.payload)
    }

    /// Server status JSON (no payload) or file info JSON (a `.qnc` /
    /// `.qnm` payload) — the same JSON `qnc info --json` prints.
    ///
    /// # Errors
    /// Transport and remote errors.
    pub fn info(&mut self, file: Option<&[u8]>) -> Result<String> {
        let reply = self.roundtrip(Opcode::Info, file.map_or_else(Vec::new, <[u8]>::to_vec))?;
        String::from_utf8(reply.payload)
            .map_err(|_| ServeError::Internal("info reply is not UTF-8".into()))
    }

    /// The server's telemetry snapshot as single-line JSON (counters,
    /// gauges, histogram percentiles, uptime). Servers running with
    /// metrics disabled answer a typed `BadRequest`; feature-detect via
    /// the `metrics` field of [`Client::info`].
    ///
    /// # Errors
    /// Transport and remote errors.
    pub fn stats(&mut self) -> Result<String> {
        let reply = self.roundtrip(Opcode::Stats, Vec::new())?;
        String::from_utf8(reply.payload)
            .map_err(|_| ServeError::Internal("stats reply is not UTF-8".into()))
    }

    /// Captured span traces as single-line JSON (parse with
    /// [`qn_trace::parse_traces`]): the recent ring, or the always-keep
    /// slow buffer with `slow`, optionally filtered to one trace id.
    /// Servers running with tracing disabled answer a typed
    /// `BadRequest`; feature-detect via the `tracing` field of
    /// [`Client::info`].
    ///
    /// # Errors
    /// Transport and remote errors.
    pub fn trace(&mut self, slow: bool, id: Option<u64>) -> Result<String> {
        let reply = self.roundtrip(Opcode::Trace, trace_request_payload(slow, id))?;
        String::from_utf8(reply.payload)
            .map_err(|_| ServeError::Internal("trace reply is not UTF-8".into()))
    }
}

/// The decoded image carried by a `DECODE` reply frame.
fn image_from_reply(reply: &Frame) -> Result<GrayImage> {
    let (img, rest) = read_image_payload(&reply.payload)?;
    if !rest.is_empty() {
        return Err(ServeError::Internal(format!(
            "{} trailing bytes after the decode reply image",
            rest.len()
        )));
    }
    Ok(img)
}

/// Build the `ENCODE` request matching an offline
/// `Codec::encode_image(img, opts)` call with a spectral model
/// distilled from the image (the `qnc compress` default).
///
/// Out-of-range `tile_size`/`latent_dim` values saturate to `u16::MAX`
/// rather than silently wrapping, so the server rejects them with a
/// typed error instead of encoding with parameters the caller never
/// asked for.
pub fn spectral_encode_request(
    img: &GrayImage,
    opts: &CodecOptions,
    latent_dim: usize,
) -> EncodeRequest {
    EncodeRequest {
        tile_size: saturate_u16(opts.tile_size),
        bits: opts.bits,
        flags: option_flags(opts),
        latent_dim: saturate_u16(latent_dim),
        entropy: opts.entropy,
        model_id: 0,
        image: img.clone(),
    }
}

/// Build the `ENCODE` request matching an offline encode with a model
/// the server's zoo already holds (see [`Client::load_model`]).
pub fn model_encode_request(img: &GrayImage, opts: &CodecOptions, model_id: u64) -> EncodeRequest {
    EncodeRequest {
        tile_size: saturate_u16(opts.tile_size),
        bits: opts.bits,
        flags: option_flags(opts) | ENC_FLAG_USE_MODEL_ID,
        latent_dim: 0,
        entropy: opts.entropy,
        model_id,
        image: img.clone(),
    }
}

fn saturate_u16(v: usize) -> u16 {
    u16::try_from(v).unwrap_or(u16::MAX)
}

fn option_flags(opts: &CodecOptions) -> u8 {
    let mut flags = 0u8;
    if opts.per_tile_scale {
        flags |= ENC_FLAG_PER_TILE_SCALE;
    }
    if opts.inline_model {
        flags |= ENC_FLAG_INLINE_MODEL;
    }
    flags
}
