//! The server's telemetry surface: every metric the serving stack
//! records, registered once in a single [`Registry`] and exposed
//! through the `STATS` RPC, `qnc serve --metrics-dump-secs`, and
//! `qnc remote stats`.
//!
//! # Metric catalogue
//!
//! | metric | type | labels |
//! |---|---|---|
//! | `serve_requests_total` | counter | `op` = `encode`/`decode`/`load_model`/`info`/`list_models`/`stats`/`trace`/`unknown` |
//! | `serve_errors_total` | counter | `code` = [`ErrorCode::label`] |
//! | `serve_request_latency_ns` | histogram | `op` (whole request: frame fully read → reply written) |
//! | `serve_frame_bytes_in_total` / `serve_frame_bytes_out_total` | counter | — |
//! | `serve_connections_total` | counter | — |
//! | `serve_open_connections` | gauge | — |
//! | `serve_inflight_requests` | gauge | mirror of the adaptive-flush in-flight count |
//! | `serve_read_deadline_reaps_total` | counter | — |
//! | `serve_busy_total` | counter | — (requests shed with a typed `BUSY` reply by the admission limits) |
//! | `codec_stage_ns` | histogram | `op`+`stage`: encode `spectral`/`prepare`/`mesh`/`quantize`/`entropy`; decode `parse`/`prepare`/`mesh`/`stitch` |
//! | `codec_coded_bytes_total` / `codec_decoded_bytes_total` | counter | `coder` = `rice`/`rice-pos`/`range` |
//! | `batch_flush_tiles` | histogram | — (tiles per executed batch) |
//! | `batch_flushes_total` | counter | `cause` = `full`/`deadline`/`eager`/`drain` |
//! | `zoo_hits_total` / `zoo_misses_total` / `zoo_inserts_total` | counter | — |
//! | `zoo_cached_models` | gauge | — |
//! | `gate_table_cache_hits` / `gate_table_cache_misses` / `gate_table_cache_entries` | gauge | — (process-wide [`qn_backend::table_cache_stats`], synced at exposition) |
//!
//! Hot-path handles (per-opcode counters/histograms, per-coder byte
//! counters) are pre-resolved into arrays at construction, so request
//! handling never touches the registry mutex. Error counters resolve
//! through the registry on demand — errors are cold.
//!
//! Determinism: counters and gauges are exact (the integration suite
//! asserts request counts under concurrency); durations are wall-clock
//! and never asserted.

use crate::protocol::{ErrorCode, Opcode};
use crate::store::StoreMetrics;
use qn_backend::BatcherMetrics;
use qn_codec::{DecodeTimings, EncodeTimings, EntropyCoder};
use qn_metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;
use std::time::Instant;

/// The request opcodes, in wire order — the index into the per-opcode
/// metric arrays.
pub const REQUEST_OPS: [Opcode; 7] = [
    Opcode::Encode,
    Opcode::Decode,
    Opcode::LoadModel,
    Opcode::Info,
    Opcode::ListModels,
    Opcode::Stats,
    Opcode::Trace,
];

/// All metric handles a running server updates, plus the registry that
/// exposes them. Built once per server; shared behind an `Arc`.
#[derive(Debug)]
pub struct ServeMetrics {
    registry: Registry,
    started: Instant,
    requests: [Arc<Counter>; 7],
    requests_unknown: Arc<Counter>,
    latency: [Arc<Histogram>; 7],
    bytes_in: Arc<Counter>,
    bytes_out: Arc<Counter>,
    connections: Arc<Counter>,
    open_connections: Arc<Gauge>,
    inflight: Arc<Gauge>,
    reaps: Arc<Counter>,
    busy: Arc<Counter>,
    enc_stage: [Arc<Histogram>; 5],
    dec_stage: [Arc<Histogram>; 4],
    coded_bytes: [Arc<Counter>; 3],
    decoded_bytes: [Arc<Counter>; 3],
    batcher: BatcherMetrics,
    store: StoreMetrics,
    /// Point-in-time mirrors of the process-wide gate-table cache
    /// counters ([`qn_backend::table_cache_stats`]), synced on every
    /// exposition so they sit next to the zoo hit/miss series.
    table_hits: Arc<Gauge>,
    table_misses: Arc<Gauge>,
    table_entries: Arc<Gauge>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        ServeMetrics::new()
    }
}

impl ServeMetrics {
    /// Register the full serving catalogue in a fresh registry.
    pub fn new() -> ServeMetrics {
        let registry = Registry::new();
        let req = |op: Opcode| registry.counter_with("serve_requests_total", &[("op", op.label())]);
        let lat =
            |op: Opcode| registry.histogram_with("serve_request_latency_ns", &[("op", op.label())]);
        let enc = |stage: &str| {
            registry.histogram_with("codec_stage_ns", &[("op", "encode"), ("stage", stage)])
        };
        let dec = |stage: &str| {
            registry.histogram_with("codec_stage_ns", &[("op", "decode"), ("stage", stage)])
        };
        let per_coder = |name: &str| {
            EntropyCoder::ALL.map(|c| {
                let label = c.to_string();
                registry.counter_with(name, &[("coder", &label)])
            })
        };
        let batcher = BatcherMetrics::new(&registry);
        let store = StoreMetrics::new(&registry);
        ServeMetrics {
            started: Instant::now(),
            requests: REQUEST_OPS.map(req),
            requests_unknown: registry.counter_with("serve_requests_total", &[("op", "unknown")]),
            latency: REQUEST_OPS.map(lat),
            bytes_in: registry.counter("serve_frame_bytes_in_total"),
            bytes_out: registry.counter("serve_frame_bytes_out_total"),
            connections: registry.counter("serve_connections_total"),
            open_connections: registry.gauge("serve_open_connections"),
            inflight: registry.gauge("serve_inflight_requests"),
            reaps: registry.counter("serve_read_deadline_reaps_total"),
            busy: registry.counter("serve_busy_total"),
            enc_stage: ["spectral", "prepare", "mesh", "quantize", "entropy"].map(enc),
            dec_stage: ["parse", "prepare", "mesh", "stitch"].map(dec),
            coded_bytes: per_coder("codec_coded_bytes_total"),
            decoded_bytes: per_coder("codec_decoded_bytes_total"),
            batcher,
            store,
            table_hits: registry.gauge("gate_table_cache_hits"),
            table_misses: registry.gauge("gate_table_cache_misses"),
            table_entries: registry.gauge("gate_table_cache_entries"),
            registry,
        }
    }

    /// The registry backing every handle (for exposition).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Handles for the shared [`qn_backend::MeshBatcher`].
    pub fn batcher_metrics(&self) -> BatcherMetrics {
        self.batcher.clone()
    }

    /// Handles for the [`crate::store::ModelStore`].
    pub fn store_metrics(&self) -> StoreMetrics {
        self.store.clone()
    }

    /// Seconds since these metrics (the server) came up.
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    fn op_index(op: Opcode) -> Option<usize> {
        REQUEST_OPS.iter().position(|&o| o == op)
    }

    /// Count one request of `op` (`None` = unrecognised opcode byte).
    pub fn record_request(&self, op: Option<Opcode>) {
        match op.and_then(Self::op_index) {
            Some(i) => self.requests[i].inc(),
            None => self.requests_unknown.inc(),
        }
    }

    /// Count one typed error reply.
    pub fn record_error(&self, code: ErrorCode) {
        // Cold path: registry lookup (idempotent) instead of eleven
        // pre-resolved handles.
        self.registry
            .counter_with("serve_errors_total", &[("code", code.label())])
            .inc();
    }

    /// Record a whole-request latency (frame fully read → reply
    /// written; excludes the peer's own frame-delivery time).
    pub fn record_latency(&self, op: Option<Opcode>, ns: u64) {
        if let Some(i) = op.and_then(Self::op_index) {
            self.latency[i].observe(ns);
        }
    }

    /// Count a fully received request frame's bytes on the wire.
    pub fn record_frame_in(&self, bytes: u64) {
        self.bytes_in.add(bytes);
    }

    /// Count a written reply frame's bytes on the wire.
    pub fn record_frame_out(&self, bytes: u64) {
        self.bytes_out.add(bytes);
    }

    /// A connection was accepted.
    pub fn connection_opened(&self) {
        self.connections.inc();
        self.open_connections.add(1);
    }

    /// A connection ended (any reason).
    pub fn connection_closed(&self) {
        self.open_connections.sub(1);
    }

    /// A connection was reaped by the frame read deadline.
    pub fn record_reap(&self) {
        self.reaps.inc();
    }

    /// A request was shed with a typed `BUSY` reply (global admission
    /// limit or per-connection in-flight cap).
    pub fn record_busy(&self) {
        self.busy.inc();
    }

    /// The mirror of the adaptive-flush in-flight count. The atomic in
    /// the server remains the source of truth for flush decisions; this
    /// gauge only makes it observable.
    pub fn inflight(&self) -> &Gauge {
        &self.inflight
    }

    /// Record the spectral-fit stage (server-side model distillation).
    pub fn record_spectral_ns(&self, ns: u64) {
        self.enc_stage[0].observe(ns);
    }

    /// Record an encode's prepare/mesh/quantize/entropy stages.
    pub fn record_encode_timings(&self, t: &EncodeTimings) {
        self.enc_stage[1].observe(t.prepare_ns);
        self.enc_stage[2].observe(t.mesh_ns);
        self.enc_stage[3].observe(t.quantize_ns);
        self.enc_stage[4].observe(t.entropy_ns);
    }

    /// Record a decode's parse/prepare/mesh/stitch stages.
    pub fn record_decode_timings(&self, t: &DecodeTimings) {
        self.dec_stage[0].observe(t.parse_ns);
        self.dec_stage[1].observe(t.prepare_ns);
        self.dec_stage[2].observe(t.mesh_ns);
        self.dec_stage[3].observe(t.stitch_ns);
    }

    /// Count container bytes produced by an encode, per entropy coder.
    pub fn record_coded_bytes(&self, coder: EntropyCoder, bytes: u64) {
        self.coded_bytes[coder.wire_id() as usize].add(bytes);
    }

    /// Count container bytes consumed by a decode, per entropy coder.
    pub fn record_decoded_bytes(&self, coder: EntropyCoder, bytes: u64) {
        self.decoded_bytes[coder.wire_id() as usize].add(bytes);
    }

    /// Mirror explicit gate-table cache readings into the registry's
    /// gauges. Split from [`ServeMetrics::sync_gate_table_cache`] so
    /// tests can pin exposition bytes without depending on the
    /// process-wide cache state.
    pub fn set_gate_table_stats(&self, hits: u64, misses: u64, entries: u64) {
        self.table_hits.set(hits as i64);
        self.table_misses.set(misses as i64);
        self.table_entries.set(entries as i64);
    }

    /// Refresh the gate-table cache gauges from the live process-wide
    /// counters. Called on every exposition — the cache has no
    /// registry hooks of its own (it predates `qn-metrics`), so its
    /// counters are sampled rather than streamed.
    pub fn sync_gate_table_cache(&self) {
        let s = qn_backend::table_cache_stats();
        self.set_gate_table_stats(s.hits, s.misses, s.entries as u64);
    }

    /// The `STATS` reply payload: `uptime_secs` spliced ahead of the
    /// registry's byte-stable `counters`/`gauges`/`histograms`
    /// sections, single line.
    pub fn stats_json(&self) -> String {
        self.sync_gate_table_cache();
        let registry_json = self.registry.to_json();
        format!(
            "{{\"uptime_secs\":{},{}",
            self.uptime_secs(),
            &registry_json[1..]
        )
    }

    /// The registry as Prometheus-style text, with the gate-table
    /// cache gauges freshly synced.
    pub fn prometheus(&self) -> String {
        self.sync_gate_table_cache();
        self.registry.to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_opcode_routes_to_its_own_counter() {
        let m = ServeMetrics::new();
        for op in REQUEST_OPS {
            m.record_request(Some(op));
        }
        m.record_request(Some(Opcode::Encode));
        m.record_request(None);
        let json = m.registry().to_json();
        assert!(
            json.contains("\"serve_requests_total{op=encode}\":2"),
            "{json}"
        );
        for label in [
            "decode",
            "load_model",
            "info",
            "list_models",
            "stats",
            "trace",
        ] {
            assert!(
                json.contains(&format!("\"serve_requests_total{{op={label}}}\":1")),
                "{json}"
            );
        }
        assert!(
            json.contains("\"serve_requests_total{op=unknown}\":1"),
            "{json}"
        );
        // Reply opcodes never have their own series.
        m.record_request(Some(Opcode::EncodeReply));
        assert!(
            m.registry()
                .to_json()
                .contains("\"serve_requests_total{op=unknown}\":2"),
            "a reply opcode arriving as a request counts as unknown"
        );
    }

    #[test]
    fn stage_and_coder_metrics_land_under_stable_keys() {
        let m = ServeMetrics::new();
        m.record_spectral_ns(100);
        m.record_encode_timings(&EncodeTimings {
            prepare_ns: 1,
            mesh_ns: 2,
            quantize_ns: 3,
            entropy_ns: 4,
        });
        m.record_decode_timings(&DecodeTimings {
            parse_ns: 5,
            prepare_ns: 6,
            mesh_ns: 7,
            stitch_ns: 8,
        });
        m.record_coded_bytes(EntropyCoder::Range, 1000);
        m.record_decoded_bytes(EntropyCoder::Rice, 500);
        let json = m.registry().to_json();
        for key in [
            "codec_stage_ns{op=encode,stage=spectral}",
            "codec_stage_ns{op=encode,stage=mesh}",
            "codec_stage_ns{op=decode,stage=parse}",
            "codec_stage_ns{op=decode,stage=stitch}",
        ] {
            assert!(
                json.contains(&format!("\"{key}\":{{\"count\":1")),
                "{key}: {json}"
            );
        }
        assert!(
            json.contains("\"codec_coded_bytes_total{coder=range}\":1000"),
            "{json}"
        );
        assert!(
            json.contains("\"codec_decoded_bytes_total{coder=rice}\":500"),
            "{json}"
        );
    }

    #[test]
    fn stats_json_is_one_line_and_leads_with_uptime() {
        let m = ServeMetrics::new();
        m.record_request(Some(Opcode::Info));
        let json = m.stats_json();
        assert!(json.starts_with("{\"uptime_secs\":"), "{json}");
        assert!(json.ends_with('}'), "{json}");
        assert!(!json.contains('\n'));
        assert!(json.contains("\"counters\":{"), "{json}");
        assert!(json.contains("\"gauges\":{"), "{json}");
        assert!(json.contains("\"histograms\":{"), "{json}");
    }

    #[test]
    fn gate_table_gauges_sync_on_exposition() {
        let m = ServeMetrics::new();
        m.set_gate_table_stats(10, 3, 2);
        let json = m.registry().to_json();
        assert!(json.contains("\"gate_table_cache_hits\":10"), "{json}");
        assert!(json.contains("\"gate_table_cache_misses\":3"), "{json}");
        assert!(json.contains("\"gate_table_cache_entries\":2"), "{json}");
        // The exposition entry points re-sample the live cache (the
        // exact values race with concurrent tests exercising backends,
        // so only presence is asserted here — serve_integration pins
        // the live behaviour).
        let json = m.stats_json();
        assert!(json.contains("\"gate_table_cache_hits\":"), "{json}");
        let text = m.prometheus();
        assert!(text.contains("gate_table_cache_entries"), "{text}");
    }

    #[test]
    fn connection_and_inflight_gauges_move_both_ways() {
        let m = ServeMetrics::new();
        m.connection_opened();
        m.connection_opened();
        m.connection_closed();
        m.inflight().add(1);
        m.record_reap();
        m.record_busy();
        let json = m.registry().to_json();
        assert!(json.contains("\"serve_busy_total\":1"), "{json}");
        assert!(json.contains("\"serve_connections_total\":2"), "{json}");
        assert!(json.contains("\"serve_open_connections\":1"), "{json}");
        assert!(json.contains("\"serve_inflight_requests\":1"), "{json}");
        assert!(
            json.contains("\"serve_read_deadline_reaps_total\":1"),
            "{json}"
        );
        m.inflight().sub(1);
        assert!(m
            .registry()
            .to_json()
            .contains("\"serve_inflight_requests\":0"));
    }
}
