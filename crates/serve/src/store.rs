//! The content-addressed model zoo: `.qnm` files keyed by model id in
//! a directory, fronted by an LRU-bounded in-memory cache of parsed
//! codecs.
//!
//! A model's **id is its address**: the FNV-1a 64 of the serialised
//! model body (`qn_codec::model::model_id`), the same identity `.qnc`
//! containers record. `LOAD_MODEL` inserts therefore cannot collide or
//! alias — re-inserting a model is idempotent — and a `.qnc` without an
//! inline model decodes against the zoo by looking up exactly the id
//! in its header. On-disk layout: `<dir>/<id as 16 hex digits>.qnm`.
//!
//! Without a directory the LRU cache **is** the zoo: capacity bounds
//! total retained models (a hard memory bound — peers drive inserts),
//! so an id evicted by `capacity` newer ones must be `LOAD_MODEL`ed
//! again before use. With a directory, eviction only drops the parsed
//! copy; lookups transparently reload from disk.

use crate::error::{Result, ServeError};
use crate::protocol::ModelEntry;
use qn_codec::{model, Codec};
use qn_metrics::{Counter, Gauge, Registry};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Zoo telemetry handles: cache hit/miss/insert counters plus a gauge
/// of parsed models resident in RAM. Clonable — handles share the
/// underlying atomics.
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    inserts: Arc<Counter>,
    cached_models: Arc<Gauge>,
}

impl StoreMetrics {
    /// Register the zoo metrics in `registry`.
    pub fn new(registry: &Registry) -> StoreMetrics {
        StoreMetrics {
            hits: registry.counter("zoo_hits_total"),
            misses: registry.counter("zoo_misses_total"),
            inserts: registry.counter("zoo_inserts_total"),
            cached_models: registry.gauge("zoo_cached_models"),
        }
    }

    /// RAM-cache hits observed by [`ModelStore::get`].
    pub fn hits(&self) -> &Counter {
        &self.hits
    }

    /// RAM-cache misses (the lookup then falls through to disk).
    pub fn misses(&self) -> &Counter {
        &self.misses
    }

    /// Successful [`ModelStore::insert_bytes`] calls.
    pub fn inserts(&self) -> &Counter {
        &self.inserts
    }

    /// Parsed models currently resident in the RAM cache.
    pub fn cached_models(&self) -> &Gauge {
        &self.cached_models
    }
}

/// Directory-backed, LRU-cached model zoo. Thread-safe; cheap to share
/// behind an `Arc`.
#[derive(Debug)]
pub struct ModelStore {
    dir: Option<PathBuf>,
    capacity: usize,
    /// Most-recently-used at the back.
    cache: Mutex<Vec<(u64, Arc<Codec>)>>,
    metrics: Option<StoreMetrics>,
}

impl ModelStore {
    /// A store over `dir` (created if missing; `None` = in-memory only)
    /// holding at most `capacity` parsed models in RAM.
    ///
    /// # Errors
    /// Directory-creation failures.
    pub fn new(dir: Option<PathBuf>, capacity: usize) -> std::io::Result<Self> {
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ModelStore {
            dir,
            capacity: capacity.max(1),
            cache: Mutex::new(Vec::new()),
            metrics: None,
        })
    }

    /// Attach zoo telemetry (hit/miss/insert counters and the residency
    /// gauge). Builder-style; metered stores behave identically.
    #[must_use]
    pub fn with_metrics(mut self, metrics: StoreMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The backing directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The on-disk path a model id maps to (whether or not it exists).
    pub fn model_path(&self, id: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{id:016x}.qnm")))
    }

    /// Parsed models currently cached in RAM.
    pub fn cached_len(&self) -> usize {
        self.cache.lock().expect("store lock").len()
    }

    /// Verify, persist and cache a `.qnm` file; returns its id.
    /// Idempotent: re-inserting an existing model only refreshes the
    /// cache.
    ///
    /// # Errors
    /// Model parse errors ([`ServeError::Codec`]) and IO failures
    /// writing the zoo file.
    pub fn insert_bytes(&self, bytes: &[u8]) -> Result<u64> {
        let codec = Codec::new(model::decode_model(bytes)?);
        let id = codec.model_id();
        if let Some(path) = self.model_path(id) {
            // Content-addressed: an existing file already holds these
            // exact bytes (same id ⇒ same body), so never rewrite.
            // Writes go through a uniquely-named temp file + rename so
            // a concurrent get() (or a crash mid-write) can never
            // observe a half-written zoo file, and two simultaneous
            // inserts of the same model never share a temp path (the
            // renames then both land the identical content).
            if !path.exists() {
                static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let tmp = path.with_extension(format!("qnm.tmp.{}.{seq}", std::process::id()));
                std::fs::write(&tmp, bytes)?;
                std::fs::rename(&tmp, &path)?;
            }
        }
        self.touch(id, Arc::new(codec));
        if let Some(m) = &self.metrics {
            m.inserts.inc();
        }
        Ok(id)
    }

    /// Look a model up by id: RAM cache first, then the zoo directory.
    ///
    /// # Errors
    /// [`ServeError::UnknownModel`] when neither holds the id;
    /// [`ServeError::Codec`] when a zoo file is corrupt or its content
    /// hashes to a different id (store corruption).
    pub fn get(&self, id: u64) -> Result<Arc<Codec>> {
        {
            let mut cache = self.cache.lock().expect("store lock");
            if let Some(at) = cache.iter().position(|(k, _)| *k == id) {
                let entry = cache.remove(at);
                let codec = Arc::clone(&entry.1);
                cache.push(entry);
                if let Some(m) = &self.metrics {
                    m.hits.inc();
                }
                return Ok(codec);
            }
        }
        // A miss is counted here, whatever the disk outcome: the metric
        // tracks RAM-cache effectiveness, not zoo completeness.
        if let Some(m) = &self.metrics {
            m.misses.inc();
        }
        let path = self.model_path(id).ok_or(ServeError::UnknownModel(id))?;
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(ServeError::UnknownModel(id))
            }
            Err(e) => return Err(ServeError::Io(e)),
        };
        let codec = Codec::new(model::decode_model(&bytes)?);
        if codec.model_id() != id {
            return Err(ServeError::Codec(qn_codec::CodecError::Invalid(format!(
                "zoo file {} holds model {:#018x}, not {id:#018x}",
                path.display(),
                codec.model_id()
            ))));
        }
        let codec = Arc::new(codec);
        self.touch(id, Arc::clone(&codec));
        Ok(codec)
    }

    /// Enumerate the zoo, sorted by id: every `.qnm` in the zoo
    /// directory (file size from disk) plus any cached models a
    /// directory-less store retains (size of the re-serialized body).
    /// The `cached` flag reports RAM-cache residency either way.
    ///
    /// # Errors
    /// Directory read failures; unreadable or foreign files in the zoo
    /// directory are skipped rather than failing the listing (the
    /// store only ever writes `<16 hex digits>.qnm` names).
    pub fn list(&self) -> Result<Vec<ModelEntry>> {
        let cached_ids: Vec<u64> = {
            let cache = self.cache.lock().expect("store lock");
            cache.iter().map(|(id, _)| *id).collect()
        };
        let mut entries: Vec<ModelEntry> = Vec::new();
        if let Some(dir) = &self.dir {
            for entry in std::fs::read_dir(dir).map_err(ServeError::Io)? {
                let Ok(entry) = entry else { continue };
                let path = entry.path();
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                if path.extension().is_none_or(|e| e != "qnm") || stem.len() != 16 {
                    continue;
                }
                let Ok(id) = u64::from_str_radix(stem, 16) else {
                    continue;
                };
                let Ok(meta) = entry.metadata() else { continue };
                // A directory (or other non-file) wearing a model name
                // is foreign too — listing it would promise a model
                // `get` can never load.
                if !meta.is_file() {
                    continue;
                }
                entries.push(ModelEntry {
                    id,
                    size_bytes: meta.len(),
                    cached: cached_ids.contains(&id),
                });
            }
        } else {
            let cache = self.cache.lock().expect("store lock");
            for (id, codec) in cache.iter() {
                entries.push(ModelEntry {
                    id: *id,
                    size_bytes: model::encode_model(codec.model()).len() as u64,
                    cached: true,
                });
            }
        }
        entries.sort_by_key(|e| e.id);
        Ok(entries)
    }

    /// Insert or refresh a cache entry, evicting the least recently
    /// used beyond capacity.
    fn touch(&self, id: u64, codec: Arc<Codec>) {
        let mut cache = self.cache.lock().expect("store lock");
        if let Some(at) = cache.iter().position(|(k, _)| *k == id) {
            cache.remove(at);
        }
        cache.push((id, codec));
        while cache.len() > self.capacity {
            cache.remove(0);
        }
        if let Some(m) = &self.metrics {
            m.cached_models.set(cache.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_codec::model::encode_model;
    use qn_image::datasets;

    fn model_bytes(seed: u64) -> (u64, Vec<u8>) {
        let img = datasets::grayscale_blobs(1, 16, 16, seed).remove(0);
        let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
        (codec.model_id(), encode_model(codec.model()))
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("qn_store_tests")
            .join(format!("{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn insert_then_get_roundtrips_and_persists() {
        let dir = temp_dir("roundtrip");
        let store = ModelStore::new(Some(dir.clone()), 4).unwrap();
        let (id, bytes) = model_bytes(1);
        assert_eq!(store.insert_bytes(&bytes).unwrap(), id);
        assert!(store.model_path(id).unwrap().exists());
        assert_eq!(store.get(id).unwrap().model_id(), id);

        // A fresh store over the same directory finds it on disk.
        let cold = ModelStore::new(Some(dir), 4).unwrap();
        assert_eq!(cold.cached_len(), 0);
        assert_eq!(cold.get(id).unwrap().model_id(), id);
        assert_eq!(cold.cached_len(), 1);
    }

    #[test]
    fn lru_evicts_in_use_order_but_disk_retains() {
        let dir = temp_dir("lru");
        let store = ModelStore::new(Some(dir), 2).unwrap();
        let ids: Vec<u64> = (0..3)
            .map(|s| {
                let (id, bytes) = model_bytes(s + 10);
                store.insert_bytes(&bytes).unwrap();
                id
            })
            .collect();
        assert_eq!(store.cached_len(), 2, "capacity bound");
        // The first model fell out of RAM but reloads from the zoo.
        assert_eq!(store.get(ids[0]).unwrap().model_id(), ids[0]);
        assert_eq!(store.cached_len(), 2);
    }

    #[test]
    fn unknown_and_corrupt_models_fail_typed() {
        let dir = temp_dir("corrupt");
        let store = ModelStore::new(Some(dir), 2).unwrap();
        assert!(matches!(
            store.get(0xDEAD),
            Err(ServeError::UnknownModel(0xDEAD))
        ));
        assert!(matches!(
            store.insert_bytes(b"not a model"),
            Err(ServeError::Codec(_))
        ));
        // A zoo file whose content hashes to a different id is store
        // corruption, not a silent wrong-model decode.
        let (id, bytes) = model_bytes(77);
        let (other_id, other_bytes) = model_bytes(78);
        assert_ne!(id, other_id);
        std::fs::write(store.model_path(id).unwrap(), &other_bytes).unwrap();
        assert!(matches!(store.get(id), Err(ServeError::Codec(_))));
        drop(bytes);
    }

    #[test]
    fn list_enumerates_disk_and_cache_with_residency_flags() {
        let dir = temp_dir("list");
        let store = ModelStore::new(Some(dir.clone()), 2).unwrap();
        assert_eq!(store.list().unwrap(), vec![], "fresh zoo is empty");
        let mut ids: Vec<u64> = (0..3)
            .map(|s| {
                let (id, bytes) = model_bytes(s + 40);
                store.insert_bytes(&bytes).unwrap();
                id
            })
            .collect();
        ids.sort_unstable();
        // Foreign files in the zoo directory are ignored.
        std::fs::write(dir.join("README.txt"), "not a model").unwrap();
        std::fs::write(dir.join("short.qnm"), "wrong name shape").unwrap();
        let listed = store.list().unwrap();
        assert_eq!(listed.iter().map(|e| e.id).collect::<Vec<_>>(), ids);
        for e in &listed {
            assert_eq!(
                e.size_bytes,
                std::fs::metadata(store.model_path(e.id).unwrap())
                    .unwrap()
                    .len()
            );
        }
        // Capacity 2: exactly one of the three fell out of RAM but
        // stays listed from disk.
        assert_eq!(listed.iter().filter(|e| e.cached).count(), 2);
        assert_eq!(listed.iter().filter(|e| !e.cached).count(), 1);

        // A directory-less store lists its cache (all resident by
        // definition).
        let mem = ModelStore::new(None, 4).unwrap();
        let (id, bytes) = model_bytes(50);
        mem.insert_bytes(&bytes).unwrap();
        let listed = mem.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, id);
        assert_eq!(listed[0].size_bytes, bytes.len() as u64);
        assert!(listed[0].cached);
    }

    #[test]
    fn lru_eviction_order_tracks_interleaved_inserts_and_gets() {
        // Directory-less store: the cache IS the zoo, so eviction is
        // observable as UnknownModel. A get() must refresh recency —
        // inserting C after touching A evicts B, not A.
        let store = ModelStore::new(None, 2).unwrap();
        let (id_a, bytes_a) = model_bytes(60);
        let (id_b, bytes_b) = model_bytes(61);
        let (id_c, bytes_c) = model_bytes(62);
        store.insert_bytes(&bytes_a).unwrap();
        store.insert_bytes(&bytes_b).unwrap();
        store.get(id_a).unwrap(); // A is now most recent
        store.insert_bytes(&bytes_c).unwrap(); // evicts B
        assert!(matches!(store.get(id_b), Err(ServeError::UnknownModel(b)) if b == id_b));
        assert_eq!(store.get(id_a).unwrap().model_id(), id_a);
        assert_eq!(store.get(id_c).unwrap().model_id(), id_c);
        // Re-inserting an already-cached model refreshes instead of
        // duplicating: capacity still holds exactly two entries.
        store.insert_bytes(&bytes_a).unwrap();
        assert_eq!(store.cached_len(), 2);
        // ... and counts as a touch: C is now the LRU entry.
        store.insert_bytes(&bytes_b).unwrap();
        assert!(matches!(store.get(id_c), Err(ServeError::UnknownModel(_))));
        assert_eq!(store.get(id_a).unwrap().model_id(), id_a);
    }

    #[test]
    fn garbage_in_the_zoo_dir_is_skipped_by_list_not_fatal() {
        let dir = temp_dir("garbage");
        let store = ModelStore::new(Some(dir.clone()), 4).unwrap();
        let (id, bytes) = model_bytes(70);
        store.insert_bytes(&bytes).unwrap();
        // Foreign shapes a hostile or confused operator can drop in:
        // wrong extension, wrong stem length, non-hex stem of the right
        // length, and a *directory* wearing a legal model name.
        std::fs::write(dir.join("README.txt"), "hello").unwrap();
        std::fs::write(dir.join("cafe.qnm"), "short stem").unwrap();
        std::fs::write(dir.join("zzzzzzzzzzzzzzzz.qnm"), "sixteen non-hex").unwrap();
        std::fs::create_dir(dir.join("00000000deadbeef.qnm")).unwrap();
        let listed = store.list().unwrap();
        assert_eq!(
            listed.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![id],
            "only the real model is listed"
        );
    }

    #[test]
    fn id_mismatch_corruption_is_not_cached_and_stays_typed() {
        let dir = temp_dir("mismatch");
        let store = ModelStore::new(Some(dir), 4).unwrap();
        let (id_a, bytes_a) = model_bytes(80);
        let (_, bytes_b) = model_bytes(81);
        store.insert_bytes(&bytes_a).unwrap();
        // Overwrite A's zoo file with B's body: content no longer
        // hashes to the address.
        std::fs::write(store.model_path(id_a).unwrap(), &bytes_b).unwrap();
        // Force the parsed copy of A out of RAM so get() re-reads disk.
        for seed in 90..94 {
            let (_, bytes) = model_bytes(seed);
            store.insert_bytes(&bytes).unwrap();
        }
        // Every lookup reports corruption; the poisoned bytes never
        // enter the cache as model A.
        for _ in 0..2 {
            assert!(matches!(store.get(id_a), Err(ServeError::Codec(_))));
        }
        let cache_ids: Vec<u64> = store.list().unwrap().iter().map(|e| e.id).collect();
        assert!(
            cache_ids.contains(&id_a),
            "file still listed (list is metadata-only)"
        );
    }

    #[test]
    fn zoo_metrics_count_hits_misses_inserts_and_residency() {
        let registry = Registry::new();
        let metrics = StoreMetrics::new(&registry);
        let dir = temp_dir("metrics");
        let store = ModelStore::new(Some(dir), 2)
            .unwrap()
            .with_metrics(metrics.clone());
        let (id_a, bytes_a) = model_bytes(100);
        let (id_b, bytes_b) = model_bytes(101);
        let (_, bytes_c) = model_bytes(102);
        store.insert_bytes(&bytes_a).unwrap();
        store.insert_bytes(&bytes_b).unwrap();
        assert_eq!(metrics.inserts().get(), 2);
        assert_eq!(metrics.cached_models().get(), 2);
        store.get(id_a).unwrap(); // RAM hit
        assert_eq!(metrics.hits().get(), 1);
        assert_eq!(metrics.misses().get(), 0);
        store.insert_bytes(&bytes_c).unwrap(); // evicts B from RAM
        assert_eq!(metrics.cached_models().get(), 2, "capacity bound");
        store.get(id_b).unwrap(); // miss → disk reload
        assert_eq!(metrics.misses().get(), 1);
        // Unknown ids are misses too (cache effectiveness, not zoo
        // completeness).
        assert!(store.get(0xF00D).is_err());
        assert_eq!(metrics.misses().get(), 2);
        // A failed insert does not count.
        assert!(store.insert_bytes(b"junk").is_err());
        assert_eq!(metrics.inserts().get(), 3);
    }

    #[test]
    fn memory_only_store_serves_inserts_but_knows_nothing_else() {
        let store = ModelStore::new(None, 2).unwrap();
        let (id, bytes) = model_bytes(5);
        assert_eq!(store.insert_bytes(&bytes).unwrap(), id);
        assert_eq!(store.get(id).unwrap().model_id(), id);
        assert!(matches!(
            store.get(id + 1),
            Err(ServeError::UnknownModel(_))
        ));
        assert!(store.model_path(id).is_none());
    }
}
