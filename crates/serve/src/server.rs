//! The TCP server loop: `std::net` listener, one thread per
//! connection, all requests funneled into the shared [`TileBatcher`]
//! and [`ModelStore`].
//!
//! Error discipline: request-level failures (corrupt containers,
//! unknown models, malformed payloads) answer a typed error frame and
//! keep the connection; stream-level failures (bad magic, oversized
//! frames, CRC mismatches, unknown protocol versions) answer a typed
//! error where the socket still permits and then close — once framing
//! is lost there is no safe way to resynchronise. Nothing a peer sends
//! can panic a connection thread.

use crate::batcher::TileBatcher;
use crate::error::{Result, ServeError};
use crate::log::{LogLevel, Logger};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    image_to_payload, parse_trace_request, EncodeRequest, ErrorCode, Frame, FrameError, Opcode,
    TraceContext, ENC_FLAG_INLINE_MODEL, ENC_FLAG_PER_TILE_SCALE, ENC_FLAG_USE_MODEL_ID,
    HEADER_LEN, PROTOCOL_VERSION,
};
use crate::store::ModelStore;
use qn_backend::BackendKind;
use qn_codec::pipeline::codec_from_inline;
use qn_codec::{info, Codec, CodecOptions, Container};
use qn_metrics::Gauge;
use qn_trace::{fmt_ns, SpanId, TraceBuilder, Tracer};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bytes a frame occupies on the wire: header + payload + CRC trailer.
fn frame_wire_bytes(payload_len: usize) -> u64 {
    (HEADER_LEN + payload_len + 4) as u64
}

/// Saturating nanoseconds since `t`.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Completed traces kept in the recent ring.
const TRACE_RECENT_CAP: usize = 64;
/// Slow traces kept in the always-keep buffer.
const TRACE_SLOW_CAP: usize = 32;
/// High bits marking server-generated (slow-capture) trace ids, so
/// they never collide with sane client-chosen ids and are recognisable
/// in logs.
const SELF_TRACE_ID_BASE: u64 = 0x5e1f_0000_0000_0000;

/// Tunables for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Model-zoo directory. `None` = in-memory models only: the LRU
    /// cache is then the entire zoo, so a model evicted by
    /// `model_cache` newer ones must be re-`LOAD_MODEL`ed before use.
    pub store_dir: Option<PathBuf>,
    /// Parsed models kept hot in RAM (least-recently-used beyond this;
    /// also the total retention bound when `store_dir` is `None`).
    pub model_cache: usize,
    /// Backend every batched mesh pass runs through.
    pub backend: BackendKind,
    /// Flush a batch group once it holds this many tiles.
    pub batch_tiles: usize,
    /// Flush a batch group this long after it opens. Zero disables
    /// cross-request coalescing (per-request dispatch).
    pub batch_deadline: Duration,
    /// How long a connection may take to deliver the rest of a frame
    /// once its header has arrived (`Duration::ZERO` disables the
    /// timeout). Idle connections are never timed out — the clock only
    /// runs between header and payload, where a stalled peer would
    /// otherwise pin the adaptive-flush in-flight gauge and degrade
    /// every concurrent request to deadline-bounded batching.
    pub read_timeout: Duration,
    /// Collect and serve telemetry (the `STATS` opcode, request/latency
    /// counters, codec-stage histograms). On by default; `false` makes
    /// `STATS` answer a typed `BadRequest` and skips every metric
    /// update (the benchmarked no-op configuration).
    pub metrics: bool,
    /// Server log verbosity on stderr. The library default is
    /// [`LogLevel::Off`] so embedded servers (tests, benches) stay
    /// silent; the `qnc serve` CLI defaults to `info`.
    pub log_level: LogLevel,
    /// Record request span traces (the `TRACE` opcode, client `--trace`
    /// round-trips). On by default; untraced requests pay one branch
    /// per span site, and a request is only *recorded* when its trace
    /// context asks for sampling (or slow capture is armed below).
    /// `false` makes `TRACE` answer a typed `BadRequest`.
    pub tracing: bool,
    /// Slow-request threshold (`--slow-ms`; zero = off, the default).
    /// When set, every mesh-bound request is self-traced server-side;
    /// traces at or over the threshold land in the always-keep slow
    /// buffer and emit a WARN log line with the stage breakdown.
    pub slow_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7733".into(),
            store_dir: None,
            model_cache: 16,
            backend: BackendKind::Panel,
            batch_tiles: 4096,
            batch_deadline: Duration::from_millis(2),
            read_timeout: Duration::from_secs(30),
            metrics: true,
            log_level: LogLevel::Off,
            tracing: true,
            slow_threshold: Duration::ZERO,
        }
    }
}

/// Shared server state: the zoo, the batcher and counters.
struct Shared {
    store: ModelStore,
    batcher: TileBatcher,
    config: ServerConfig,
    requests: AtomicU64,
    /// Mesh-bound (ENCODE/DECODE) requests currently *incoming*:
    /// counted from the moment a connection has read such a frame's
    /// header (the request is definitely coming) until the request
    /// submits its tiles to the batcher. Drives the adaptive batch
    /// flush — a submitter that sees no other incoming request
    /// flushes its batch eagerly instead of paying the deadline.
    /// A peer that stalls (or drips bytes) between header and payload
    /// keeps the count raised only until the frame read deadline
    /// ([`ServerConfig::read_timeout`]) reaps the connection and the
    /// guard releases the count.
    inflight: AtomicUsize,
    shutdown: AtomicBool,
    /// Telemetry, present unless [`ServerConfig::metrics`] is off. The
    /// `inflight` atomic above stays the source of truth for flush
    /// decisions; the registry's gauge only mirrors it for exposition.
    metrics: Option<Arc<ServeMetrics>>,
    /// Trace sink, present unless [`ServerConfig::tracing`] is off.
    /// Holding `Some` alone records nothing: a request's spans are
    /// built only when its context asks for sampling or slow capture
    /// is armed.
    tracer: Option<Arc<Tracer>>,
    /// Ids for server-originated (slow-capture) traces.
    self_trace_seq: AtomicU64,
    log: Logger,
    started: Instant,
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) stops the accept loop; in-flight
/// connections finish their current request.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (success or typed error).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The server's telemetry, unless spawned with
    /// [`ServerConfig::metrics`] off. Drives `--metrics-dump-secs` and
    /// lets embedding tests assert on counters directly.
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.shared.metrics.as_ref()
    }

    /// The server's trace sink, unless spawned with
    /// [`ServerConfig::tracing`] off. Lets embedding tests assert on
    /// recorded span trees directly.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.shared.tracer.as_ref()
    }

    /// Stop accepting connections and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start serving on background threads.
///
/// # Errors
/// Bind/listen failures and zoo-directory creation failures.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(
        config
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?,
    )?;
    let addr = listener.local_addr()?;
    let metrics = config.metrics.then(|| Arc::new(ServeMetrics::new()));
    let mut store = ModelStore::new(config.store_dir.clone(), config.model_cache)?;
    if let Some(m) = &metrics {
        store = store.with_metrics(m.store_metrics());
    }
    let tracer = config.tracing.then(|| {
        let t = Tracer::new(TRACE_RECENT_CAP, TRACE_SLOW_CAP);
        if config.slow_threshold > Duration::ZERO {
            t.set_slow_threshold(Some(config.slow_threshold));
        }
        Arc::new(t)
    });
    let shared = Arc::new(Shared {
        store,
        batcher: TileBatcher::with_metrics(
            config.backend,
            config.batch_tiles,
            config.batch_deadline,
            metrics.as_ref().map(|m| m.batcher_metrics()),
        ),
        log: Logger::new(config.log_level),
        started: Instant::now(),
        config,
        requests: AtomicU64::new(0),
        inflight: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        metrics,
        tracer,
        self_trace_seq: AtomicU64::new(1),
    });
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("qn-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = Arc::clone(&shared);
                    let _ = std::thread::Builder::new()
                        .name("qn-serve-conn".into())
                        .spawn(move || handle_connection(stream, &shared));
                }
            })?
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
    })
}

/// Serve one connection until EOF, a stream-level violation, or
/// shutdown.
/// Decrements the in-flight gauge on every exit path once a request
/// was counted — normally released by `submitting_alone` at batch
/// submission, but a mid-payload disconnect or a pre-submit error
/// must never leak a count (which would permanently disable the
/// adaptive flush).
struct InflightGuard<'a> {
    count: &'a AtomicUsize,
    /// Exposition mirror of `count` (`serve_inflight_requests`); the
    /// atomic alone decides flush behaviour.
    gauge: Option<&'a Gauge>,
}

impl<'a> InflightGuard<'a> {
    fn acquire(shared: &'a Shared) -> InflightGuard<'a> {
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let gauge = shared.metrics.as_deref().map(ServeMetrics::inflight);
        if let Some(g) = gauge {
            g.add(1);
        }
        InflightGuard {
            count: &shared.inflight,
            gauge,
        }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::SeqCst);
        if let Some(g) = self.gauge {
            g.sub(1);
        }
    }
}

/// A frame-scoped deadline over a `TcpStream`: every `read` first
/// checks the shared deadline cell — unset means an unbounded idle
/// wait; once set (by the header hook), each read gets the *remaining*
/// time as its socket timeout, so the whole frame must arrive by the
/// deadline. A per-`recv` timeout alone would let a peer drip one byte
/// per interval and hold a frame (and the in-flight gauge) open
/// forever.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    deadline: &'a std::cell::Cell<Option<std::time::Instant>>,
}

impl std::io::Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline.get() {
            let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now()) else {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "frame read deadline exceeded",
                ));
            };
            // set_read_timeout rejects zero; the floor only matters in
            // the last millisecond before the deadline check above
            // fires on the next read.
            self.stream
                .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        }
        (&mut &*self.stream).read(buf)
    }
}

/// Balances the open-connections gauge and logs the disconnect on
/// every way out of `handle_connection`.
struct ConnGuard<'a> {
    shared: &'a Shared,
    peer: &'a str,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        if let Some(m) = &self.shared.metrics {
            m.connection_closed();
        }
        self.shared
            .log
            .info("disconnect", format_args!("peer={}", self.peer));
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    if let Some(m) = &shared.metrics {
        m.connection_opened();
    }
    shared.log.info("connect", format_args!("peer={peer}"));
    let _conn = ConnGuard {
        shared,
        peer: &peer,
    };
    let timeout = shared.config.read_timeout;
    let deadline = std::cell::Cell::new(None);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Count this connection in flight from the moment a header
        // lands: an idle connection parked in read_exact contributes
        // nothing, but once a header has arrived the request is
        // certainly coming and batches should wait for it. Only
        // mesh-bound opcodes (ENCODE/DECODE) count — an INFO poll or
        // model upload never submits to the batcher, so it must not
        // make a concurrent encode forfeit its eager flush.
        // The same moment arms the frame deadline: idle waits are
        // unbounded, but a peer that has started a frame must finish
        // the *whole frame* within `read_timeout` — stalling or
        // dripping bytes gets the connection reaped (and its in-flight
        // count released by the guard).
        deadline.set(None);
        let _ = stream.set_read_timeout(None);
        let mut counted = None;
        let mut header_at = None;
        let mut reader = DeadlineReader {
            stream: &stream,
            deadline: &deadline,
        };
        let frame = match Frame::read_from_tracked(&mut reader, |opcode| {
            header_at = Some(Instant::now());
            if timeout > Duration::ZERO {
                deadline.set(Some(std::time::Instant::now() + timeout));
            }
            if matches!(
                Opcode::from_u8(opcode),
                Some(Opcode::Encode | Opcode::Decode)
            ) {
                counted = Some(InflightGuard::acquire(shared));
            }
        }) {
            Ok(frame) => frame,
            // EOF / reset / mid-frame disconnect / deadline expiry:
            // nothing to answer (`counted` drops here, releasing the
            // in-flight gauge a stalled peer would otherwise pin).
            Err(FrameError::Io(e)) => {
                // A timeout with the deadline armed is a reap: the peer
                // started a frame and never finished it.
                if deadline.get().is_some()
                    && matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    )
                {
                    if let Some(m) = &shared.metrics {
                        m.record_reap();
                    }
                    shared.log.info(
                        "reap",
                        format_args!("peer={peer} timeout_ms={}", timeout.as_millis()),
                    );
                }
                return;
            }
            // Framing is unrecoverable: best-effort typed error, close.
            Err(e) => {
                if let Some(m) = &shared.metrics {
                    m.record_error(e.code());
                }
                shared.log.info(
                    "error",
                    format_args!("peer={peer} code={} detail={e}", e.code().label()),
                );
                let reply = Frame::error(0, e.code(), &e.to_string());
                let _ = reply.write_to(&mut stream);
                let _ = stream.flush();
                return;
            }
        };
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let op = Opcode::from_u8(frame.opcode);
        if let Some(m) = &shared.metrics {
            m.record_request(op);
            m.record_frame_in(frame_wire_bytes(frame.payload.len()));
        }
        let request_id = frame.request_id;
        // Split off the trace-context prefix (if any) before the
        // payload reaches any handler; a malformed prefix is a
        // request-level error (typed reply, connection kept).
        let stripped = TraceContext::strip(frame.status, &frame.payload);
        let (trace_ctx, body) = match &stripped {
            Ok((ctx, body)) => (*ctx, *body),
            Err(_) => (None, &frame.payload[..]),
        };
        // Span recording is armed when the client asked for sampling,
        // or for mesh-bound requests whenever slow capture is on (a
        // slow request can only land in the slow buffer if its spans
        // were built). Untraced requests skip every span site on a
        // `None` check.
        let mesh_bound = matches!(op, Some(Opcode::Encode | Opcode::Decode));
        let mut tb = match &shared.tracer {
            Some(_)
                if trace_ctx.is_some_and(|c| c.sampled)
                    || (mesh_bound && shared.config.slow_threshold > Duration::ZERO) =>
            {
                let (id, origin) = match trace_ctx {
                    Some(c) => (c.id, "client"),
                    None => (
                        SELF_TRACE_ID_BASE | shared.self_trace_seq.fetch_add(1, Ordering::Relaxed),
                        "slow",
                    ),
                };
                let anchor = header_at.unwrap_or(started);
                let mut b =
                    TraceBuilder::with_anchor(id, op.map_or("unknown", Opcode::label), anchor);
                b.attr(SpanId::ROOT, "origin", origin);
                let read = b.record(SpanId::ROOT, "frame_read", 0, b.elapsed_ns());
                b.attr(read, "bytes", frame_wire_bytes(frame.payload.len()));
                Some(b)
            }
            _ => None,
        };
        let outcome = match stripped {
            Ok(_) => dispatch(shared, op, frame.opcode, body, counted, &mut tb),
            Err(e) => {
                drop(counted);
                Err(e)
            }
        };
        let reply = match outcome {
            Ok((op, payload)) => Frame::reply(op, request_id, payload),
            Err(e) => {
                if let Some(m) = &shared.metrics {
                    m.record_error(e.code());
                }
                shared.log.info(
                    "error",
                    format_args!("peer={peer} code={} detail={e}", e.code().label()),
                );
                Frame::error(request_id, e.code(), &e.to_string())
            }
        };
        let write_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "reply_write"));
        let mut reply_payload_len = reply.payload.len();
        match reply.write_to(&mut stream) {
            Ok(()) => {}
            // An over-limit reply (InvalidInput) is a request-level
            // outcome: tell the client with a typed frame instead of a
            // bare close. Any other write failure means the stream is
            // gone.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => {
                let fallback = Frame::error(request_id, ErrorCode::Internal, &e.to_string());
                reply_payload_len = fallback.payload.len();
                if fallback.write_to(&mut stream).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
        if let (Some(b), Some(s)) = (tb.as_mut(), write_span) {
            b.end(s);
            b.attr(s, "bytes", frame_wire_bytes(reply_payload_len));
        }
        // Finish and record the trace *before* reading the next frame:
        // a client that sends TRACE right after receiving this reply on
        // the same connection is guaranteed to find its trace.
        if let Some(b) = tb.take() {
            let trace = b.finish();
            let slow = shared.config.slow_threshold;
            if slow > Duration::ZERO
                && trace.duration_ns() >= u64::try_from(slow.as_nanos()).unwrap_or(u64::MAX)
            {
                use std::fmt::Write as _;
                let mut stages = String::new();
                for i in trace.children(0) {
                    let s = &trace.spans[i];
                    let _ = write!(stages, " {}={}", s.name, fmt_ns(s.duration_ns()));
                }
                shared.log.warn(
                    "slow",
                    format_args!(
                        "peer={peer} id={} op={} total={}{stages}",
                        trace.id_hex(),
                        trace.name(),
                        fmt_ns(trace.duration_ns()),
                    ),
                );
            }
            if let Some(tracer) = &shared.tracer {
                tracer.record(trace);
            }
        }
        let latency_ns = elapsed_ns(started);
        if let Some(m) = &shared.metrics {
            m.record_frame_out(frame_wire_bytes(reply_payload_len));
            m.record_latency(op, latency_ns);
        }
        shared.log.debug(
            "request",
            format_args!(
                "peer={peer} op={} id={request_id} latency_ns={latency_ns}",
                op.map_or("unknown", Opcode::label)
            ),
        );
    }
}

/// Route one well-framed request; every failure comes back typed.
/// `inflight` is the request's in-flight count guard (held only by
/// mesh-bound opcodes) — the encode/decode handlers release it at
/// submission time, everything else drops it on entry. `payload` is
/// the request body with any trace-context prefix already stripped;
/// `tb` is the request's span builder (`None` unless sampled).
fn dispatch(
    shared: &Shared,
    op: Option<Opcode>,
    opcode_byte: u8,
    payload: &[u8],
    inflight: Option<InflightGuard<'_>>,
    tb: &mut Option<TraceBuilder>,
) -> Result<(Opcode, Vec<u8>)> {
    match op {
        Some(Opcode::Encode) => handle_encode(shared, payload, inflight, tb),
        Some(Opcode::Decode) => handle_decode(shared, payload, inflight, tb),
        Some(Opcode::LoadModel) => {
            let id = shared.store.insert_bytes(payload)?;
            Ok((Opcode::LoadModel, id.to_le_bytes().to_vec()))
        }
        Some(Opcode::Info) => handle_info(shared, payload),
        Some(Opcode::ListModels) => {
            if !payload.is_empty() {
                return Err(ServeError::BadRequest(format!(
                    "LIST_MODELS takes no payload, got {} bytes",
                    payload.len()
                )));
            }
            let entries = shared.store.list()?;
            Ok((
                Opcode::ListModels,
                crate::protocol::model_list_to_payload(&entries),
            ))
        }
        Some(Opcode::Stats) => {
            if !payload.is_empty() {
                return Err(ServeError::BadRequest(format!(
                    "STATS takes no payload, got {} bytes",
                    payload.len()
                )));
            }
            let m = shared.metrics.as_ref().ok_or_else(|| {
                ServeError::BadRequest(
                    "metrics are disabled on this server (started with --no-metrics)".into(),
                )
            })?;
            Ok((Opcode::Stats, m.stats_json().into_bytes()))
        }
        Some(Opcode::Trace) => handle_trace(shared, payload),
        _ => Err(ServeError::BadRequest(format!(
            "opcode {opcode_byte:#04x} names no request this build understands"
        ))),
    }
}

/// The `TRACE` RPC: recent or slow captured traces as JSON, optionally
/// filtered to one id.
fn handle_trace(shared: &Shared, payload: &[u8]) -> Result<(Opcode, Vec<u8>)> {
    let tracer = shared.tracer.as_ref().ok_or_else(|| {
        ServeError::BadRequest(
            "tracing is disabled on this server (started with --no-tracing)".into(),
        )
    })?;
    let (slow, id) = parse_trace_request(payload)?;
    let mut traces = if slow { tracer.slow() } else { tracer.recent() };
    if let Some(id) = id {
        traces.retain(|t| t.id == id);
    }
    Ok((Opcode::Trace, qn_trace::traces_json(&traces).into_bytes()))
}

fn handle_encode(
    shared: &Shared,
    payload: &[u8],
    inflight: Option<InflightGuard<'_>>,
    tb: &mut Option<TraceBuilder>,
) -> Result<(Opcode, Vec<u8>)> {
    let parse_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "parse"));
    let req = EncodeRequest::from_payload(payload)?;
    if let (Some(b), Some(s)) = (tb.as_mut(), parse_span) {
        b.end(s);
    }
    let codec: Arc<Codec> = if req.flags & ENC_FLAG_USE_MODEL_ID != 0 {
        shared.store.get(req.model_id)?
    } else {
        let spectral_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "spectral"));
        let t = Instant::now();
        let codec = Arc::new(Codec::spectral_for_image(
            &req.image,
            req.tile_size as usize,
            req.latent_dim as usize,
        )?);
        if let Some(m) = &shared.metrics {
            m.record_spectral_ns(elapsed_ns(t));
        }
        if let (Some(b), Some(s)) = (tb.as_mut(), spectral_span) {
            b.end(s);
        }
        codec
    };
    let opts = CodecOptions {
        tile_size: req.tile_size as usize,
        bits: req.bits,
        per_tile_scale: req.flags & ENC_FLAG_PER_TILE_SCALE != 0,
        inline_model: req.flags & ENC_FLAG_INLINE_MODEL != 0,
        backend: shared.config.backend,
        entropy: req.entropy,
    };
    let eager = submitting_alone(shared, inflight);
    let (bytes, _, timings) = shared
        .batcher
        .encode_hinted_traced(&codec, &req.image, &opts, eager, tb)?;
    if let Some(m) = &shared.metrics {
        m.record_encode_timings(&timings);
        m.record_coded_bytes(req.entropy, bytes.len() as u64);
    }
    Ok((Opcode::Encode, bytes))
}

/// The adaptive-flush test, evaluated at submission time: release this
/// request's own in-flight count (its tiles are about to be in the
/// batcher — it is no longer "incoming"), then ask whether any *other*
/// mesh-bound request is still between its frame header and its own
/// submission. If not, nothing can be coalesced with and the batch
/// flushes eagerly — so a solo client never pays the deadline, and in
/// overlapping pairs the *last* submitter flushes the merged group
/// (the count it waited on was released by the earlier submitter).
/// Racing is benign in both directions: a header arriving just after
/// the load only loses one coalescing opportunity, never correctness
/// (backends are bit-identical per vector regardless of batch
/// composition).
fn submitting_alone(shared: &Shared, inflight: Option<InflightGuard<'_>>) -> bool {
    drop(inflight);
    shared.inflight.load(Ordering::SeqCst) == 0
}

/// Most pixels a served decode may produce: the decoded image must fit
/// one reply frame (`8 bytes/pixel + the 8-byte image header`). This
/// also bounds the parse itself — a crafted header can otherwise
/// declare hundreds of millions of (empty) tiles inside a small
/// payload and drive multi-GB allocations before any reply is built.
const MAX_DECODE_PIXELS: u64 = ((crate::protocol::MAX_PAYLOAD - 8) / 8) as u64;

/// Reject container bytes whose *declared* image dimensions exceed the
/// serving limit, reading only the fixed-offset header fields — called
/// before `Container::from_bytes` so the tile vector of an
/// allocation-bomb header is never materialised. Applies only to
/// structurally authentic bytes (magic, length and CRC check out);
/// anything else passes through for the full parser's precise typed
/// error.
fn check_container_dims(payload: &[u8]) -> Result<()> {
    use qn_codec::bitstream::crc32;
    if payload.len() < 40 || payload[..4] != qn_codec::container::CONTAINER_MAGIC {
        return Ok(());
    }
    let (body, crc_bytes) = payload.split_at(payload.len() - 4);
    if u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) != crc32(body) {
        return Ok(());
    }
    let width = u64::from(u32::from_le_bytes(
        payload[16..20].try_into().expect("4 bytes"),
    ));
    let height = u64::from(u32::from_le_bytes(
        payload[20..24].try_into().expect("4 bytes"),
    ));
    if width.saturating_mul(height) > MAX_DECODE_PIXELS {
        return Err(ServeError::BadRequest(format!(
            "container declares a {width}x{height} image; this server decodes at most \
             {MAX_DECODE_PIXELS} pixels per request (the reply-frame limit)"
        )));
    }
    Ok(())
}

fn handle_decode(
    shared: &Shared,
    payload: &[u8],
    inflight: Option<InflightGuard<'_>>,
    tb: &mut Option<TraceBuilder>,
) -> Result<(Opcode, Vec<u8>)> {
    check_container_dims(payload)?;
    let parse_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "parse"));
    let t = Instant::now();
    let container = Container::from_bytes(payload)?;
    let parse_ns = elapsed_ns(t);
    if let (Some(b), Some(s)) = (tb.as_mut(), parse_span) {
        b.end(s);
    }
    let codec: Arc<Codec> = if container.header.inline_model() {
        Arc::new(codec_from_inline(&container)?)
    } else {
        shared.store.get(container.header.model_id)?
    };
    codec.check_container(&container)?;
    let eager = submitting_alone(shared, inflight);
    let (img, mut timings) = shared
        .batcher
        .decode_hinted_traced(&codec, &container, eager, tb)?;
    if let Some(m) = &shared.metrics {
        timings.parse_ns = parse_ns;
        m.record_decode_timings(&timings);
        if let Ok(coder) = container.header.entropy() {
            m.record_decoded_bytes(coder, payload.len() as u64);
        }
    }
    Ok((Opcode::Decode, image_to_payload(&img)))
}

fn handle_info(shared: &Shared, payload: &[u8]) -> Result<(Opcode, Vec<u8>)> {
    let json = if payload.is_empty() {
        server_info_json(shared)
    } else {
        // INFO parses containers too — same header-bomb guard as DECODE.
        if payload.starts_with(&qn_codec::container::CONTAINER_MAGIC) {
            check_container_dims(payload)?;
        }
        info::file_info_json(payload)?
    };
    Ok((Opcode::Info, json.into_bytes()))
}

/// Server status as single-line JSON (the empty-payload `INFO` reply).
fn server_info_json(shared: &Shared) -> String {
    let store_dir = match shared.store.dir() {
        Some(d) => format!(
            "\"{}\"",
            d.display()
                .to_string()
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
        ),
        None => "null".into(),
    };
    format!(
        "{{\"format\":\"qn-serve\",\"protocol_version\":{PROTOCOL_VERSION},\
         \"server_version\":\"{}\",\"uptime_secs\":{},\"metrics\":{},\
         \"tracing\":{},\"slow_ms\":{},\
         \"backend\":\"{}\",\"batch_tiles\":{},\"batch_deadline_ms\":{},\
         \"coalescing\":{},\"adaptive_flush\":true,\"read_timeout_ms\":{},\
         \"models_cached\":{},\"store_dir\":{store_dir},\
         \"requests_served\":{}}}",
        env!("CARGO_PKG_VERSION"),
        shared.started.elapsed().as_secs(),
        shared.metrics.is_some(),
        shared.tracer.is_some(),
        shared.config.slow_threshold.as_millis(),
        shared.config.backend,
        shared.config.batch_tiles,
        shared.config.batch_deadline.as_millis(),
        shared.batcher.coalesces(),
        shared.config.read_timeout.as_millis(),
        shared.store.cached_len(),
        shared.requests.load(Ordering::Relaxed),
    )
}
