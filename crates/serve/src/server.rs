//! The connection core: one reactor thread owns every socket through
//! `poll(2)` (see [`crate::reactor`]), complete frames are
//! admission-checked and handed to a bounded worker pool, and replies
//! come back through per-connection sequence-ordered outboxes. Idle
//! connections cost no threads; a slow-reading peer stalls only its
//! own connection.
//!
//! Error discipline: request-level failures (corrupt containers,
//! unknown models, malformed payloads) answer a typed error frame and
//! keep the connection; stream-level failures (bad magic, oversized
//! frames, CRC mismatches, unknown protocol versions) answer a typed
//! error where the socket still permits and then close — once framing
//! is lost there is no safe way to resynchronise. Admission failures
//! (the global [`ServerConfig::max_inflight`] or per-connection
//! [`ServerConfig::conn_inflight`] cap) answer a typed `BUSY` error
//! and keep the connection: backpressure is explicit, never an
//! unbounded queue into the batcher. Nothing a peer sends can panic a
//! server thread.

use crate::batcher::TileBatcher;
use crate::error::{Result, ServeError};
use crate::log::{LogLevel, Logger};
use crate::metrics::ServeMetrics;
use crate::protocol::{
    image_to_payload, parse_trace_request, EncodeRequest, ErrorCode, Frame, FrameHeader, Opcode,
    TraceContext, ENC_FLAG_INLINE_MODEL, ENC_FLAG_PER_TILE_SCALE, ENC_FLAG_USE_MODEL_ID,
    HEADER_LEN, PROTOCOL_VERSION,
};
use crate::reactor::{
    earliest, read_available, write_queue, ConnShared, FrameAccumulator, FrameStep, Interest,
    Poller, Reply, WakePipe, Waker, WireReply, WriteProgress,
};
use crate::store::ModelStore;
use qn_backend::BackendKind;
use qn_codec::pipeline::codec_from_inline;
use qn_codec::{info, Codec, CodecOptions, Container};
use qn_trace::{fmt_ns, SpanId, TraceBuilder, Tracer};
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Bytes a frame occupies on the wire: header + payload + CRC trailer.
fn frame_wire_bytes(payload_len: usize) -> u64 {
    (HEADER_LEN + payload_len + 4) as u64
}

/// Saturating nanoseconds since `t`.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Saturating nanoseconds between two instants.
fn span_ns(from: Instant, to: Instant) -> u64 {
    u64::try_from(to.saturating_duration_since(from).as_nanos()).unwrap_or(u64::MAX)
}

/// Unwritten reply bytes queued on one connection past which the
/// reactor stops reading from (and admitting on) it until the backlog
/// drains. Without this gate a peer that pipelines requests but never
/// reads replies grows the reply queue without bound — BUSY replies
/// carry no admission slot, so the admission caps alone cannot bound
/// it. Reads stopping makes the kernel socket buffers fill and TCP
/// flow control throttle the peer, the way the old blocking write
/// loop did naturally.
const WIRE_BACKLOG_LIMIT: usize = 256 * 1024;

/// Most bytes one service pass reads from one connection, so the
/// reply queue a single burst can generate is bounded before the
/// backlog gate is re-checked (the socket stays level-triggered
/// readable; the remainder is read next iteration).
const READ_BUDGET: usize = 256 * 1024;

/// How long the reactor leaves the listener unregistered after a
/// persistent accept failure (fd exhaustion and kin): the listener
/// stays readable through such errors, so re-polling immediately
/// would spin the reactor at full CPU until a descriptor frees up.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);

/// Completed traces kept in the recent ring.
const TRACE_RECENT_CAP: usize = 64;
/// Slow traces kept in the always-keep buffer.
const TRACE_SLOW_CAP: usize = 32;
/// High bits marking server-generated (slow-capture) trace ids, so
/// they never collide with sane client-chosen ids and are recognisable
/// in logs.
const SELF_TRACE_ID_BASE: u64 = 0x5e1f_0000_0000_0000;

/// Tunables for [`spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Model-zoo directory. `None` = in-memory models only: the LRU
    /// cache is then the entire zoo, so a model evicted by
    /// `model_cache` newer ones must be re-`LOAD_MODEL`ed before use.
    pub store_dir: Option<PathBuf>,
    /// Parsed models kept hot in RAM (least-recently-used beyond this;
    /// also the total retention bound when `store_dir` is `None`).
    pub model_cache: usize,
    /// Backend every batched mesh pass runs through.
    pub backend: BackendKind,
    /// Flush a batch group once it holds this many tiles.
    pub batch_tiles: usize,
    /// Flush a batch group this long after it opens. Zero disables
    /// cross-request coalescing (per-request dispatch).
    pub batch_deadline: Duration,
    /// How long a connection may take to deliver the rest of a frame
    /// once its header has arrived (`Duration::ZERO` disables the
    /// timeout). Idle connections are never timed out — the deadline
    /// only runs between header and frame completion, where a stalled
    /// peer would otherwise pin the adaptive-flush in-flight gauge and
    /// degrade every concurrent request to deadline-bounded batching.
    pub read_timeout: Duration,
    /// Request-handling worker threads. Zero (the default) sizes the
    /// pool to `max(available_parallelism, 8)` — the floor matters on
    /// small hosts because queued mesh-bound jobs hold their
    /// adaptive-flush count, and active submitters would otherwise
    /// wait out the batch deadline for work that no worker is free to
    /// submit.
    pub workers: usize,
    /// Global admission cap: requests admitted (parsed and handed to
    /// the worker pool, reply not yet fully written) beyond this answer
    /// a typed `BUSY` error instead of queueing. Zero = unlimited.
    pub max_inflight: usize,
    /// Per-connection admission cap: one pipelining peer beyond this
    /// many in-flight requests gets typed `BUSY` replies instead of
    /// monopolising the worker pool. Zero = unlimited.
    pub conn_inflight: usize,
    /// Open-connection cap: accepts beyond this answer one typed
    /// `BUSY` error frame and close. Zero (the default) = unlimited
    /// (the process fd limit is then the real bound).
    pub max_conns: usize,
    /// How long shutdown waits for admitted requests to finish writing
    /// their replies before force-closing the remaining connections.
    pub shutdown_grace: Duration,
    /// Collect and serve telemetry (the `STATS` opcode, request/latency
    /// counters, codec-stage histograms). On by default; `false` makes
    /// `STATS` answer a typed `BadRequest` and skips every metric
    /// update (the benchmarked no-op configuration).
    pub metrics: bool,
    /// Server log verbosity on stderr. The library default is
    /// [`LogLevel::Off`] so embedded servers (tests, benches) stay
    /// silent; the `qnc serve` CLI defaults to `info`.
    pub log_level: LogLevel,
    /// Record request span traces (the `TRACE` opcode, client `--trace`
    /// round-trips). On by default; untraced requests pay one branch
    /// per span site, and a request is only *recorded* when its trace
    /// context asks for sampling (or slow capture is armed below).
    /// `false` makes `TRACE` answer a typed `BadRequest`.
    pub tracing: bool,
    /// Slow-request threshold (`--slow-ms`; zero = off, the default).
    /// When set, every mesh-bound request is self-traced server-side;
    /// traces at or over the threshold land in the always-keep slow
    /// buffer and emit a WARN log line with the stage breakdown.
    pub slow_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7733".into(),
            store_dir: None,
            model_cache: 16,
            backend: BackendKind::Panel,
            batch_tiles: 4096,
            batch_deadline: Duration::from_millis(2),
            read_timeout: Duration::from_secs(30),
            workers: 0,
            max_inflight: 256,
            conn_inflight: 8,
            max_conns: 0,
            shutdown_grace: Duration::from_secs(5),
            metrics: true,
            log_level: LogLevel::Off,
            tracing: true,
            slow_threshold: Duration::ZERO,
        }
    }
}

/// Shared server state: the zoo, the batcher and counters.
struct Shared {
    store: ModelStore,
    batcher: TileBatcher,
    config: ServerConfig,
    requests: AtomicU64,
    /// Mesh-bound (ENCODE/DECODE) requests currently *incoming*:
    /// counted from the moment a connection has read such a frame's
    /// header (the request is definitely coming) until the request
    /// submits its tiles to the batcher. Drives the adaptive batch
    /// flush — a submitter that sees no other incoming request
    /// flushes its batch eagerly instead of paying the deadline.
    /// A peer that stalls (or drips bytes) between header and payload
    /// keeps the count raised only until the frame read deadline
    /// ([`ServerConfig::read_timeout`]) reaps the connection and the
    /// guard releases the count.
    inflight: AtomicUsize,
    /// Requests admitted past the backpressure gate: incremented by
    /// the reactor when a complete frame clears both caps, released
    /// (via [`AdmissionSlot`] drop) when the reply is fully written or
    /// its connection dies. Only the reactor increments, so a
    /// load-then-add admission check cannot overshoot
    /// [`ServerConfig::max_inflight`].
    admitted: AtomicUsize,
    shutdown: AtomicBool,
    /// Wakes the reactor's poll wait: workers after parking a reply,
    /// [`ServerHandle::stop`] after raising `shutdown`.
    waker: Arc<Waker>,
    /// Telemetry, present unless [`ServerConfig::metrics`] is off. The
    /// `inflight` atomic above stays the source of truth for flush
    /// decisions; the registry's gauge only mirrors it for exposition.
    metrics: Option<Arc<ServeMetrics>>,
    /// Trace sink, present unless [`ServerConfig::tracing`] is off.
    /// Holding `Some` alone records nothing: a request's spans are
    /// built only when its context asks for sampling or slow capture
    /// is armed.
    tracer: Option<Arc<Tracer>>,
    /// Ids for server-originated (slow-capture) traces.
    self_trace_seq: AtomicU64,
    log: Logger,
    started: Instant,
}

/// Releases one unit of the global admission count on drop. Acquired
/// by the reactor at frame admission, carried through the job into the
/// reply, dropped when the reply has fully reached the socket (or the
/// connection died first) — so `admitted` measures end-to-end
/// in-flight work, not just queue occupancy.
struct AdmissionSlot {
    shared: Arc<Shared>,
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.shared.admitted.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Holds one unit of the adaptive-flush in-flight count (see
/// [`Shared::inflight`]) from header arrival until batch submission.
/// Owned (`Arc`) rather than borrowed so it can travel from the
/// reactor thread into a worker's job; every exit path — submission,
/// pre-submit error, reaped or disconnected connection — releases the
/// count by dropping, which is what keeps the adaptive flush sound.
struct MeshInflightGuard {
    shared: Arc<Shared>,
}

impl MeshInflightGuard {
    fn acquire(shared: &Arc<Shared>) -> MeshInflightGuard {
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = &shared.metrics {
            m.inflight().add(1);
        }
        MeshInflightGuard {
            shared: Arc::clone(shared),
        }
    }
}

impl Drop for MeshInflightGuard {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::SeqCst);
        if let Some(m) = &self.shared.metrics {
            m.inflight().sub(1);
        }
    }
}

/// One admitted request on its way to a worker.
struct Job {
    /// The connection's outbox, for the seq-ordered reply.
    chan: Arc<ConnShared>,
    /// This frame's position in its connection's reply order.
    seq: u64,
    frame: Frame,
    peer: Arc<str>,
    /// When the frame's header arrived (trace anchor).
    header_at: Instant,
    /// When the frame completed (latency epoch; queue wait counts).
    frame_done_at: Instant,
    admission: AdmissionSlot,
    /// The adaptive-flush count acquired at header time, released by
    /// the handler at batch submission (mesh-bound opcodes only).
    mesh_guard: Option<MeshInflightGuard>,
}

/// The bounded handoff between the reactor and the worker pool.
struct JobQueue {
    state: Mutex<JobQueueState>,
    cond: Condvar,
}

struct JobQueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    fn new() -> JobQueue {
        JobQueue {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            cond: Condvar::new(),
        }
    }

    /// Admission (not this queue) bounds depth: everything pushed here
    /// already holds an [`AdmissionSlot`]. A push after close drops
    /// the job (its slot releases here).
    fn push(&self, job: Job) {
        let mut s = self.state.lock().expect("job queue poisoned");
        if s.closed {
            return;
        }
        s.jobs.push_back(job);
        drop(s);
        self.cond.notify_one();
    }

    /// Blocks for the next job; `None` once closed and drained.
    fn pop(&self) -> Option<Job> {
        let mut s = self.state.lock().expect("job queue poisoned");
        loop {
            if let Some(job) = s.jobs.pop_front() {
                return Some(job);
            }
            if s.closed {
                return None;
            }
            s = self.cond.wait(s).expect("job queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("job queue poisoned").closed = true;
        self.cond.notify_all();
    }
}

/// A running server. Dropping the handle (or calling
/// [`ServerHandle::shutdown`]) stops the reactor, drains in-flight
/// replies within [`ServerConfig::shutdown_grace`] and joins every
/// server thread — no connection handler outlives the handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    jobs: Arc<JobQueue>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests answered so far (success or typed error).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// The server's telemetry, unless spawned with
    /// [`ServerConfig::metrics`] off. Drives `--metrics-dump-secs` and
    /// lets embedding tests assert on counters directly.
    pub fn metrics(&self) -> Option<&Arc<ServeMetrics>> {
        self.shared.metrics.as_ref()
    }

    /// The server's trace sink, unless spawned with
    /// [`ServerConfig::tracing`] off. Lets embedding tests assert on
    /// recorded span trees directly.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.shared.tracer.as_ref()
    }

    /// Stop the server: drain in-flight replies (bounded by
    /// [`ServerConfig::shutdown_grace`]) and join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // A byte into the wakeup pipe interrupts the reactor's poll
        // wait wherever it is parked — unlike the old self-connect
        // trick, this cannot hang on a wildcard (0.0.0.0) bind where
        // the listen address is not connectable.
        self.shared.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor has drained (or force-closed) every connection;
        // now the workers can be released.
        self.jobs.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Bind and start serving on background threads.
///
/// # Errors
/// Bind/listen failures, wakeup-pipe creation and zoo-directory
/// creation failures.
pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(
        config
            .addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other("address resolved to nothing"))?,
    )?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let wake = WakePipe::new()?;
    let waker = wake.waker();
    let metrics = config.metrics.then(|| Arc::new(ServeMetrics::new()));
    let mut store = ModelStore::new(config.store_dir.clone(), config.model_cache)?;
    if let Some(m) = &metrics {
        store = store.with_metrics(m.store_metrics());
    }
    let tracer = config.tracing.then(|| {
        let t = Tracer::new(TRACE_RECENT_CAP, TRACE_SLOW_CAP);
        if config.slow_threshold > Duration::ZERO {
            t.set_slow_threshold(Some(config.slow_threshold));
        }
        Arc::new(t)
    });
    let worker_count = if config.workers > 0 {
        config.workers
    } else {
        std::thread::available_parallelism()
            .map_or(1, usize::from)
            .max(8)
    };
    let shared = Arc::new(Shared {
        store,
        batcher: TileBatcher::with_metrics(
            config.backend,
            config.batch_tiles,
            config.batch_deadline,
            metrics.as_ref().map(|m| m.batcher_metrics()),
        ),
        log: Logger::new(config.log_level),
        started: Instant::now(),
        config,
        requests: AtomicU64::new(0),
        inflight: AtomicUsize::new(0),
        admitted: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        waker,
        metrics,
        tracer,
        self_trace_seq: AtomicU64::new(1),
    });
    let jobs = Arc::new(JobQueue::new());
    let mut workers = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let shared = Arc::clone(&shared);
        let jobs = Arc::clone(&jobs);
        workers.push(
            std::thread::Builder::new()
                .name(format!("qn-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(job) = jobs.pop() {
                        process_job(&shared, job);
                    }
                })?,
        );
    }
    let reactor = {
        let shared = Arc::clone(&shared);
        let jobs = Arc::clone(&jobs);
        std::thread::Builder::new()
            .name("qn-serve-reactor".into())
            .spawn(move || reactor_loop(&shared, listener, wake, &jobs))?
    };
    Ok(ServerHandle {
        addr,
        shared,
        reactor: Some(reactor),
        workers,
        jobs,
    })
}

/// Reactor-private per-connection state. Everything workers need is
/// behind the [`ConnShared`] outbox; the socket, read buffer, frame
/// state machine and wire queue belong to the reactor alone.
struct Conn {
    stream: TcpStream,
    peer: Arc<str>,
    chan: Arc<ConnShared>,
    acc: FrameAccumulator,
    /// Validated header of the frame currently accumulating.
    header: Option<FrameHeader>,
    header_at: Option<Instant>,
    /// Frame-completion deadline, armed at header arrival.
    deadline: Option<Instant>,
    /// Adaptive-flush count for an accumulating mesh-bound frame,
    /// parked here between header and completion.
    mesh_guard: Option<MeshInflightGuard>,
    /// Sequence number the next parsed frame gets.
    next_assign: u64,
    /// Sequence number the next wire-bound reply must carry.
    next_release: u64,
    /// Replies released from the outbox, in order, mid-write.
    wire: VecDeque<WireReply>,
    /// Total bytes of replies in `wire` not yet fully written (a
    /// reply's bytes count until it pops). Drives the
    /// [`WIRE_BACKLOG_LIMIT`] read gate.
    wire_bytes: usize,
    /// Requests admitted on this connection whose replies have not
    /// finished writing (the [`ServerConfig::conn_inflight`] gate).
    inflight: usize,
    /// No more reads: peer EOF, stream violation, or server drain.
    read_closed: bool,
    /// This iteration's poll slot, when registered.
    slot: Option<usize>,
}

impl Conn {
    fn new(stream: TcpStream, peer: Arc<str>) -> Conn {
        Conn {
            stream,
            peer,
            chan: ConnShared::new(),
            acc: FrameAccumulator::default(),
            header: None,
            header_at: None,
            deadline: None,
            mesh_guard: None,
            next_assign: 0,
            next_release: 0,
            wire: VecDeque::new(),
            wire_bytes: 0,
            inflight: 0,
            read_closed: false,
            slot: None,
        }
    }

    /// Drop any half-read frame (peer EOF / server drain): its bytes
    /// can never complete, and a parked mesh guard must not keep
    /// degrading the adaptive flush.
    fn abandon_partial_frame(&mut self) {
        self.header = None;
        self.header_at = None;
        self.deadline = None;
        self.mesh_guard = None;
    }

    /// Every assigned frame's reply has fully reached the socket.
    fn fully_replied(&self) -> bool {
        self.next_release == self.next_assign && self.wire.is_empty()
    }

    /// The peer has let too many reply bytes pile up unread: stop
    /// reading from it (and so stop parsing, admitting and generating
    /// replies) until the backlog drains below the limit.
    fn write_backlogged(&self) -> bool {
        self.wire_bytes >= WIRE_BACKLOG_LIMIT
    }
}

/// Why a connection is being torn down (drives logging/metrics).
enum CloseCause {
    /// Orderly: EOF (or a flushed stream-error close) with every reply
    /// delivered.
    Done,
    /// The frame-completion deadline expired mid-frame.
    Reaped,
    /// Socket-level failure, or shutdown grace expired.
    Dropped,
}

/// The reactor: owns the listener, the wakeup pipe and every
/// connection; never blocks anywhere but `poll`.
fn reactor_loop(
    shared: &Arc<Shared>,
    listener: TcpListener,
    mut wake: WakePipe,
    jobs: &Arc<JobQueue>,
) {
    let mut poller = Poller::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut listener = Some(listener);
    // Set once shutdown is observed: the drain deadline after which
    // remaining connections are force-closed.
    let mut drain_deadline: Option<Instant> = None;
    // Set after a persistent accept failure: the listener stays
    // unregistered until this instant (see [`ACCEPT_BACKOFF`]).
    let mut accept_backoff: Option<Instant> = None;

    loop {
        // Entering drain mode can make connections closable with no
        // socket event ever coming (read side shut, nothing queued),
        // so that iteration must reach the service pass immediately.
        let mut entered_drain = false;
        if shared.shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + shared.config.shutdown_grace);
            listener = None;
            entered_drain = true;
            // Stop reading: admitted requests finish and their replies
            // flush; half-read frames can never complete.
            for conn in &mut conns {
                conn.read_closed = true;
                conn.abandon_partial_frame();
            }
        }

        // Register this iteration's descriptor set.
        poller.clear();
        let now = Instant::now();
        if accept_backoff.is_some_and(|t| now >= t) {
            accept_backoff = None;
        }
        let wake_slot = poller.register(wake.fd(), Interest::Read);
        let listen_slot = match &listener {
            Some(l) if accept_backoff.is_none() => {
                Some(poller.register(l.as_raw_fd(), Interest::Read))
            }
            _ => None,
        };
        for conn in &mut conns {
            // A write-backlogged connection loses read interest: the
            // kernel receive buffer fills and TCP flow control
            // throttles the peer until it drains its replies.
            let interest = match (
                !conn.read_closed && !conn.write_backlogged(),
                !conn.wire.is_empty(),
            ) {
                (true, true) => Some(Interest::ReadWrite),
                (true, false) => Some(Interest::Read),
                (false, true) => Some(Interest::Write),
                // Nothing to read or write — the conn is waiting on
                // workers; their wakeup pipe byte re-enters the loop.
                (false, false) => None,
            };
            conn.slot = interest.map(|i| poller.register(conn.stream.as_raw_fd(), i));
        }

        // Sleep until the earliest frame deadline (or the drain or
        // accept-backoff deadline), a socket event, or a wakeup byte.
        // Deadlines of write-backlogged connections are excluded: the
        // reactor is refusing to read the rest of their frames, so
        // running their completion clock would both reap them unfairly
        // and spin the loop once the deadline passes.
        let mut wake_at = drain_deadline;
        if listener.is_some() {
            wake_at = earliest(wake_at, accept_backoff);
        }
        for conn in &conns {
            if !conn.write_backlogged() {
                wake_at = earliest(wake_at, conn.deadline);
            }
        }
        let timeout = if entered_drain {
            Some(Duration::ZERO)
        } else {
            wake_at.map(|t| t.saturating_duration_since(now))
        };
        if let Err(e) = poller.poll(timeout) {
            shared.log.warn("poll", format_args!("error={e}"));
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        if poller.readiness(wake_slot).readable {
            wake.drain();
        }

        // Accept burst.
        if let (Some(l), Some(slot)) = (&listener, listen_slot) {
            if poller.readiness(slot).any() && accept_burst(shared, l, &mut conns) {
                accept_backoff = Some(Instant::now() + ACCEPT_BACKOFF);
            }
        }

        // Service every connection: read & parse, drain outboxes,
        // write, reap deadlines, close the finished.
        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            match service_conn(shared, jobs, &mut conns[i], &poller, now) {
                Some(cause) => {
                    let conn = conns.swap_remove(i);
                    close_conn(shared, conn, &cause);
                }
                None => i += 1,
            }
        }

        if let Some(grace) = drain_deadline {
            if conns.is_empty() {
                return;
            }
            if Instant::now() >= grace {
                for conn in conns.drain(..) {
                    close_conn(shared, conn, &CloseCause::Dropped);
                }
                return;
            }
        }
    }
}

/// Accept until `WouldBlock`, shedding over-cap connections with one
/// typed `BUSY` frame. Returns `true` when a persistent accept
/// failure was hit and the caller should back the listener off.
fn accept_burst(shared: &Arc<Shared>, listener: &TcpListener, conns: &mut Vec<Conn>) -> bool {
    loop {
        let (stream, peer_addr) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionAborted | std::io::ErrorKind::ConnectionReset
                ) =>
            {
                // A connection that died between arrival and accept is
                // gone on its own; move on to the next one.
                shared.log.warn("accept", format_args!("error={e}"));
                continue;
            }
            Err(e) => {
                // Persistent failure (fd exhaustion and kin): the
                // listener stays readable through these, so returning
                // to poll immediately would spin at full CPU. Tell the
                // reactor to leave the listener unregistered briefly.
                shared.log.warn("accept", format_args!("error={e} backoff"));
                return true;
            }
        };
        let peer: Arc<str> = peer_addr.to_string().into();
        let max_conns = shared.config.max_conns;
        if max_conns > 0 && conns.len() >= max_conns {
            let e = ServeError::Busy(format!(
                "connection limit reached ({max_conns} open); retry shortly"
            ));
            if let Some(m) = &shared.metrics {
                m.record_error(ErrorCode::Busy);
                m.record_busy();
            }
            shared
                .log
                .info("busy", format_args!("peer={peer} cause=max_conns"));
            // The socket is fresh (empty send buffer) and still in
            // blocking mode, so this small frame cannot meaningfully
            // block; failure just means the peer is already gone.
            let _ = Frame::error(0, ErrorCode::Busy, &e.to_string()).write_to(&mut &stream);
            continue;
        }
        let _ = stream.set_nodelay(true);
        if let Err(e) = stream.set_nonblocking(true) {
            // The old core ignored socket-mode failures wholesale
            // (`let _ = stream.set_read_timeout(None)`) and went on
            // serving with a stale deadline; a socket this reactor
            // cannot switch to nonblocking is unservable — surface the
            // cause and drop it instead.
            shared
                .log
                .warn("accept", format_args!("peer={peer} nonblocking error={e}"));
            continue;
        }
        if let Some(m) = &shared.metrics {
            m.connection_opened();
        }
        shared.log.info("connect", format_args!("peer={peer}"));
        conns.push(Conn::new(stream, peer));
    }
}

/// One service pass over one connection. Returns the close cause when
/// the connection should be torn down.
fn service_conn(
    shared: &Arc<Shared>,
    jobs: &Arc<JobQueue>,
    conn: &mut Conn,
    poller: &Poller,
    now: Instant,
) -> Option<CloseCause> {
    let ready = conn.slot.map(|s| poller.readiness(s)).unwrap_or_default();
    if ready.error {
        return Some(CloseCause::Dropped);
    }
    let was_backlogged = conn.write_backlogged();

    if ready.readable && !conn.read_closed && !conn.write_backlogged() {
        match read_available(&conn.stream, &mut conn.acc, READ_BUDGET) {
            Ok((_, eof)) => {
                pump_frames(shared, jobs, conn, now);
                if eof {
                    // Half-close: stop reading, but replies to frames
                    // already parsed still flush (a client may write
                    // its requests, shut down its write side and read
                    // every reply back).
                    conn.read_closed = true;
                    conn.abandon_partial_frame();
                }
            }
            Err(_) => return Some(CloseCause::Dropped),
        }
    }

    // Release worker replies that are next in sequence order.
    if conn.chan.is_dirty() {
        for reply in conn.chan.take_in_order(&mut conn.next_release) {
            conn.wire_bytes += reply.bytes.len();
            conn.wire.push_back(WireReply { reply, cursor: 0 });
        }
    }
    // Push the wire queue whether or not POLLOUT fired: most replies
    // go out on the first attempt without ever registering for write.
    if !conn.wire.is_empty() {
        let Conn {
            ref stream,
            ref mut wire,
            ref mut wire_bytes,
            ref mut inflight,
            ..
        } = *conn;
        let metrics = shared.metrics.as_deref();
        let progress = write_queue(stream, wire, |reply| {
            *wire_bytes = wire_bytes.saturating_sub(reply.bytes.len());
            if let Some(m) = metrics {
                m.record_frame_out(reply.bytes.len() as u64);
            }
            if reply.admission.is_some() {
                *inflight = inflight.saturating_sub(1);
            }
        });
        match progress {
            WriteProgress::Drained | WriteProgress::Blocked => {}
            WriteProgress::Broken => return Some(CloseCause::Dropped),
            WriteProgress::CloseRequested => return Some(CloseCause::Done),
        }
    }

    // Frame-completion deadline: the peer started a frame and never
    // finished it (stall or byte-drip) — reap, releasing the parked
    // mesh guard a stalled peer would otherwise pin. The clock only
    // runs while the reactor is willing to read: a pass that touched
    // a write-backlogged state (including the pass whose write drain
    // just cleared it — reads resume one pass later) re-arms the
    // deadline instead, so the throttle window is never counted
    // against the peer's frame-completion time.
    if let Some(deadline) = conn.deadline {
        if was_backlogged || conn.write_backlogged() {
            conn.deadline = Some(now + shared.config.read_timeout);
        } else if now >= deadline {
            return Some(CloseCause::Reaped);
        }
    }

    if conn.read_closed && conn.fully_replied() {
        return Some(CloseCause::Done);
    }
    None
}

/// Parse every complete frame buffered on `conn`, admitting each to
/// the worker pool or answering typed `BUSY`/stream errors in place.
fn pump_frames(shared: &Arc<Shared>, jobs: &Arc<JobQueue>, conn: &mut Conn, now: Instant) {
    loop {
        match conn.acc.step(conn.header.as_ref()) {
            FrameStep::NeedMore => return,
            FrameStep::Header(header) => {
                // A header means the frame is certainly coming: arm
                // the completion deadline and, for mesh-bound opcodes,
                // raise the adaptive-flush count so concurrent
                // submitters wait to coalesce with this request.
                conn.header_at = Some(now);
                if shared.config.read_timeout > Duration::ZERO {
                    conn.deadline = Some(now + shared.config.read_timeout);
                }
                if header.mesh_bound() {
                    conn.mesh_guard = Some(MeshInflightGuard::acquire(shared));
                }
                conn.header = Some(header);
            }
            FrameStep::Frame(frame) => {
                conn.header = None;
                conn.deadline = None;
                admit_frame(shared, jobs, conn, frame, now);
            }
            FrameStep::Violation(e) => {
                // Framing is unrecoverable: typed error (sequenced
                // after the replies of every valid frame before it),
                // then close once it has flushed.
                conn.abandon_partial_frame();
                if let Some(m) = &shared.metrics {
                    m.record_error(e.code());
                }
                shared.log.info(
                    "error",
                    format_args!("peer={} code={} detail={e}", conn.peer, e.code().label()),
                );
                let seq = conn.next_assign;
                conn.next_assign += 1;
                conn.chan.push_reply(
                    seq,
                    Reply {
                        bytes: Frame::error(0, e.code(), &e.to_string()).to_bytes(),
                        admission: None,
                        close_after: true,
                    },
                );
                conn.read_closed = true;
                return;
            }
        }
    }
}

/// A complete frame: count it, check both backpressure gates, and
/// either hand it to the worker pool or answer typed `BUSY`.
fn admit_frame(
    shared: &Arc<Shared>,
    jobs: &Arc<JobQueue>,
    conn: &mut Conn,
    frame: Frame,
    now: Instant,
) {
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let op = Opcode::from_u8(frame.opcode);
    if let Some(m) = &shared.metrics {
        m.record_request(op);
        m.record_frame_in(frame_wire_bytes(frame.payload.len()));
    }
    let seq = conn.next_assign;
    conn.next_assign += 1;
    let header_at = conn.header_at.take().unwrap_or(now);
    let mesh_guard = conn.mesh_guard.take();

    let conn_cap = shared.config.conn_inflight;
    let global_cap = shared.config.max_inflight;
    let shed_cause = if conn_cap > 0 && conn.inflight >= conn_cap {
        Some(format!(
            "connection already has {} requests in flight (cap {conn_cap}); \
             read a reply before sending more",
            conn.inflight
        ))
    } else if global_cap > 0 && shared.admitted.load(Ordering::SeqCst) >= global_cap {
        Some(format!(
            "server is at its admission limit ({global_cap} requests in flight); retry shortly"
        ))
    } else {
        None
    };
    if let Some(cause) = shed_cause {
        // Shed: the request never reaches the batcher, the connection
        // stays usable, and the client sees a typed retryable error.
        drop(mesh_guard);
        let e = ServeError::Busy(cause);
        if let Some(m) = &shared.metrics {
            m.record_error(ErrorCode::Busy);
            m.record_busy();
        }
        shared.log.info(
            "busy",
            format_args!(
                "peer={} op={} id={}",
                conn.peer,
                op.map_or("unknown", Opcode::label),
                frame.request_id
            ),
        );
        // A sampled request still leaves a (minimal) trace of the shed.
        if let Some(tracer) = &shared.tracer {
            if let Ok((Some(ctx), _)) = TraceContext::strip(frame.status, &frame.payload) {
                if ctx.sampled {
                    let mut b = TraceBuilder::with_anchor(
                        ctx.id,
                        op.map_or("unknown", Opcode::label),
                        header_at,
                    );
                    b.attr(SpanId::ROOT, "origin", "client");
                    b.attr(SpanId::ROOT, "shed", "busy");
                    let read = b.record(SpanId::ROOT, "frame_read", 0, span_ns(header_at, now));
                    b.attr(read, "bytes", frame_wire_bytes(frame.payload.len()));
                    tracer.record(b.finish());
                }
            }
        }
        conn.chan.push_reply(
            seq,
            Reply {
                bytes: Frame::error(frame.request_id, ErrorCode::Busy, &e.to_string()).to_bytes(),
                admission: None,
                close_after: false,
            },
        );
        return;
    }

    shared.admitted.fetch_add(1, Ordering::SeqCst);
    let admission = AdmissionSlot {
        shared: Arc::clone(shared),
    };
    conn.inflight += 1;
    jobs.push(Job {
        chan: Arc::clone(&conn.chan),
        seq,
        frame,
        peer: Arc::clone(&conn.peer),
        header_at,
        frame_done_at: now,
        admission,
        mesh_guard,
    });
}

/// Tear one connection down: mark the outbox closed (late worker
/// replies are dropped, their admission slots released), balance the
/// gauge and log the disconnect.
fn close_conn(shared: &Arc<Shared>, conn: Conn, cause: &CloseCause) {
    conn.chan.close();
    if let CloseCause::Reaped = cause {
        if let Some(m) = &shared.metrics {
            m.record_reap();
        }
        shared.log.info(
            "reap",
            format_args!(
                "peer={} timeout_ms={}",
                conn.peer,
                shared.config.read_timeout.as_millis()
            ),
        );
    }
    if let Some(m) = &shared.metrics {
        m.connection_closed();
    }
    shared
        .log
        .info("disconnect", format_args!("peer={}", conn.peer));
    // `conn` drops here: wire queue (and any admission slots inside),
    // parked mesh guard, and the socket itself.
}

/// Worker side: run one admitted request end to end and park its reply
/// in the connection's outbox.
fn process_job(shared: &Arc<Shared>, job: Job) {
    let Job {
        chan,
        seq,
        frame,
        peer,
        header_at,
        frame_done_at,
        admission,
        mesh_guard,
    } = job;
    let op = Opcode::from_u8(frame.opcode);
    let request_id = frame.request_id;
    // Split off the trace-context prefix (if any) before the payload
    // reaches any handler; a malformed prefix is a request-level error
    // (typed reply, connection kept).
    let stripped = TraceContext::strip(frame.status, &frame.payload);
    let (trace_ctx, body) = match &stripped {
        Ok((ctx, body)) => (*ctx, *body),
        Err(_) => (None, &frame.payload[..]),
    };
    // Span recording is armed when the client asked for sampling, or
    // for mesh-bound requests whenever slow capture is on (a slow
    // request can only land in the slow buffer if its spans were
    // built). Untraced requests skip every span site on a `None` check.
    let mesh_bound = matches!(op, Some(Opcode::Encode | Opcode::Decode));
    let mut tb = match &shared.tracer {
        Some(_)
            if trace_ctx.is_some_and(|c| c.sampled)
                || (mesh_bound && shared.config.slow_threshold > Duration::ZERO) =>
        {
            let (id, origin) = match trace_ctx {
                Some(c) => (c.id, "client"),
                None => (
                    SELF_TRACE_ID_BASE | shared.self_trace_seq.fetch_add(1, Ordering::Relaxed),
                    "slow",
                ),
            };
            let mut b =
                TraceBuilder::with_anchor(id, op.map_or("unknown", Opcode::label), header_at);
            b.attr(SpanId::ROOT, "origin", origin);
            let read = b.record(
                SpanId::ROOT,
                "frame_read",
                0,
                span_ns(header_at, frame_done_at),
            );
            b.attr(read, "bytes", frame_wire_bytes(frame.payload.len()));
            Some(b)
        }
        _ => None,
    };
    let outcome = match stripped {
        Ok(_) => dispatch(shared, op, frame.opcode, body, mesh_guard, &mut tb),
        Err(e) => {
            drop(mesh_guard);
            Err(e)
        }
    };
    let reply = match outcome {
        Ok((op, payload)) => Frame::reply(op, request_id, payload),
        Err(e) => {
            if let Some(m) = &shared.metrics {
                m.record_error(e.code());
            }
            shared.log.info(
                "error",
                format_args!("peer={peer} code={} detail={e}", e.code().label()),
            );
            Frame::error(request_id, e.code(), &e.to_string())
        }
    };
    // Serialize here (the reply_write span covers building the wire
    // bytes and handing them to the reactor; the socket write itself
    // is asynchronous). An over-limit reply (InvalidInput) is a
    // request-level outcome: tell the client with a typed frame.
    let write_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "reply_write"));
    let mut wire = Vec::with_capacity(HEADER_LEN + reply.payload.len() + 4);
    let mut reply_payload_len = reply.payload.len();
    if let Err(e) = reply.write_to(&mut wire) {
        wire.clear();
        let fallback = Frame::error(request_id, ErrorCode::Internal, &e.to_string());
        reply_payload_len = fallback.payload.len();
        fallback
            .write_to(&mut wire)
            .expect("error frames are always under the payload limit");
    }
    if let (Some(b), Some(s)) = (tb.as_mut(), write_span) {
        b.end(s);
        b.attr(s, "bytes", frame_wire_bytes(reply_payload_len));
    }
    // Finish and record the trace *before* parking the reply: a client
    // that sends TRACE right after receiving this reply on the same
    // connection is guaranteed to find its trace.
    if let Some(b) = tb.take() {
        let trace = b.finish();
        let slow = shared.config.slow_threshold;
        if slow > Duration::ZERO
            && trace.duration_ns() >= u64::try_from(slow.as_nanos()).unwrap_or(u64::MAX)
        {
            use std::fmt::Write as _;
            let mut stages = String::new();
            for i in trace.children(0) {
                let s = &trace.spans[i];
                let _ = write!(stages, " {}={}", s.name, fmt_ns(s.duration_ns()));
            }
            shared.log.warn(
                "slow",
                format_args!(
                    "peer={peer} id={} op={} total={}{stages}",
                    trace.id_hex(),
                    trace.name(),
                    fmt_ns(trace.duration_ns()),
                ),
            );
        }
        if let Some(tracer) = &shared.tracer {
            tracer.record(trace);
        }
    }
    let latency_ns = elapsed_ns(frame_done_at);
    if let Some(m) = &shared.metrics {
        m.record_latency(op, latency_ns);
    }
    shared.log.debug(
        "request",
        format_args!(
            "peer={peer} op={} id={request_id} latency_ns={latency_ns}",
            op.map_or("unknown", Opcode::label)
        ),
    );
    let delivered = chan.push_reply(
        seq,
        Reply {
            bytes: wire,
            admission: Some(Box::new(admission)),
            close_after: false,
        },
    );
    if delivered {
        shared.waker.wake();
    }
    // !delivered: the connection died while we worked; the reply is
    // dropped and the admission slot released right here.
}

/// Route one well-framed request; every failure comes back typed.
/// `inflight` is the request's adaptive-flush count guard (held only
/// by mesh-bound opcodes) — the encode/decode handlers release it at
/// submission time, everything else drops it on entry. `payload` is
/// the request body with any trace-context prefix already stripped;
/// `tb` is the request's span builder (`None` unless sampled).
fn dispatch(
    shared: &Shared,
    op: Option<Opcode>,
    opcode_byte: u8,
    payload: &[u8],
    inflight: Option<MeshInflightGuard>,
    tb: &mut Option<TraceBuilder>,
) -> Result<(Opcode, Vec<u8>)> {
    match op {
        Some(Opcode::Encode) => handle_encode(shared, payload, inflight, tb),
        Some(Opcode::Decode) => handle_decode(shared, payload, inflight, tb),
        Some(Opcode::LoadModel) => {
            let id = shared.store.insert_bytes(payload)?;
            Ok((Opcode::LoadModel, id.to_le_bytes().to_vec()))
        }
        Some(Opcode::Info) => handle_info(shared, payload),
        Some(Opcode::ListModels) => {
            if !payload.is_empty() {
                return Err(ServeError::BadRequest(format!(
                    "LIST_MODELS takes no payload, got {} bytes",
                    payload.len()
                )));
            }
            let entries = shared.store.list()?;
            Ok((
                Opcode::ListModels,
                crate::protocol::model_list_to_payload(&entries),
            ))
        }
        Some(Opcode::Stats) => {
            if !payload.is_empty() {
                return Err(ServeError::BadRequest(format!(
                    "STATS takes no payload, got {} bytes",
                    payload.len()
                )));
            }
            let m = shared.metrics.as_ref().ok_or_else(|| {
                ServeError::BadRequest(
                    "metrics are disabled on this server (started with --no-metrics)".into(),
                )
            })?;
            Ok((Opcode::Stats, m.stats_json().into_bytes()))
        }
        Some(Opcode::Trace) => handle_trace(shared, payload),
        _ => Err(ServeError::BadRequest(format!(
            "opcode {opcode_byte:#04x} names no request this build understands"
        ))),
    }
}

/// The `TRACE` RPC: recent or slow captured traces as JSON, optionally
/// filtered to one id.
fn handle_trace(shared: &Shared, payload: &[u8]) -> Result<(Opcode, Vec<u8>)> {
    let tracer = shared.tracer.as_ref().ok_or_else(|| {
        ServeError::BadRequest(
            "tracing is disabled on this server (started with --no-tracing)".into(),
        )
    })?;
    let (slow, id) = parse_trace_request(payload)?;
    let mut traces = if slow { tracer.slow() } else { tracer.recent() };
    if let Some(id) = id {
        traces.retain(|t| t.id == id);
    }
    Ok((Opcode::Trace, qn_trace::traces_json(&traces).into_bytes()))
}

fn handle_encode(
    shared: &Shared,
    payload: &[u8],
    inflight: Option<MeshInflightGuard>,
    tb: &mut Option<TraceBuilder>,
) -> Result<(Opcode, Vec<u8>)> {
    let parse_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "parse"));
    let req = EncodeRequest::from_payload(payload)?;
    if let (Some(b), Some(s)) = (tb.as_mut(), parse_span) {
        b.end(s);
    }
    let codec: Arc<Codec> = if req.flags & ENC_FLAG_USE_MODEL_ID != 0 {
        shared.store.get(req.model_id)?
    } else {
        let spectral_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "spectral"));
        let t = Instant::now();
        let codec = Arc::new(Codec::spectral_for_image(
            &req.image,
            req.tile_size as usize,
            req.latent_dim as usize,
        )?);
        if let Some(m) = &shared.metrics {
            m.record_spectral_ns(elapsed_ns(t));
        }
        if let (Some(b), Some(s)) = (tb.as_mut(), spectral_span) {
            b.end(s);
        }
        codec
    };
    let opts = CodecOptions {
        tile_size: req.tile_size as usize,
        bits: req.bits,
        per_tile_scale: req.flags & ENC_FLAG_PER_TILE_SCALE != 0,
        inline_model: req.flags & ENC_FLAG_INLINE_MODEL != 0,
        backend: shared.config.backend,
        entropy: req.entropy,
    };
    let eager = submitting_alone(shared, inflight);
    let (bytes, _, timings) = shared
        .batcher
        .encode_hinted_traced(&codec, &req.image, &opts, eager, tb)?;
    if let Some(m) = &shared.metrics {
        m.record_encode_timings(&timings);
        m.record_coded_bytes(req.entropy, bytes.len() as u64);
    }
    Ok((Opcode::Encode, bytes))
}

/// The adaptive-flush test, evaluated at submission time: release this
/// request's own in-flight count (its tiles are about to be in the
/// batcher — it is no longer "incoming"), then ask whether any *other*
/// mesh-bound request is still between its frame header and its own
/// submission. If not, nothing can be coalesced with and the batch
/// flushes eagerly — so a solo client never pays the deadline, and in
/// overlapping pairs the *last* submitter flushes the merged group
/// (the count it waited on was released by the earlier submitter).
/// Racing is benign in both directions: a header arriving just after
/// the load only loses one coalescing opportunity, never correctness
/// (backends are bit-identical per vector regardless of batch
/// composition).
fn submitting_alone(shared: &Shared, inflight: Option<MeshInflightGuard>) -> bool {
    drop(inflight);
    shared.inflight.load(Ordering::SeqCst) == 0
}

/// Most pixels a served decode may produce: the decoded image must fit
/// one reply frame (`8 bytes/pixel + the 8-byte image header`). This
/// also bounds the parse itself — a crafted header can otherwise
/// declare hundreds of millions of (empty) tiles inside a small
/// payload and drive multi-GB allocations before any reply is built.
const MAX_DECODE_PIXELS: u64 = ((crate::protocol::MAX_PAYLOAD - 8) / 8) as u64;

/// Reject container bytes whose *declared* image dimensions exceed the
/// serving limit, reading only the fixed-offset header fields — called
/// before `Container::from_bytes` so the tile vector of an
/// allocation-bomb header is never materialised. Applies only to
/// structurally authentic bytes (magic, length and CRC check out);
/// anything else passes through for the full parser's precise typed
/// error.
fn check_container_dims(payload: &[u8]) -> Result<()> {
    use qn_codec::bitstream::crc32;
    if payload.len() < 40 || payload[..4] != qn_codec::container::CONTAINER_MAGIC {
        return Ok(());
    }
    let (body, crc_bytes) = payload.split_at(payload.len() - 4);
    if u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes")) != crc32(body) {
        return Ok(());
    }
    let width = u64::from(u32::from_le_bytes(
        payload[16..20].try_into().expect("4 bytes"),
    ));
    let height = u64::from(u32::from_le_bytes(
        payload[20..24].try_into().expect("4 bytes"),
    ));
    if width.saturating_mul(height) > MAX_DECODE_PIXELS {
        return Err(ServeError::BadRequest(format!(
            "container declares a {width}x{height} image; this server decodes at most \
             {MAX_DECODE_PIXELS} pixels per request (the reply-frame limit)"
        )));
    }
    Ok(())
}

fn handle_decode(
    shared: &Shared,
    payload: &[u8],
    inflight: Option<MeshInflightGuard>,
    tb: &mut Option<TraceBuilder>,
) -> Result<(Opcode, Vec<u8>)> {
    check_container_dims(payload)?;
    let parse_span = tb.as_mut().map(|b| b.begin(SpanId::ROOT, "parse"));
    let t = Instant::now();
    let container = Container::from_bytes(payload)?;
    let parse_ns = elapsed_ns(t);
    if let (Some(b), Some(s)) = (tb.as_mut(), parse_span) {
        b.end(s);
    }
    let codec: Arc<Codec> = if container.header.inline_model() {
        Arc::new(codec_from_inline(&container)?)
    } else {
        shared.store.get(container.header.model_id)?
    };
    codec.check_container(&container)?;
    let eager = submitting_alone(shared, inflight);
    let (img, mut timings) = shared
        .batcher
        .decode_hinted_traced(&codec, &container, eager, tb)?;
    if let Some(m) = &shared.metrics {
        timings.parse_ns = parse_ns;
        m.record_decode_timings(&timings);
        if let Ok(coder) = container.header.entropy() {
            m.record_decoded_bytes(coder, payload.len() as u64);
        }
    }
    Ok((Opcode::Decode, image_to_payload(&img)))
}

fn handle_info(shared: &Shared, payload: &[u8]) -> Result<(Opcode, Vec<u8>)> {
    let json = if payload.is_empty() {
        server_info_json(shared)
    } else {
        // INFO parses containers too — same header-bomb guard as DECODE.
        if payload.starts_with(&qn_codec::container::CONTAINER_MAGIC) {
            check_container_dims(payload)?;
        }
        info::file_info_json(payload)?
    };
    Ok((Opcode::Info, json.into_bytes()))
}

/// Server status as single-line JSON (the empty-payload `INFO` reply).
fn server_info_json(shared: &Shared) -> String {
    let store_dir = match shared.store.dir() {
        Some(d) => format!(
            "\"{}\"",
            d.display()
                .to_string()
                .replace('\\', "\\\\")
                .replace('"', "\\\"")
        ),
        None => "null".into(),
    };
    format!(
        "{{\"format\":\"qn-serve\",\"protocol_version\":{PROTOCOL_VERSION},\
         \"server_version\":\"{}\",\"uptime_secs\":{},\"metrics\":{},\
         \"tracing\":{},\"slow_ms\":{},\
         \"backend\":\"{}\",\"batch_tiles\":{},\"batch_deadline_ms\":{},\
         \"coalescing\":{},\"adaptive_flush\":true,\"read_timeout_ms\":{},\
         \"workers\":{},\"max_inflight\":{},\"conn_inflight\":{},\"max_conns\":{},\
         \"models_cached\":{},\"store_dir\":{store_dir},\
         \"requests_served\":{}}}",
        env!("CARGO_PKG_VERSION"),
        shared.started.elapsed().as_secs(),
        shared.metrics.is_some(),
        shared.tracer.is_some(),
        shared.config.slow_threshold.as_millis(),
        shared.config.backend,
        shared.config.batch_tiles,
        shared.config.batch_deadline.as_millis(),
        shared.batcher.coalesces(),
        shared.config.read_timeout.as_millis(),
        shared.config.workers,
        shared.config.max_inflight,
        shared.config.conn_inflight,
        shared.config.max_conns,
        shared.store.cached_len(),
        shared.requests.load(Ordering::Relaxed),
    )
}
