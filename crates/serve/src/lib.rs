//! `qn-serve` — a long-running batching codec server.
//!
//! The offline `qnc` CLI pays the full model-build and dispatch cost on
//! every invocation and batches mesh passes only *within* one image.
//! This crate turns the codec into a service, the shape the companion
//! work "Quantum Sparse Coding and Decoding Based on Quantum Network"
//! (Ji et al., 2024) frames for the same mesh: one hot decoder shared
//! by many encoded payloads.
//!
//! - [`protocol`] — the length-prefixed, versioned, CRC-checked binary
//!   frame format (`ENCODE`/`DECODE`/`LOAD_MODEL`/`INFO`, typed error
//!   replies, hard frame-size limits);
//! - [`store`] — the content-addressed model zoo: a directory of
//!   `.qnm` files keyed by model id with an LRU-bounded in-memory
//!   cache, so `.qnc` containers referencing a known model id decode
//!   without inline models;
//! - [`batcher`] — the micro-batching core: tiles from *concurrent
//!   requests* are coalesced into single
//!   [`PanelBackend`](qn_backend::PanelBackend) passes (flush on
//!   batch-full or a small deadline), sound because backends are
//!   bit-identical per vector regardless of batch composition;
//! - [`reactor`] — the event-driven connection plumbing: a `poll(2)`
//!   wrapper (two-symbol FFI, no async runtime in this offline
//!   environment), a wakeup pipe, the per-connection incremental frame
//!   state machine and the sequence-ordered reply outbox;
//! - [`server`] — the connection core: one reactor thread owns every
//!   socket (10k+ idle connections cost no threads), complete frames
//!   are admission-checked (global and per-connection in-flight caps
//!   answer typed `BUSY` instead of queueing unboundedly) and handed
//!   to a bounded worker pool;
//! - [`client`] — the blocking client used by `qnc remote` and tests;
//! - [`metrics`] — the server's telemetry catalogue over
//!   [`qn_metrics`]: per-opcode request/error counters, latency and
//!   codec-stage histograms, batcher flush causes, zoo hit rates —
//!   served over the `STATS` RPC;
//! - [`log`] — leveled, timestamped single-line stderr logging for the
//!   `qnc serve` process.
//!
//! Per-request **span tracing** ([`qn_trace`]) rides the same wire: a
//! client sets `REQ_STATUS_TRACED` and prefixes its payload with a
//! 9-byte trace context (id + sampled flag), the server records the
//! request's span tree (frame read, batcher wait with flush cause,
//! mesh pass, codec stages, reply write) and serves it back over the
//! `TRACE` RPC. Tracing never changes reply bytes, and untraced
//! requests pay one branch per span site.
//!
//! Responses are **byte-identical** to offline `qnc` runs with the
//! same model and options: the serve path reuses the codec's
//! `prepare_*`/`complete_*` pipeline halves around the shared mesh
//! pass, and the integration suite pins the equality.

pub mod batcher;
pub mod client;
pub mod error;
pub mod log;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod store;

pub use batcher::TileBatcher;
pub use client::Client;
pub use error::ServeError;
pub use log::{LogLevel, Logger};
pub use metrics::ServeMetrics;
pub use protocol::{
    ErrorCode, Frame, Opcode, TraceContext, PROTOCOL_VERSION, REQ_STATUS_TRACED, TRACE_FLAG_SAMPLED,
};
pub use server::{spawn, ServerConfig, ServerHandle};
pub use store::{ModelStore, StoreMetrics};
