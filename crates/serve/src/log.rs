//! Minimal structured logging for the server: timestamped,
//! single-line events on stderr behind a [`LogLevel`], replacing
//! ad-hoc `eprintln!`. One line per event keeps server output
//! machine-greppable:
//!
//! ```text
//! 2026-08-07T12:34:56Z info reap peer=127.0.0.1:51234 timeout_ms=30000
//! ```
//!
//! Timestamps are UTC, derived from [`SystemTime`] with a hand-rolled
//! civil-date conversion (no chrono in the offline build). Zero cost
//! when disabled: every call first checks the level, and `Off` is the
//! library default so embedded servers (tests, benches) stay silent.

use std::fmt;
use std::time::{SystemTime, UNIX_EPOCH};

/// Server log verbosity. Ordered: `Off < Warn < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// No log output (the library default).
    Off,
    /// Only warnings (e.g. slow-request lines from `--slow-ms`).
    Warn,
    /// Warnings plus connection lifecycle: reaps and request errors,
    /// connect/disconnect.
    Info,
    /// Everything above plus per-request completion lines.
    Debug,
}

impl LogLevel {
    /// Parse a CLI flag value (`off`/`warn`/`info`/`debug`).
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s {
            "off" => Some(LogLevel::Off),
            "warn" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" => Some(LogLevel::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LogLevel::Off => "off",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        })
    }
}

/// A leveled stderr logger. Copyable; carries only the level.
#[derive(Debug, Clone, Copy)]
pub struct Logger {
    level: LogLevel,
}

impl Logger {
    /// A logger emitting events at or below `level`.
    pub const fn new(level: LogLevel) -> Logger {
        Logger { level }
    }

    /// The configured verbosity.
    pub fn level(&self) -> LogLevel {
        self.level
    }

    /// Whether events at `level` are emitted.
    pub fn enabled(&self, level: LogLevel) -> bool {
        level != LogLevel::Off && level <= self.level
    }

    /// Emit a warn-level event line (visible at every level but
    /// `off`).
    pub fn warn(&self, event: &str, detail: fmt::Arguments<'_>) {
        self.emit(LogLevel::Warn, event, detail);
    }

    /// Emit an info-level event line.
    pub fn info(&self, event: &str, detail: fmt::Arguments<'_>) {
        self.emit(LogLevel::Info, event, detail);
    }

    /// Emit a debug-level event line.
    pub fn debug(&self, event: &str, detail: fmt::Arguments<'_>) {
        self.emit(LogLevel::Debug, event, detail);
    }

    fn emit(&self, level: LogLevel, event: &str, detail: fmt::Arguments<'_>) {
        if self.enabled(level) {
            eprintln!("{} {level} {event} {detail}", format_utc(SystemTime::now()));
        }
    }
}

/// Render a [`SystemTime`] as `YYYY-MM-DDTHH:MM:SSZ` (UTC, second
/// resolution). Pre-epoch times clamp to the epoch.
pub fn format_utc(t: SystemTime) -> String {
    let secs = t.duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs()) as i64;
    let (days, rem) = (secs.div_euclid(86_400), secs.rem_euclid(86_400));
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm): days since
    // 1970-01-01 → proleptic Gregorian (y, m, d).
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn at(epoch_secs: u64) -> String {
        format_utc(UNIX_EPOCH + Duration::from_secs(epoch_secs))
    }

    #[test]
    fn utc_formatting_matches_known_instants() {
        assert_eq!(at(0), "1970-01-01T00:00:00Z");
        assert_eq!(at(86_399), "1970-01-01T23:59:59Z");
        assert_eq!(at(86_400), "1970-01-02T00:00:00Z");
        // One famous round number and one leap-day crossing.
        assert_eq!(at(1_000_000_000), "2001-09-09T01:46:40Z");
        assert_eq!(at(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(at(951_868_800), "2000-03-01T00:00:00Z");
        // Non-leap century year: 2100-02-28 + 1 day is March 1st.
        assert_eq!(at(4_107_456_000), "2100-02-28T00:00:00Z");
        assert_eq!(at(4_107_542_400), "2100-03-01T00:00:00Z");
    }

    #[test]
    fn levels_parse_display_and_gate() {
        for (s, l) in [
            ("off", LogLevel::Off),
            ("warn", LogLevel::Warn),
            ("info", LogLevel::Info),
            ("debug", LogLevel::Debug),
        ] {
            assert_eq!(LogLevel::parse(s), Some(l));
            assert_eq!(l.to_string(), s);
        }
        assert_eq!(LogLevel::parse("verbose"), None);
        let off = Logger::new(LogLevel::Off);
        assert!(!off.enabled(LogLevel::Info));
        assert!(!off.enabled(LogLevel::Warn));
        assert!(!off.enabled(LogLevel::Off), "Off events never emit");
        let warn = Logger::new(LogLevel::Warn);
        assert!(warn.enabled(LogLevel::Warn));
        assert!(!warn.enabled(LogLevel::Info));
        let info = Logger::new(LogLevel::Info);
        assert!(info.enabled(LogLevel::Info));
        assert!(info.enabled(LogLevel::Warn), "warnings show at info");
        assert!(!info.enabled(LogLevel::Debug));
        let debug = Logger::new(LogLevel::Debug);
        assert!(debug.enabled(LogLevel::Info));
        assert!(debug.enabled(LogLevel::Debug));
    }
}
