//! The micro-batching core: request-level encode/decode built from the
//! codec's `prepare_*`/`complete_*` halves with the mesh pass routed
//! through a shared [`qn_backend::MeshBatcher`], so tiles from
//! concurrent requests coalesce into single backend passes.
//!
//! Soundness rests on two contracts proven elsewhere: backends are
//! bit-identical per vector regardless of batch composition
//! (`qn_backend`'s equivalence contract), and model ids are
//! content-addressed (`qn_codec::model::model_id`), so two requests
//! batched under the same [`BatchKey`] are guaranteed to reference
//! bit-identical meshes. Together they make coalescing invisible:
//! every response is byte-identical to an offline run.

use crate::error::{Result, ServeError};
use qn_backend::{BackendKind, BatchKey, BatcherMetrics, MeshBatcher, MeshSource};
use qn_codec::{Codec, CodecOptions, Container, DecodeTimings, EncodeStats, EncodeTimings};
use qn_image::GrayImage;
use qn_photonic::Mesh;
use qn_trace::{SpanId, TraceBuilder};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Saturating nanoseconds since `t` (mirrors the codec's convention).
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Lane for the compression mesh (`U_C` forward) in [`BatchKey`]s.
const LANE_COMPRESS: u8 = 0;
/// Lane for the reconstruction mesh (`U_R` forward).
const LANE_RECONSTRUCT: u8 = 1;

/// Keeps a codec's compression mesh alive for the batcher.
struct CompressMesh(Arc<Codec>);

impl MeshSource for CompressMesh {
    fn mesh(&self) -> &Mesh {
        self.0.model().compression.mesh()
    }
}

/// Keeps a codec's reconstruction mesh alive for the batcher.
struct ReconstructMesh(Arc<Codec>);

impl MeshSource for ReconstructMesh {
    fn mesh(&self) -> &Mesh {
        self.0.model().reconstruction.mesh()
    }
}

/// Request-level batching façade over [`MeshBatcher`]: whole-image
/// encode/decode whose mesh passes may share backend batches with
/// other requests in flight.
#[derive(Debug)]
pub struct TileBatcher {
    inner: MeshBatcher,
}

impl TileBatcher {
    /// A batcher flushing through `backend` when a (model, mesh) group
    /// reaches `max_tiles` or has waited `deadline`. A zero deadline
    /// (or `max_tiles <= 1`) degrades to per-request dispatch.
    pub fn new(backend: BackendKind, max_tiles: usize, deadline: Duration) -> Self {
        TileBatcher::with_metrics(backend, max_tiles, deadline, None)
    }

    /// [`TileBatcher::new`] with optional flush telemetry (batch-size
    /// histogram and per-cause flush counters).
    pub fn with_metrics(
        backend: BackendKind,
        max_tiles: usize,
        deadline: Duration,
        metrics: Option<BatcherMetrics>,
    ) -> Self {
        TileBatcher {
            inner: MeshBatcher::with_metrics(backend, max_tiles, deadline, metrics),
        }
    }

    /// The backend every flush runs through.
    pub fn backend(&self) -> BackendKind {
        self.inner.backend()
    }

    /// Whether tiles may coalesce across requests.
    pub fn coalesces(&self) -> bool {
        self.inner.coalesces()
    }

    /// Encode `img` with `codec`, the mesh pass batched across
    /// requests. Byte-identical to [`Codec::encode_image_with_stats`].
    ///
    /// # Errors
    /// Codec validation/serialisation errors; [`ServeError::Internal`]
    /// if the batcher is torn down mid-request.
    pub fn encode(
        &self,
        codec: &Arc<Codec>,
        img: &GrayImage,
        opts: &CodecOptions,
    ) -> Result<(Vec<u8>, EncodeStats)> {
        self.encode_hinted(codec, img, opts, false)
    }

    /// [`TileBatcher::encode`] with an eager-flush hint: pass `true`
    /// when the caller knows no other request is in flight (the
    /// server's adaptive flush), so a solo request never pays the
    /// batch deadline. Bytes are identical either way.
    ///
    /// # Errors
    /// See [`TileBatcher::encode`].
    pub fn encode_hinted(
        &self,
        codec: &Arc<Codec>,
        img: &GrayImage,
        opts: &CodecOptions,
        eager: bool,
    ) -> Result<(Vec<u8>, EncodeStats)> {
        let (bytes, stats, _) = self.encode_hinted_timed(codec, img, opts, eager)?;
        Ok((bytes, stats))
    }

    /// [`TileBatcher::encode_hinted`] with per-stage wall-clock
    /// timings. `mesh_ns` covers submit → wait, so under load it
    /// includes batch queueing, not just the backend pass — that is the
    /// latency a request actually experiences. Bytes are identical.
    ///
    /// # Errors
    /// See [`TileBatcher::encode`].
    pub fn encode_hinted_timed(
        &self,
        codec: &Arc<Codec>,
        img: &GrayImage,
        opts: &CodecOptions,
        eager: bool,
    ) -> Result<(Vec<u8>, EncodeStats, EncodeTimings)> {
        self.encode_hinted_traced(codec, img, opts, eager, &mut None)
    }

    /// [`TileBatcher::encode_hinted_timed`] that additionally records
    /// the request's span tree into `tb` when tracing is on:
    /// `prepare`, a `batch_wait` span carrying `cause` and
    /// `batch_tiles` attributes (the flush attribution from
    /// [`qn_backend::BatchInfo`]), a `mesh_pass` child covering the
    /// shared backend pass, then retroactive `quantize`/`entropy`
    /// spans from the codec's stage timings. `tb = None` costs one
    /// branch per span site; the encoded bytes are identical either
    /// way (tracing reads clocks, never data).
    ///
    /// # Errors
    /// See [`TileBatcher::encode`].
    pub fn encode_hinted_traced(
        &self,
        codec: &Arc<Codec>,
        img: &GrayImage,
        opts: &CodecOptions,
        eager: bool,
        tb: &mut Option<TraceBuilder>,
    ) -> Result<(Vec<u8>, EncodeStats, EncodeTimings)> {
        let prep_span = tb.as_mut().map(|tb| tb.begin(SpanId::ROOT, "prepare"));
        let t = Instant::now();
        let (plan, states) = codec.prepare_encode(img, opts)?;
        let prepare_ns = elapsed_ns(t);
        if let (Some(tb), Some(s)) = (tb.as_mut(), prep_span) {
            tb.end(s);
        }
        let wait_span = tb
            .as_mut()
            .map(|tb| (tb.begin(SpanId::ROOT, "batch_wait"), tb.elapsed_ns()));
        let t = Instant::now();
        let handle = self.inner.submit_with(
            BatchKey {
                model: codec.model_id(),
                lane: LANE_COMPRESS,
            },
            Arc::new(CompressMesh(Arc::clone(codec))),
            states,
            eager,
        );
        let (outs, info) = handle
            .wait_info()
            .ok_or_else(|| ServeError::Internal("batcher torn down mid-encode".into()))?;
        let mesh_ns = elapsed_ns(t);
        if let (Some(tb), Some((s, submit_off))) = (tb.as_mut(), wait_span) {
            tb.end(s);
            tb.attr(s, "cause", info.cause.label());
            tb.attr(s, "batch_tiles", info.batch_tiles);
            let mesh_start = submit_off + info.queued_ns;
            let mesh = tb.record(s, "mesh_pass", mesh_start, mesh_start + info.run_ns);
            tb.attr(mesh, "backend", self.backend());
        }
        let complete_off = tb.as_ref().map(qn_trace::TraceBuilder::elapsed_ns);
        let (bytes, stats, mut timings) = codec.complete_encode_timed(plan, outs)?;
        timings.prepare_ns = prepare_ns;
        timings.mesh_ns = mesh_ns;
        if let (Some(tb), Some(c0)) = (tb.as_mut(), complete_off) {
            let q_end = c0 + timings.quantize_ns;
            tb.record(SpanId::ROOT, "quantize", c0, q_end);
            let e = tb.record(SpanId::ROOT, "entropy", q_end, q_end + timings.entropy_ns);
            tb.attr(e, "coder", opts.entropy);
            tb.attr(SpanId::ROOT, "tiles", stats.tiles);
        }
        Ok((bytes, stats, timings))
    }

    /// Decode a parsed container with `codec`, the mesh pass batched
    /// across requests. Byte-identical to [`Codec::decode_container`].
    ///
    /// # Errors
    /// Codec geometry errors; [`ServeError::Internal`] if the batcher
    /// is torn down mid-request.
    pub fn decode(&self, codec: &Arc<Codec>, container: &Container) -> Result<GrayImage> {
        self.decode_hinted(codec, container, false)
    }

    /// [`TileBatcher::decode`] with an eager-flush hint — see
    /// [`TileBatcher::encode_hinted`].
    ///
    /// # Errors
    /// See [`TileBatcher::decode`].
    pub fn decode_hinted(
        &self,
        codec: &Arc<Codec>,
        container: &Container,
        eager: bool,
    ) -> Result<GrayImage> {
        Ok(self.decode_hinted_timed(codec, container, eager)?.0)
    }

    /// [`TileBatcher::decode_hinted`] with per-stage timings.
    /// `parse_ns` is left zero — the caller parsed the container and
    /// owns that measurement. `mesh_ns` covers submit → wait (includes
    /// batch queueing). Pixels are identical.
    ///
    /// # Errors
    /// See [`TileBatcher::decode`].
    pub fn decode_hinted_timed(
        &self,
        codec: &Arc<Codec>,
        container: &Container,
        eager: bool,
    ) -> Result<(GrayImage, DecodeTimings)> {
        self.decode_hinted_traced(codec, container, eager, &mut None)
    }

    /// [`TileBatcher::decode_hinted_timed`] with span recording — the
    /// decode analogue of [`TileBatcher::encode_hinted_traced`]:
    /// `prepare`, `batch_wait` (+`mesh_pass` child), `stitch`. Pixels
    /// are identical with tracing on or off.
    ///
    /// # Errors
    /// See [`TileBatcher::decode`].
    pub fn decode_hinted_traced(
        &self,
        codec: &Arc<Codec>,
        container: &Container,
        eager: bool,
        tb: &mut Option<TraceBuilder>,
    ) -> Result<(GrayImage, DecodeTimings)> {
        let prep_span = tb.as_mut().map(|tb| tb.begin(SpanId::ROOT, "prepare"));
        let t = Instant::now();
        let (plan, states) = codec.prepare_decode(container)?;
        let prepare_ns = elapsed_ns(t);
        if let (Some(tb), Some(s)) = (tb.as_mut(), prep_span) {
            tb.end(s);
        }
        let wait_span = tb
            .as_mut()
            .map(|tb| (tb.begin(SpanId::ROOT, "batch_wait"), tb.elapsed_ns()));
        let t = Instant::now();
        let handle = self.inner.submit_with(
            BatchKey {
                model: codec.model_id(),
                lane: LANE_RECONSTRUCT,
            },
            Arc::new(ReconstructMesh(Arc::clone(codec))),
            states,
            eager,
        );
        let (outs, info) = handle
            .wait_info()
            .ok_or_else(|| ServeError::Internal("batcher torn down mid-decode".into()))?;
        let mesh_ns = elapsed_ns(t);
        if let (Some(tb), Some((s, submit_off))) = (tb.as_mut(), wait_span) {
            tb.end(s);
            tb.attr(s, "cause", info.cause.label());
            tb.attr(s, "batch_tiles", info.batch_tiles);
            let mesh_start = submit_off + info.queued_ns;
            let mesh = tb.record(s, "mesh_pass", mesh_start, mesh_start + info.run_ns);
            tb.attr(mesh, "backend", self.backend());
        }
        let stitch_span = tb.as_mut().map(|tb| tb.begin(SpanId::ROOT, "stitch"));
        let t = Instant::now();
        let img = codec.complete_decode(plan, outs)?;
        let stitch_ns = elapsed_ns(t);
        if let (Some(tb), Some(s)) = (tb.as_mut(), stitch_span) {
            tb.end(s);
            tb.attr(SpanId::ROOT, "tiles", container.tiles.len());
        }
        Ok((
            img,
            DecodeTimings {
                parse_ns: 0,
                prepare_ns,
                mesh_ns,
                stitch_ns,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_image::datasets;

    fn fixture() -> (Arc<Codec>, GrayImage, CodecOptions) {
        let img = datasets::grayscale_blobs(1, 24, 16, 55).remove(0);
        let codec = Arc::new(Codec::spectral_for_image(&img, 4, 8).unwrap());
        let opts = CodecOptions::default();
        (codec, img, opts)
    }

    #[test]
    fn batched_encode_and_decode_match_offline_bytes() {
        let (codec, img, opts) = fixture();
        let offline = codec.encode_image(&img, &opts).unwrap();
        let offline_img = codec.decode_bytes(&offline).unwrap();

        let batcher = TileBatcher::new(BackendKind::Panel, 4096, Duration::from_millis(2));
        let (bytes, stats) = batcher.encode(&codec, &img, &opts).unwrap();
        assert_eq!(bytes, offline, "batched encode must be byte-identical");
        assert_eq!(stats.tiles, 24);
        let container = Container::from_bytes(&bytes).unwrap();
        let decoded = batcher.decode(&codec, &container).unwrap();
        assert_eq!(decoded, offline_img, "batched decode must be identical");
    }

    #[test]
    fn concurrent_requests_coalesce_without_cross_talk() {
        let (codec, img, opts) = fixture();
        let offline = codec.encode_image(&img, &opts).unwrap();
        let batcher = Arc::new(TileBatcher::new(
            BackendKind::Panel,
            1_000_000, // never batch-full: the deadline merges them
            Duration::from_millis(5),
        ));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let batcher = Arc::clone(&batcher);
                let codec = Arc::clone(&codec);
                let img = img.clone();
                let opts = opts.clone();
                std::thread::spawn(move || batcher.encode(&codec, &img, &opts).unwrap().0)
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), offline);
        }
    }

    #[test]
    fn per_request_mode_still_matches() {
        let (codec, img, opts) = fixture();
        let offline = codec.encode_image(&img, &opts).unwrap();
        let batcher = TileBatcher::new(BackendKind::Scalar, 4096, Duration::ZERO);
        assert!(!batcher.coalesces());
        assert_eq!(batcher.encode(&codec, &img, &opts).unwrap().0, offline);
    }
}
