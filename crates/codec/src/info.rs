//! Machine-readable descriptions of `.qnc` containers and `.qnm`
//! models — the single JSON producer behind `qnc info --json` and the
//! serving protocol's `INFO` reply, so tooling sees one schema no
//! matter which door it knocks on.
//!
//! The JSON is hand-assembled (the dependency set is frozen): flat
//! objects, stable key order, no floating-point fields — every value is
//! an integer, boolean, string or null, so the output is byte-stable
//! across platforms.

use crate::container::{Container, CONTAINER_MAGIC};
use crate::error::{CodecError, Result};
use crate::model::{self, MODEL_MAGIC, MODEL_VERSION};
use qn_core::QuantumAutoencoder;
use std::fmt::Write as _;

/// Fixed container-header length (bytes before any inline model).
const CONTAINER_HEADER_LEN: usize = 36;

/// Describe a `.qnc` container as a single-line JSON object.
/// `file_len` is the full file size in bytes (the container serialises
/// deterministically, so callers that only hold the parsed form can
/// pass `container.to_bytes()?.len()`).
pub fn container_info_json(container: &Container, file_len: usize) -> String {
    let h = &container.header;
    let inline_len = container.inline_model.as_ref().map(Vec::len);
    // Everything except header, inline-model segment (u32 length +
    // bytes), the payload length field and the trailing CRC is payload.
    let payload_len = file_len
        .saturating_sub(CONTAINER_HEADER_LEN)
        .saturating_sub(inline_len.map_or(0, |n| 4 + n))
        .saturating_sub(4 + 4);
    let mut s = String::with_capacity(256);
    s.push_str("{\"format\":\"qnc\"");
    let _ = write!(s, ",\"version\":{}", h.version);
    let _ = write!(s, ",\"model_id\":\"{:#018x}\"", h.model_id);
    let _ = write!(s, ",\"width\":{},\"height\":{}", h.width, h.height);
    let _ = write!(s, ",\"tile_size\":{}", h.tile_size);
    let _ = write!(
        s,
        ",\"tiles_x\":{},\"tiles_y\":{},\"tile_count\":{}",
        h.tiles_x(),
        h.tiles_y(),
        h.tile_count()
    );
    let _ = write!(s, ",\"latent_dim\":{},\"bits\":{}", h.latent_dim, h.bits);
    // Parsed containers always carry a consistent coder/version pair.
    let entropy = h.entropy().map_or("unknown".into(), |e| e.to_string());
    let _ = write!(s, ",\"entropy\":\"{entropy}\"");
    let _ = write!(s, ",\"per_tile_scale\":{}", h.per_tile_scale());
    match inline_len {
        Some(n) => {
            let _ = write!(s, ",\"inline_model_bytes\":{n}");
        }
        None => s.push_str(",\"inline_model_bytes\":null"),
    }
    let occupied = container.tiles.iter().filter(|t| t.is_some()).count();
    let _ = write!(s, ",\"occupied_tiles\":{occupied}");
    let _ = write!(s, ",\"payload_bytes\":{payload_len}");
    let _ = write!(s, ",\"file_bytes\":{file_len}");
    s.push('}');
    s
}

/// Describe a `.qnm` model as a single-line JSON object.
pub fn model_info_json(model: &QuantumAutoencoder, file_len: usize) -> String {
    let mut s = String::with_capacity(256);
    s.push_str("{\"format\":\"qnm\"");
    let _ = write!(s, ",\"version\":{MODEL_VERSION}");
    let _ = write!(s, ",\"model_id\":\"{:#018x}\"", model::model_id(model));
    let _ = write!(
        s,
        ",\"dim\":{},\"latent_dim\":{}",
        model.dim(),
        model.compression.compressed_dim()
    );
    let _ = write!(
        s,
        ",\"layers_c\":{},\"params_c\":{}",
        model.compression.mesh().n_layers(),
        model.compression.mesh().param_count()
    );
    let _ = write!(
        s,
        ",\"layers_r\":{},\"params_r\":{}",
        model.reconstruction.mesh().n_layers(),
        model.reconstruction.mesh().param_count()
    );
    let _ = write!(s, ",\"file_bytes\":{file_len}");
    s.push('}');
    s
}

/// Sniff `bytes` as a container or model file and describe it.
///
/// # Errors
/// [`CodecError::BadMagic`] for unrecognised leading bytes; otherwise
/// the respective parser's typed errors.
pub fn file_info_json(bytes: &[u8]) -> Result<String> {
    match bytes.get(..4) {
        Some(m) if m == CONTAINER_MAGIC => {
            let container = Container::from_bytes(bytes)?;
            Ok(container_info_json(&container, bytes.len()))
        }
        Some(m) if m == MODEL_MAGIC => {
            let model = model::decode_model(bytes)?;
            Ok(model_info_json(&model, bytes.len()))
        }
        _ => {
            let mut found = [0u8; 4];
            for (dst, src) in found.iter_mut().zip(bytes) {
                *dst = *src;
            }
            Err(CodecError::BadMagic {
                expected: CONTAINER_MAGIC,
                found,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Codec, CodecOptions};
    use qn_image::datasets;

    fn fixture() -> (Codec, Vec<u8>) {
        let img = datasets::grayscale_blobs(1, 16, 12, 31).remove(0);
        let codec = Codec::spectral_for_image(&img, 4, 8).unwrap();
        let bytes = codec.encode_image(&img, &CodecOptions::default()).unwrap();
        (codec, bytes)
    }

    #[test]
    fn container_info_reports_geometry_and_sizes() {
        let (codec, bytes) = fixture();
        let json = file_info_json(&bytes).unwrap();
        assert!(json.contains("\"format\":\"qnc\""), "{json}");
        assert!(json.contains("\"width\":16,\"height\":12"), "{json}");
        assert!(json.contains("\"tiles_x\":4,\"tiles_y\":3,\"tile_count\":12"));
        assert!(json.contains("\"latent_dim\":8,\"bits\":8"));
        assert!(json.contains("\"per_tile_scale\":false"));
        assert!(
            json.contains(&format!("\"model_id\":\"{:#018x}\"", codec.model_id())),
            "{json}"
        );
        assert!(json.contains(&format!("\"file_bytes\":{}", bytes.len())));
        // Payload accounting: header + inline segment + length fields +
        // payload + CRC must exactly cover the file.
        let container = Container::from_bytes(&bytes).unwrap();
        let inline = container.inline_model.as_ref().unwrap().len();
        let payload: usize = {
            let key = "\"payload_bytes\":";
            let at = json.find(key).unwrap() + key.len();
            json[at..]
                .split(|c: char| !c.is_ascii_digit())
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert_eq!(36 + 4 + inline + 4 + payload + 4, bytes.len());
    }

    #[test]
    fn model_info_reports_dimensions() {
        let (codec, _) = fixture();
        let model_bytes = crate::model::encode_model(codec.model());
        let json = file_info_json(&model_bytes).unwrap();
        assert!(json.contains("\"format\":\"qnm\""), "{json}");
        assert!(json.contains("\"dim\":16,\"latent_dim\":8"));
        assert!(json.contains(&format!("\"file_bytes\":{}", model_bytes.len())));
    }

    #[test]
    fn unknown_bytes_are_rejected_typed() {
        assert!(matches!(
            file_info_json(b"P2\n1 1\n255\n0\n"),
            Err(CodecError::BadMagic { .. })
        ));
        assert!(matches!(
            file_info_json(b""),
            Err(CodecError::BadMagic { .. })
        ));
    }
}
