//! The full-image codec pipeline: tiling → amplitude encoding → the
//! trained compression mesh → quantized, entropy-coded latents in a
//! [`Container`] — and the exact reverse through the reconstruction
//! mesh.
//!
//! This is the layer that turns the paper's in-memory training loop
//! into a shippable codec: a [`Codec`] owns a trained
//! [`QuantumAutoencoder`] (loaded from a `.qnm` file, trained in
//! process, or PCA-spectrally initialised from the image itself) and
//! converts `GrayImage`s to `.qnc` bytes and back. The mesh passes that
//! dominate runtime are dispatched as whole-image batches through a
//! [`qn_backend::MeshBackend`] selected by [`CodecOptions::backend`]:
//! scalar per-tile dispatch (serial or thread-fanned) or batched tile
//! panels. Every backend is bit-compatible, so the bytes a container
//! holds — and the pixels it decodes to — never depend on the schedule.

use crate::container::{
    dequantize_norm, quantize_norm, Container, ContainerHeader, TilePayload, FLAG_INLINE_MODEL,
    FLAG_PER_TILE_SCALE,
};
use crate::entropy::EntropyCoder;
use crate::error::{CodecError, Result};
use crate::model;
use crate::quantize::{tile_scale, Quantizer};
use qn_backend::BackendKind;
use qn_core::config::{CompressionTargetKind, SubspaceKind};
use qn_core::reconstruction::ReconstructionNetwork;
use qn_core::{compression::CompressionNetwork, encoding, QuantumAutoencoder};
use qn_image::{tiles, GrayImage};
use std::path::Path;
use std::time::Instant;

/// Wall-clock nanoseconds spent in each encode stage. Produced by the
/// `*_timed` pipeline entry points for observability (the `--timings`
/// CLI report, the server's per-stage histograms); plain data with no
/// telemetry dependency, and never an influence on encoded bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EncodeTimings {
    /// Tiling plus amplitude encoding ([`Codec::prepare_encode`]).
    pub prepare_ns: u64,
    /// The compression mesh pass.
    pub mesh_ns: u64,
    /// Latent gather, scaling and level quantization (payload build).
    pub quantize_ns: u64,
    /// Entropy coding and container serialisation.
    pub entropy_ns: u64,
}

/// Wall-clock nanoseconds spent in each decode stage; see
/// [`EncodeTimings`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeTimings {
    /// Container parse, including entropy decoding of the payload.
    pub parse_ns: u64,
    /// Dequantization and state re-embedding
    /// ([`Codec::prepare_decode`]).
    pub prepare_ns: u64,
    /// The reconstruction mesh pass.
    pub mesh_ns: u64,
    /// Norm scaling, patch rebuild and stitching
    /// ([`Codec::complete_decode`]).
    pub stitch_ns: u64,
}

/// Nanoseconds since `t`, saturating at `u64::MAX`.
fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Knobs for [`Codec::encode_image`].
#[derive(Debug, Clone)]
pub struct CodecOptions {
    /// Tile edge length; `tile_size²` pixels feed one state vector.
    pub tile_size: usize,
    /// Quantizer bit depth for latent amplitudes.
    pub bits: u8,
    /// Spend 32 bits/tile on a per-tile amplitude scale for extra
    /// precision on low-energy tiles.
    pub per_tile_scale: bool,
    /// Embed the model file in the container so it decodes standalone.
    pub inline_model: bool,
    /// Execution backend for the mesh passes. Backends are
    /// bit-compatible: this knob changes throughput only, never bytes.
    pub backend: BackendKind,
    /// Entropy coder for the latent payload. `Rice` writes format v1
    /// (bit-exact with pre-v2 builds); `RicePos`/`Range` write format
    /// v2. Lossless re the quantized levels: every coder decodes to
    /// identical pixels, only the rate moves.
    pub entropy: EntropyCoder,
}

impl Default for CodecOptions {
    fn default() -> Self {
        CodecOptions {
            tile_size: 4,
            bits: 8,
            per_tile_scale: false,
            inline_model: true,
            backend: BackendKind::Panel,
            entropy: EntropyCoder::Rice,
        }
    }
}

/// Encode-side accounting, for logs, benchmarks and the rate–distortion
/// evaluation harness.
#[derive(Debug, Clone, Copy)]
pub struct EncodeStats {
    /// Total tiles in the grid.
    pub tiles: usize,
    /// Tiles skipped as all-zero (1 bit each in the stream).
    pub empty_tiles: usize,
    /// Raw payload: one byte per pixel.
    pub raw_bytes: usize,
    /// Bytes of the finished container (model included if inline).
    pub container_bytes: usize,
    /// Container bits per pixel.
    pub bits_per_pixel: f64,
    /// Bytes of the embedded model body (0 without an inline model).
    /// Subtracting from [`EncodeStats::container_bytes`] isolates the
    /// per-image latent payload from the amortizable model cost.
    pub model_bytes: usize,
}

impl EncodeStats {
    /// Compression ratio (raw ÷ compressed; > 1 means smaller).
    pub fn ratio(&self) -> f64 {
        self.raw_bytes as f64 / self.container_bytes as f64
    }

    /// Bits per pixel of the container *minus* the embedded model body —
    /// the per-image rate once the model is amortized (equal to
    /// [`EncodeStats::bits_per_pixel`] when no model is inlined).
    pub fn payload_bits_per_pixel(&self) -> f64 {
        (self.container_bytes - self.model_bytes) as f64 * 8.0 / self.raw_bytes as f64
    }
}

/// A trained model bound to its stable identity — the object that
/// encodes and decodes images.
#[derive(Debug, Clone)]
pub struct Codec {
    model: QuantumAutoencoder,
    model_id: u64,
}

impl Codec {
    /// Wrap a trained autoencoder.
    pub fn new(model: QuantumAutoencoder) -> Self {
        let model_id = model::model_id(&model);
        Codec { model, model_id }
    }

    /// Load the model from a `.qnm` file.
    ///
    /// # Errors
    /// IO and format errors from [`model::load_model`].
    pub fn from_model_file(path: &Path) -> Result<Self> {
        Ok(Codec::new(model::load_model(path)?))
    }

    /// Borrow the model.
    pub fn model(&self) -> &QuantumAutoencoder {
        &self.model
    }

    /// The model's stable identity (recorded in every container).
    pub fn model_id(&self) -> u64 {
        self.model_id
    }

    /// Build a codec whose compression mesh is the PCA-optimal rotation
    /// for this image's own tiles (spectral initialisation through the
    /// Clements decomposition) and whose reconstruction mesh is its
    /// exact inverse. Deterministic, training-free, and optimal in L2
    /// among orthogonal compressions of this tile distribution — the
    /// default model source for `qnc compress` when no model file is
    /// given.
    ///
    /// # Errors
    /// Propagates eigensolver/decomposition failures; an all-zero image
    /// falls back to the identity mesh (every tile is then empty
    /// anyway).
    pub fn spectral_for_image(
        img: &GrayImage,
        tile_size: usize,
        latent_dim: usize,
    ) -> Result<Self> {
        Codec::spectral_for_images(std::slice::from_ref(img), tile_size, latent_dim)
    }

    /// Like [`Codec::spectral_for_image`], but fitted on the pooled
    /// tiles of a whole dataset: one shared model whose compression
    /// mesh is the PCA-optimal rotation for the *joint* tile
    /// distribution. This is the model source for dataset-level
    /// rate–distortion evaluation, where the model cost is amortized
    /// across every image it encodes.
    ///
    /// # Errors
    /// See [`Codec::spectral_for_image`]; images may differ in size but
    /// every tile must fit the `tile_size²` state dimension.
    pub fn spectral_for_images(
        images: &[GrayImage],
        tile_size: usize,
        latent_dim: usize,
    ) -> Result<Self> {
        let dim = tile_size * tile_size;
        if latent_dim == 0 || latent_dim > dim {
            return Err(CodecError::Invalid(format!(
                "latent dimension must be in 1..={dim}, got {latent_dim}"
            )));
        }
        let inputs: Vec<Vec<f64>> = images
            .iter()
            .flat_map(|img| tiles::tile(img, tile_size).tiles)
            .filter_map(|t| encoding::encode(t.pixels(), dim).ok())
            .map(|e| e.amplitudes)
            .collect();
        let mesh_c = if inputs.is_empty() {
            qn_photonic::Mesh::zeros(dim, 1)
        } else {
            qn_core::spectral::spectral_mesh(&inputs, dim, latent_dim, SubspaceKind::KeepLast, 1)?
        };
        let compression = CompressionNetwork::new(
            mesh_c,
            latent_dim,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )?;
        let n_layers = compression.mesh().n_layers();
        let reconstruction =
            ReconstructionNetwork::from_reversed_compression(&compression, n_layers);
        Ok(Codec::new(QuantumAutoencoder::new(
            compression,
            reconstruction,
        )))
    }

    /// Compress an image into `.qnc` bytes.
    ///
    /// # Errors
    /// [`CodecError::Invalid`] for empty images or tile sizes whose
    /// pixel count exceeds the model's state dimension.
    pub fn encode_image(&self, img: &GrayImage, opts: &CodecOptions) -> Result<Vec<u8>> {
        Ok(self.encode_image_with_stats(img, opts)?.0)
    }

    /// Compress, also returning size accounting.
    ///
    /// # Errors
    /// See [`Codec::encode_image`].
    pub fn encode_image_with_stats(
        &self,
        img: &GrayImage,
        opts: &CodecOptions,
    ) -> Result<(Vec<u8>, EncodeStats)> {
        let (plan, states) = self.prepare_encode(img, opts)?;
        let outs = self
            .model
            .compression
            .forward_batch_with(&states, opts.backend.backend());
        self.complete_encode(plan, outs)
    }

    /// [`Codec::encode_image_with_stats`] with per-stage wall-clock
    /// accounting. The encoded bytes are identical to the untimed
    /// paths — timing reads clocks, never data.
    ///
    /// # Errors
    /// See [`Codec::encode_image`].
    pub fn encode_image_timed(
        &self,
        img: &GrayImage,
        opts: &CodecOptions,
    ) -> Result<(Vec<u8>, EncodeStats, EncodeTimings)> {
        let t = Instant::now();
        let (plan, states) = self.prepare_encode(img, opts)?;
        let prepare_ns = elapsed_ns(t);
        let t = Instant::now();
        let outs = self
            .model
            .compression
            .forward_batch_with(&states, opts.backend.backend());
        let mesh_ns = elapsed_ns(t);
        let (bytes, stats, mut timings) = self.complete_encode_timed(plan, outs)?;
        timings.prepare_ns = prepare_ns;
        timings.mesh_ns = mesh_ns;
        Ok((bytes, stats, timings))
    }

    /// Everything *before* the encode's single mesh pass: tile the
    /// image, amplitude-encode every non-empty tile, and hand back the
    /// state vectors alongside the bookkeeping needed to finish. Any
    /// executor may then run the compression mesh over the states —
    /// [`Codec::encode_image_with_stats`] dispatches them directly
    /// through [`CodecOptions::backend`], while a serving layer can
    /// coalesce them with other requests' tiles — and feed the outputs
    /// (bit-identical by the backend contract) to
    /// [`Codec::complete_encode`].
    ///
    /// # Errors
    /// [`CodecError::Invalid`] for empty images, zero/oversize tile
    /// sizes, or unsupported bit depths.
    pub fn prepare_encode(
        &self,
        img: &GrayImage,
        opts: &CodecOptions,
    ) -> Result<(EncodePlan, Vec<Vec<f64>>)> {
        if img.is_empty() {
            return Err(CodecError::Invalid("cannot encode an empty image".into()));
        }
        if opts.tile_size == 0 {
            return Err(CodecError::Invalid("tile size must be positive".into()));
        }
        let dim = self.model.dim();
        if opts.tile_size * opts.tile_size > dim {
            return Err(CodecError::Invalid(format!(
                "tile of {0}×{0} = {1} pixels exceeds the model's state dimension {2}",
                opts.tile_size,
                opts.tile_size * opts.tile_size,
                dim
            )));
        }
        Quantizer::new(opts.bits)?; // validate the bit depth up front
        let ts = opts.tile_size;
        let tiles_x = img.width().div_ceil(ts).max(1);
        let tiles_y = img.height().div_ceil(ts).max(1);
        let tile_px = ts * ts;
        let src = img.pixels();
        let n_tiles = tiles_x * tiles_y;
        let mut states: Vec<Vec<f64>> = Vec::with_capacity(n_tiles);
        let mut norms: Vec<f64> = Vec::with_capacity(n_tiles);
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(n_tiles);
        // Fused tiling + amplitude encoding (Eq. 1): gather each tile's
        // row spans straight into its padded state vector and normalise
        // in place, with no intermediate patch images. Values appear in
        // the exact order `tiles::tile` + `encoding::encode` would
        // produce them (row-major with trailing zero padding), so norms
        // and amplitudes are bit-identical to the unfused path.
        for ty in 0..tiles_y {
            for tx in 0..tiles_x {
                let x0 = tx * ts;
                let y0 = ty * ts;
                let span_w = ts.min(img.width().saturating_sub(x0));
                let span_h = ts.min(img.height().saturating_sub(y0));
                let mut state = vec![0.0; dim];
                for py in 0..span_h {
                    let s = (y0 + py) * img.width() + x0;
                    let d = py * ts;
                    state[d..d + span_w].copy_from_slice(&src[s..s + span_w]);
                }
                let norm = qn_linalg::vector::norm2(&state[..tile_px]);
                if norm <= 0.0 {
                    // All-zero tile: no quantum state can encode it.
                    slots.push(None);
                    continue;
                }
                for a in &mut state[..tile_px] {
                    *a /= norm;
                }
                slots.push(Some(states.len()));
                norms.push(norm);
                states.push(state);
            }
        }
        let plan = EncodePlan {
            slots,
            norms,
            tiles_x,
            tiles_y,
            width: img.width() as u32,
            height: img.height() as u32,
            raw_bytes: img.len(),
            opts: opts.clone(),
        };
        Ok((plan, states))
    }

    /// Everything *after* the encode's mesh pass: gather the kept
    /// latent amplitudes from the raw `U_C` outputs (projection only
    /// zeroes the discarded ones, so the gather is bit-identical to
    /// projecting first), quantize, entropy-code and serialise the
    /// container. `mesh_out[i]` must be the mesh output for state `i`
    /// of [`Codec::prepare_encode`].
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when `mesh_out` does not match the
    /// plan's state count, plus container serialisation errors.
    pub fn complete_encode(
        &self,
        plan: EncodePlan,
        mesh_out: Vec<Vec<f64>>,
    ) -> Result<(Vec<u8>, EncodeStats)> {
        let (bytes, stats, _) = self.complete_encode_timed(plan, mesh_out)?;
        Ok((bytes, stats))
    }

    /// [`Codec::complete_encode`] with wall-clock accounting of its two
    /// stages: `quantize_ns` (latent gather + payload build) and
    /// `entropy_ns` (entropy coding + container serialisation). The
    /// `prepare_ns`/`mesh_ns` fields are left zero for the caller —
    /// whoever ran the mesh pass — to fill in.
    ///
    /// # Errors
    /// See [`Codec::complete_encode`].
    pub fn complete_encode_timed(
        &self,
        plan: EncodePlan,
        mesh_out: Vec<Vec<f64>>,
    ) -> Result<(Vec<u8>, EncodeStats, EncodeTimings)> {
        if mesh_out.len() != plan.norms.len() {
            return Err(CodecError::Invalid(format!(
                "mesh pass returned {} outputs for {} prepared tiles",
                mesh_out.len(),
                plan.norms.len()
            )));
        }
        let opts = &plan.opts;
        let quantizer = Quantizer::new(opts.bits)?;
        let latent_dim = self.model.compression.compressed_dim();
        let kept_indices = self.model.compression.projector().kept_indices();
        let max_norm = plan.norms.iter().fold(0.0f64, |m, &n| m.max(n)) as f32;

        let mut flags = 0u16;
        if opts.per_tile_scale {
            flags |= FLAG_PER_TILE_SCALE;
        }
        if opts.inline_model {
            flags |= FLAG_INLINE_MODEL;
        }
        flags |= opts.entropy.container_flags();
        let header = ContainerHeader {
            version: opts.entropy.container_version(),
            flags,
            model_id: self.model_id,
            width: plan.width,
            height: plan.height,
            tile_size: opts.tile_size as u16,
            latent_dim: latent_dim as u16,
            bits: opts.bits,
            max_norm,
        };

        let t = Instant::now();
        let mut empty_tiles = 0usize;
        // One reused gather buffer: per tile only the `levels` vector
        // the payload keeps is allocated.
        let mut kept = vec![0.0f64; latent_dim];
        let tile_payloads: Vec<Option<TilePayload>> = plan
            .slots
            .iter()
            .map(|slot| match slot {
                None => {
                    empty_tiles += 1;
                    None
                }
                Some(i) => {
                    for (dst, &j) in kept.iter_mut().zip(kept_indices.iter()) {
                        *dst = mesh_out[*i][j];
                    }
                    let scale = opts.per_tile_scale.then(|| {
                        let s = tile_scale(&kept);
                        for a in &mut kept {
                            *a /= f64::from(s);
                        }
                        s
                    });
                    Some(TilePayload {
                        norm_q: quantize_norm(plan.norms[*i], max_norm),
                        scale,
                        levels: quantizer.quantize_block(&kept),
                    })
                }
            })
            .collect();
        let quantize_ns = elapsed_ns(t);

        let t = Instant::now();
        let container = Container {
            header,
            inline_model: opts.inline_model.then(|| model::encode_model(&self.model)),
            tiles: tile_payloads,
        };
        let model_bytes = container.inline_model.as_ref().map_or(0, Vec::len);
        let bytes = container.to_bytes()?;
        let entropy_ns = elapsed_ns(t);
        let stats = EncodeStats {
            tiles: plan.tiles_x * plan.tiles_y,
            empty_tiles,
            raw_bytes: plan.raw_bytes,
            container_bytes: bytes.len(),
            bits_per_pixel: bytes.len() as f64 * 8.0 / plan.raw_bytes as f64,
            model_bytes,
        };
        Ok((
            bytes,
            stats,
            EncodeTimings {
                prepare_ns: 0,
                mesh_ns: 0,
                quantize_ns,
                entropy_ns,
            },
        ))
    }

    /// Decompress `.qnc` bytes produced with this codec's model.
    ///
    /// # Errors
    /// All container parse errors, plus [`CodecError::ModelMismatch`]
    /// when the container was encoded with a different model.
    pub fn decode_bytes(&self, bytes: &[u8]) -> Result<GrayImage> {
        self.decode_bytes_with(bytes, BackendKind::default())
    }

    /// Decompress through an explicit execution backend. Backends are
    /// bit-compatible, so every [`BackendKind`] yields the identical
    /// image.
    ///
    /// # Errors
    /// See [`Codec::decode_bytes`].
    pub fn decode_bytes_with(&self, bytes: &[u8], backend: BackendKind) -> Result<GrayImage> {
        decode_parsed(self, &Container::from_bytes(bytes)?, backend)
    }

    /// [`Codec::decode_bytes_with`] with per-stage wall-clock
    /// accounting: container parse (including entropy decode),
    /// dequantization, the reconstruction mesh pass, and the stitch.
    /// The decoded image is identical to the untimed paths.
    ///
    /// # Errors
    /// See [`Codec::decode_bytes`].
    pub fn decode_bytes_timed(
        &self,
        bytes: &[u8],
        backend: BackendKind,
    ) -> Result<(GrayImage, DecodeTimings)> {
        let t = Instant::now();
        let container = Container::from_bytes(bytes)?;
        let parse_ns = elapsed_ns(t);
        self.check_container(&container)?;
        let t = Instant::now();
        let (plan, states) = self.prepare_decode(&container)?;
        let prepare_ns = elapsed_ns(t);
        let t = Instant::now();
        let outs = self
            .model
            .reconstruction
            .reconstruct_batch_with(&states, backend.backend());
        let mesh_ns = elapsed_ns(t);
        let t = Instant::now();
        let img = self.complete_decode(plan, outs)?;
        let stitch_ns = elapsed_ns(t);
        Ok((
            img,
            DecodeTimings {
                parse_ns,
                prepare_ns,
                mesh_ns,
                stitch_ns,
            },
        ))
    }

    /// Verify that `container` was produced by this codec's model.
    ///
    /// # Errors
    /// [`CodecError::ModelMismatch`] on a model-id disagreement.
    pub fn check_container(&self, container: &Container) -> Result<()> {
        if container.header.model_id != self.model_id {
            return Err(CodecError::ModelMismatch {
                container: container.header.model_id,
                supplied: self.model_id,
            });
        }
        Ok(())
    }

    /// Decode a parsed container against this codec's model.
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when the container geometry disagrees
    /// with the model (latent dimension, state dimension).
    pub fn decode_container(
        &self,
        container: &Container,
        backend: BackendKind,
    ) -> Result<GrayImage> {
        let (plan, states) = self.prepare_decode(container)?;
        let outs = self
            .model
            .reconstruction
            .reconstruct_batch_with(&states, backend.backend());
        self.complete_decode(plan, outs)
    }

    /// Everything *before* the decode's single mesh pass: validate the
    /// container geometry against the model and dequantize every
    /// occupied tile into a re-embedded state vector. Any executor may
    /// then run the reconstruction mesh over the states and feed the
    /// outputs to [`Codec::complete_decode`].
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when the container geometry disagrees
    /// with the model (latent dimension, state dimension).
    pub fn prepare_decode(&self, container: &Container) -> Result<(DecodePlan, Vec<Vec<f64>>)> {
        let header = &container.header;
        let dim = self.model.dim();
        let tile_px = header.tile_size as usize * header.tile_size as usize;
        if tile_px > dim {
            return Err(CodecError::Invalid(format!(
                "container tile size {} exceeds the model's state dimension {dim}",
                header.tile_size
            )));
        }
        if header.latent_dim as usize != self.model.compression.compressed_dim() {
            return Err(CodecError::Invalid(format!(
                "container stores {} latents per tile, model compresses to {}",
                header.latent_dim,
                self.model.compression.compressed_dim()
            )));
        }
        let quantizer = Quantizer::new(header.bits)?;
        let kept_indices = self.model.compression.projector().kept_indices();

        // Dequantize every occupied tile into a re-embedded state vector.
        let mut states: Vec<Vec<f64>> = Vec::new();
        let mut norms: Vec<f64> = Vec::new();
        let mut slots: Vec<Option<usize>> = Vec::with_capacity(container.tiles.len());
        for tile in &container.tiles {
            match tile {
                None => slots.push(None),
                Some(payload) => {
                    // Dequantize straight into the re-embedded state —
                    // same values as dequantizing to a staging buffer,
                    // scaling, then scattering, with no per-tile
                    // intermediate allocation.
                    let mut state = vec![0.0; dim];
                    match payload.scale {
                        Some(scale) => {
                            for (&j, &level) in kept_indices.iter().zip(&payload.levels) {
                                state[j] = quantizer.dequantize(level) * f64::from(scale);
                            }
                        }
                        None => {
                            for (&j, &level) in kept_indices.iter().zip(&payload.levels) {
                                state[j] = quantizer.dequantize(level);
                            }
                        }
                    }
                    slots.push(Some(states.len()));
                    norms.push(dequantize_norm(payload.norm_q, header.max_norm));
                    states.push(state);
                }
            }
        }
        let plan = DecodePlan {
            slots,
            norms,
            tile_size: header.tile_size as usize,
            width: header.width as usize,
            height: header.height as usize,
            tiles_x: header.tiles_x(),
        };
        Ok((plan, states))
    }

    /// Everything *after* the decode's mesh pass: scale each
    /// reconstructed state by its tile norm, rebuild the patches and
    /// stitch the image. `mesh_out[i]` must be the reconstruction-mesh
    /// output for state `i` of [`Codec::prepare_decode`].
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when `mesh_out` does not match the
    /// plan's state count.
    pub fn complete_decode(&self, plan: DecodePlan, mesh_out: Vec<Vec<f64>>) -> Result<GrayImage> {
        if mesh_out.len() != plan.norms.len() {
            return Err(CodecError::Invalid(format!(
                "mesh pass returned {} outputs for {} prepared tiles",
                mesh_out.len(),
                plan.norms.len()
            )));
        }
        // Stitch decoded amplitudes straight into the output image:
        // per-row spans clipped at the right/bottom edges, Eq. 2
        // (`x̂ = √(B²)·‖x‖`, exactly `encoding::decode`) applied in
        // place. Skipped (all-zero) tiles keep the canvas zeros, and
        // padding amplitudes beyond each clipped span are dropped — the
        // same crop `tiles::untile` performed on materialised patches.
        let ts = plan.tile_size;
        let mut out = GrayImage::zeros(plan.width, plan.height);
        let dst = out.pixels_mut();
        for (idx, slot) in plan.slots.iter().enumerate() {
            let Some(i) = slot else { continue };
            let amps = &mesh_out[*i];
            let norm = plan.norms[*i];
            let x0 = (idx % plan.tiles_x) * ts;
            let y0 = (idx / plan.tiles_x) * ts;
            let span_w = ts.min(plan.width.saturating_sub(x0));
            let span_h = ts.min(plan.height.saturating_sub(y0));
            for py in 0..span_h {
                let d = (y0 + py) * plan.width + x0;
                let s = py * ts;
                for (o, &b) in dst[d..d + span_w].iter_mut().zip(&amps[s..s + span_w]) {
                    *o = (b * b).sqrt() * norm;
                }
            }
        }
        Ok(out)
    }
}

/// Decode `.qnc` bytes that carry their model inline, with no external
/// model — the standalone path `qnc decompress` uses by default.
///
/// # Errors
/// [`CodecError::Invalid`] when no model is embedded; otherwise all
/// container/model parse errors.
pub fn decode_standalone(bytes: &[u8]) -> Result<GrayImage> {
    decode_standalone_with(bytes, BackendKind::default())
}

/// Standalone decode through an explicit execution backend.
///
/// # Errors
/// See [`decode_standalone`].
pub fn decode_standalone_with(bytes: &[u8], backend: BackendKind) -> Result<GrayImage> {
    let container = Container::from_bytes(bytes)?;
    let codec = codec_from_inline(&container)?;
    decode_parsed(&codec, &container, backend)
}

/// Build a [`Codec`] from a container's embedded model — the model
/// source of the standalone decode path and of servers handling
/// self-contained containers.
///
/// # Errors
/// [`CodecError::Invalid`] when no model is embedded; otherwise model
/// parse errors.
pub fn codec_from_inline(container: &Container) -> Result<Codec> {
    let model_bytes = container.inline_model.as_deref().ok_or_else(|| {
        CodecError::Invalid(
            "container has no inline model; supply the model file it was encoded with".into(),
        )
    })?;
    Ok(Codec::new(model::decode_model(model_bytes)?))
}

/// The one decode implementation behind every entry point: verify the
/// model identity, then decode.
fn decode_parsed(codec: &Codec, container: &Container, backend: BackendKind) -> Result<GrayImage> {
    codec.check_container(container)?;
    codec.decode_container(container, backend)
}

/// Opaque bookkeeping between [`Codec::prepare_encode`] and
/// [`Codec::complete_encode`]: tile occupancy, per-tile norms and the
/// geometry/options needed to assemble the container after the mesh
/// pass has run elsewhere.
#[derive(Debug, Clone)]
pub struct EncodePlan {
    /// Row-major tile → state index (None = all-zero tile).
    slots: Vec<Option<usize>>,
    /// Encoding norm per occupied state.
    norms: Vec<f64>,
    tiles_x: usize,
    tiles_y: usize,
    width: u32,
    height: u32,
    raw_bytes: usize,
    opts: CodecOptions,
}

/// Opaque bookkeeping between [`Codec::prepare_decode`] and
/// [`Codec::complete_decode`]: tile occupancy, dequantized norms and
/// the output geometry.
#[derive(Debug, Clone)]
pub struct DecodePlan {
    /// Row-major tile → state index (None = all-zero tile).
    slots: Vec<Option<usize>>,
    /// Dequantized tile norm per occupied state.
    norms: Vec<f64>,
    tile_size: usize,
    width: usize,
    height: usize,
    tiles_x: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_image::{datasets, metrics};

    fn test_image() -> GrayImage {
        // A 32×24 grayscale blob image: smooth structure, non-trivial.
        datasets::grayscale_blobs(1, 32, 24, 9).remove(0)
    }

    fn spectral_codec(img: &GrayImage, d: usize) -> Codec {
        Codec::spectral_for_image(img, 4, d).unwrap()
    }

    #[test]
    fn roundtrip_meets_psnr_floor_at_8_bits() {
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let (bytes, stats) = codec
            .encode_image_with_stats(&img, &CodecOptions::default())
            .unwrap();
        let back = codec.decode_bytes(&bytes).unwrap();
        assert_eq!((back.width(), back.height()), (32, 24));
        let psnr = metrics::psnr(&img, &back.clamped());
        assert!(psnr >= 20.0, "PSNR {psnr:.2} dB below floor");
        assert!(stats.bits_per_pixel > 0.0);
    }

    #[test]
    fn dataset_spectral_model_encodes_every_member() {
        // One shared model over a rank-4 family: every member decodes
        // accurately with the *same* model id, which is what amortizes
        // the model cost across a dataset.
        let data = datasets::paper_binary_16(25);
        let codec = Codec::spectral_for_images(&data, 4, 8).unwrap();
        let opts = CodecOptions {
            inline_model: false,
            ..CodecOptions::default()
        };
        for img in &data {
            let (bytes, stats) = codec.encode_image_with_stats(img, &opts).unwrap();
            assert_eq!(stats.model_bytes, 0);
            assert!((stats.payload_bits_per_pixel() - stats.bits_per_pixel).abs() < 1e-12);
            let back = codec.decode_bytes(&bytes).unwrap();
            let psnr = metrics::psnr(img, &back.clamped());
            assert!(psnr >= 30.0, "PSNR {psnr:.2} dB");
        }
        // A single-image fit is the one-element dataset fit.
        let solo = Codec::spectral_for_image(&data[3], 4, 8).unwrap();
        let solo_set = Codec::spectral_for_images(&data[3..4], 4, 8).unwrap();
        assert_eq!(solo.model_id(), solo_set.model_id());
    }

    #[test]
    fn stats_separate_model_bytes_from_payload() {
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let (_, with_model) = codec
            .encode_image_with_stats(&img, &CodecOptions::default())
            .unwrap();
        assert!(with_model.model_bytes > 0);
        assert!(with_model.payload_bits_per_pixel() < with_model.bits_per_pixel);
        let (lean_bytes, lean) = codec
            .encode_image_with_stats(
                &img,
                &CodecOptions {
                    inline_model: false,
                    ..CodecOptions::default()
                },
            )
            .unwrap();
        assert_eq!(lean.model_bytes, 0);
        // The inline model accounts for (almost all of) the size gap:
        // the container layout only adds a small length field around it.
        let gap = with_model.container_bytes - lean_bytes.len();
        assert!(
            gap >= with_model.model_bytes && gap <= with_model.model_bytes + 16,
            "container gap {gap} vs model {}",
            with_model.model_bytes
        );
    }

    #[test]
    fn container_without_model_is_smaller_than_raw() {
        let img = datasets::grayscale_blobs(1, 64, 64, 5).remove(0);
        let codec = spectral_codec(&img, 8);
        let opts = CodecOptions {
            inline_model: false,
            ..CodecOptions::default()
        };
        let (bytes, stats) = codec.encode_image_with_stats(&img, &opts).unwrap();
        assert!(
            bytes.len() < img.len(),
            "container {} bytes ≥ raw {} bytes",
            bytes.len(),
            img.len()
        );
        assert!(stats.ratio() > 1.0);
    }

    #[test]
    fn every_backend_encodes_and_decodes_identically() {
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let reference = codec
            .encode_image(
                &img,
                &CodecOptions {
                    backend: BackendKind::Scalar,
                    ..CodecOptions::default()
                },
            )
            .unwrap();
        let reference_img = codec
            .decode_bytes_with(&reference, BackendKind::Scalar)
            .unwrap();
        for backend in BackendKind::ALL {
            let bytes = codec
                .encode_image(
                    &img,
                    &CodecOptions {
                        backend,
                        ..CodecOptions::default()
                    },
                )
                .unwrap();
            assert_eq!(
                bytes, reference,
                "{backend}: encode bytes must not depend on the schedule"
            );
            let decoded = codec.decode_bytes_with(&bytes, backend).unwrap();
            assert_eq!(
                decoded, reference_img,
                "{backend}: decode must not depend on the schedule"
            );
        }
    }

    #[test]
    fn standalone_decode_uses_the_inline_model() {
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let bytes = codec.encode_image(&img, &CodecOptions::default()).unwrap();
        let via_codec = codec.decode_bytes(&bytes).unwrap();
        let via_inline = decode_standalone(&bytes).unwrap();
        assert_eq!(via_codec, via_inline);
        // Without the inline model the standalone path refuses.
        let lean = codec
            .encode_image(
                &img,
                &CodecOptions {
                    inline_model: false,
                    ..CodecOptions::default()
                },
            )
            .unwrap();
        assert!(matches!(
            decode_standalone(&lean),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn timed_paths_are_byte_identical_to_untimed_ones() {
        // The whole point of the timing layer: clocks are read, data
        // is never touched. Durations themselves are wall-clock and
        // deliberately not asserted.
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let opts = CodecOptions::default();
        let (plain, plain_stats) = codec.encode_image_with_stats(&img, &opts).unwrap();
        let (timed, timed_stats, enc_t) = codec.encode_image_timed(&img, &opts).unwrap();
        assert_eq!(timed, plain, "timed encode must not perturb bytes");
        assert_eq!(timed_stats.container_bytes, plain_stats.container_bytes);
        // The stages actually ran (fields are populated, sum is sane).
        let _total = enc_t.prepare_ns + enc_t.mesh_ns + enc_t.quantize_ns + enc_t.entropy_ns;
        let plain_img = codec.decode_bytes(&plain).unwrap();
        let (timed_img, _dec_t) = codec
            .decode_bytes_timed(&plain, BackendKind::default())
            .unwrap();
        assert_eq!(timed_img, plain_img, "timed decode must not perturb pixels");
        // A wrong model still errors through the timed path.
        let other = spectral_codec(&datasets::grayscale_blobs(1, 32, 24, 78).remove(0), 8);
        assert!(matches!(
            other.decode_bytes_timed(&plain, BackendKind::default()),
            Err(CodecError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn model_mismatch_is_detected() {
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let other = spectral_codec(&datasets::grayscale_blobs(1, 32, 24, 77).remove(0), 8);
        let bytes = codec.encode_image(&img, &CodecOptions::default()).unwrap();
        assert!(matches!(
            other.decode_bytes(&bytes),
            Err(CodecError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn empty_tiles_cost_one_bit_and_decode_to_black() {
        // Mostly-black image with one lit region.
        let mut img = GrayImage::zeros(16, 16);
        img.set(1, 1, 0.8);
        let codec = spectral_codec(&img, 4);
        let opts = CodecOptions {
            inline_model: false,
            ..CodecOptions::default()
        };
        let (bytes, stats) = codec.encode_image_with_stats(&img, &opts).unwrap();
        assert_eq!(stats.tiles, 16);
        assert_eq!(stats.empty_tiles, 15);
        let back = codec.decode_bytes(&bytes).unwrap();
        for (y, x) in (0..16).flat_map(|y| (0..16).map(move |x| (y, x))) {
            if x >= 4 || y >= 4 {
                assert_eq!(back.get(x, y), 0.0, "empty tile pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn per_tile_scale_improves_low_energy_tiles() {
        // A dim image: amplitudes per tile are small, so the global
        // [-1,1] grid wastes levels; per-tile scaling must not be worse.
        let img = {
            let mut img = datasets::grayscale_blobs(1, 32, 32, 13).remove(0);
            for p in img.pixels_mut() {
                *p *= 0.2;
            }
            img
        };
        let codec = spectral_codec(&img, 8);
        let base = CodecOptions {
            bits: 5,
            inline_model: false,
            ..CodecOptions::default()
        };
        let scaled = CodecOptions {
            per_tile_scale: true,
            ..base.clone()
        };
        let flat = codec.encode_image(&img, &base).unwrap();
        let tight = codec.encode_image(&img, &scaled).unwrap();
        let psnr_flat = metrics::psnr(&img, &codec.decode_bytes(&flat).unwrap().clamped());
        let psnr_tight = metrics::psnr(&img, &codec.decode_bytes(&tight).unwrap().clamped());
        assert!(
            psnr_tight + 1e-9 >= psnr_flat,
            "per-tile scale regressed PSNR: {psnr_flat:.2} → {psnr_tight:.2}"
        );
    }

    #[test]
    fn oversize_tiles_and_empty_images_are_rejected() {
        let img = test_image();
        let codec = spectral_codec(&img, 8);
        let opts = CodecOptions {
            tile_size: 5, // 25 pixels > N = 16
            ..CodecOptions::default()
        };
        assert!(matches!(
            codec.encode_image(&img, &opts),
            Err(CodecError::Invalid(_))
        ));
        assert!(codec
            .encode_image(&GrayImage::zeros(0, 0), &CodecOptions::default())
            .is_err());
    }

    #[test]
    fn unaligned_image_sizes_roundtrip() {
        let img = datasets::grayscale_blobs(1, 13, 9, 21).remove(0);
        let codec = spectral_codec(&img, 8);
        let bytes = codec.encode_image(&img, &CodecOptions::default()).unwrap();
        let back = codec.decode_bytes(&bytes).unwrap();
        assert_eq!((back.width(), back.height()), (13, 9));
        let psnr = metrics::psnr(&img, &back.clamped());
        assert!(psnr >= 20.0, "PSNR {psnr:.2} dB");
    }
}
