//! End-to-end image codec for the quantum-network autoencoder.
//!
//! The paper's pipeline (encode → trainable compression mesh `U_C` →
//! projector `P1` → reconstruction mesh `U_R` → decode) exists in
//! `qn-core` as an in-memory training loop. This crate turns a trained
//! model into a **file-format codec**, the way related work treats
//! quantum compression as a real bitstream (QPIXL's compression-ratio
//! gate budget; the hybrid JPEG-style scheme of arXiv:2602.06201 that
//! quantizes transformed coefficients into a classical container):
//!
//! - [`model`] — versioned binary save/load of the trained meshes
//!   (`.qnm`), bit-exact, checksummed, no external serde;
//! - [`quantize`] — uniform scalar quantization of the d kept latent
//!   amplitudes, global or per-tile scaled, 1–16 bits;
//! - [`bitstream`] — bit-level IO plus Rice entropy coding of
//!   zigzag-mapped symbols, CRC-32 and FNV-1a identities;
//! - [`entropy`] — the bitstream-v2 coder layer: the [`EntropyCoder`]
//!   selector (`rice` / `rice-pos` / `range`) and the adaptive binary
//!   range coder with Exp-Golomb binarization;
//! - [`container`] — the `.qnc` layout: header, model id, tile grid,
//!   per-tile payloads, optional inline model, trailing checksum;
//! - [`pipeline`] — the full-image path: `qn-image` tiling → batch
//!   amplitude encode → `U_C`/`P1` → quantize + entropy-code, and the
//!   reverse through `U_R`, with the mesh passes dispatched through a
//!   selectable, bit-compatible `qn_backend::MeshBackend` (scalar
//!   serial/parallel or batched tile panels);
//! - the `qnc` binary — `compress` / `decompress` / `train` / `info`
//!   over PGM files.
//!
//! Every decoder path returns typed [`CodecError`]s on malformed input;
//! corrupt or truncated bytes never panic. See the workspace README for
//! the byte-level format specifications and versioning rules.

pub mod bitstream;
pub mod container;
pub mod entropy;
pub mod error;
pub mod info;
pub mod model;
pub mod pipeline;
pub mod quantize;

pub use container::{Container, ContainerHeader, TilePayload};
pub use entropy::EntropyCoder;
pub use error::{CodecError, Result};
pub use model::{load_model, save_model};
pub use pipeline::{
    codec_from_inline, decode_standalone, decode_standalone_with, Codec, CodecOptions, DecodePlan,
    DecodeTimings, EncodePlan, EncodeStats, EncodeTimings,
};
pub use qn_backend::BackendKind;
pub use quantize::Quantizer;
