//! Typed errors for the codec. Corrupt or truncated input must surface
//! as one of these variants — never as a panic — so serving layers can
//! map them to protocol errors.

use qn_core::CoreError;
use std::fmt;

/// Everything that can go wrong encoding or decoding models and
/// containers.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying file-system failure.
    Io(std::io::Error),
    /// Input ended before a complete field could be read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// Leading magic bytes identify a different (or no) format.
    BadMagic {
        /// The magic expected for this format.
        expected: [u8; 4],
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// Format version newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build reads.
        supported: u16,
    },
    /// Stored checksum disagrees with the recomputed one.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u32,
        /// Checksum computed over the received bytes.
        computed: u32,
    },
    /// The container's feature flags name an entropy coder this build
    /// does not implement (or an inconsistent coder/version pairing).
    UnsupportedCoder {
        /// The entropy-coder feature bits found in the header.
        flags: u16,
    },
    /// The container was produced by a different model than the one
    /// supplied for decoding.
    ModelMismatch {
        /// Model id recorded in the container.
        container: u64,
        /// Model id of the supplied model.
        supplied: u64,
    },
    /// A header field or argument is out of its valid range.
    Invalid(String),
    /// Forwarded pipeline error from `qn-core`.
    Core(CoreError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "io error: {e}"),
            CodecError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build reads up to {supported})"
            ),
            CodecError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CodecError::UnsupportedCoder { flags } => write!(
                f,
                "unsupported entropy coder: feature flags {flags:#06x} name no coder this \
                 build reads (rice, rice-pos, range)"
            ),
            CodecError::ModelMismatch {
                container,
                supplied,
            } => write!(
                f,
                "model mismatch: container was encoded with model {container:#018x}, \
                 supplied model is {supplied:#018x}"
            ),
            CodecError::Invalid(msg) => write!(f, "invalid: {msg}"),
            CodecError::Core(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<CoreError> for CodecError {
    fn from(e: CoreError) -> Self {
        CodecError::Core(e)
    }
}

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CodecError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let cases: Vec<(CodecError, &str)> = vec![
            (
                CodecError::Truncated { context: "header" },
                "truncated input while reading header",
            ),
            (
                CodecError::BadMagic {
                    expected: *b"QNC1",
                    found: *b"P2\n4",
                },
                "bad magic",
            ),
            (
                CodecError::UnsupportedVersion {
                    found: 9,
                    supported: 1,
                },
                "unsupported format version 9",
            ),
            (
                CodecError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                "checksum mismatch",
            ),
            (
                CodecError::ModelMismatch {
                    container: 1,
                    supplied: 2,
                },
                "model mismatch",
            ),
            (
                CodecError::UnsupportedCoder { flags: 0x000C },
                "unsupported entropy coder",
            ),
            (CodecError::Invalid("bits".into()), "invalid: bits"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle:?}");
        }
    }

    #[test]
    fn conversions_wrap_sources() {
        let io: CodecError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, CodecError::Io(_)));
        let core: CodecError = CoreError::InvalidData("x".into()).into();
        assert!(matches!(core, CodecError::Core(_)));
    }
}
