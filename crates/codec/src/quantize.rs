//! Scalar quantization of latent amplitudes.
//!
//! The compressed representation of a tile is its `d` kept amplitudes —
//! real values in `[-1, 1]` because the input states are unit-norm and
//! the mesh is orthogonal. A [`Quantizer`] maps them onto `2^bits`
//! uniform levels; [`zigzag`] then folds the level index around the
//! quantizer's zero level so that near-zero amplitudes (the common case
//! for energy-compacted latents) become small symbols, which is what
//! makes the Rice stage of the bitstream effective — the same
//! transform-quantize-entropy-code chain as the hybrid JPEG-style
//! quantum codec of arXiv:2602.06201, with the trained mesh playing the
//! role of the DCT.
//!
//! Two modes:
//!
//! - **Global** (default): the fixed range `[-1, 1]`. No side
//!   information.
//! - **Per-tile scaled**: amplitudes are divided by the tile's peak
//!   `max |a|` first, spending 32 bits/tile on the scale to win back
//!   precision when a tile's energy concentrates in few latents.

use crate::error::{CodecError, Result};

/// Highest supported bit depth (symbols fit comfortably in `u32`).
pub const MAX_BITS: u8 = 16;

/// Uniform scalar quantizer over `[-1, 1]` with `2^bits` levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    bits: u8,
    levels: u32,
}

impl Quantizer {
    /// Quantizer with `2^bits` levels.
    ///
    /// # Errors
    /// [`CodecError::Invalid`] unless `1 ≤ bits ≤ 16`.
    pub fn new(bits: u8) -> Result<Self> {
        if bits == 0 || bits > MAX_BITS {
            return Err(CodecError::Invalid(format!(
                "bit depth must be in 1..={MAX_BITS}, got {bits}"
            )));
        }
        Ok(Quantizer {
            bits,
            levels: 1u32 << bits,
        })
    }

    /// Configured bit depth.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Number of levels (`2^bits`).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The level an amplitude of exactly zero maps to — the center the
    /// zigzag transform folds around.
    pub fn zero_level(&self) -> u32 {
        // round((0 + 1)/2 * (levels-1)) — computed once, exactly.
        (self.levels - 1).div_ceil(2)
    }

    /// Quantize one amplitude (clamped to `[-1, 1]`).
    pub fn quantize(&self, a: f64) -> u32 {
        let unit = (a.clamp(-1.0, 1.0) + 1.0) / 2.0;
        let level = (unit * f64::from(self.levels - 1)).round();
        // Clamp defensively against rounding at the top edge.
        level.min(f64::from(self.levels - 1)).max(0.0) as u32
    }

    /// Reconstruct the amplitude at a level's bin center.
    pub fn dequantize(&self, level: u32) -> f64 {
        let level = level.min(self.levels - 1);
        f64::from(level) / f64::from(self.levels - 1) * 2.0 - 1.0
    }

    /// Quantize a slice.
    pub fn quantize_block(&self, amps: &[f64]) -> Vec<u32> {
        amps.iter().map(|&a| self.quantize(a)).collect()
    }

    /// Dequantize a slice.
    pub fn dequantize_block(&self, levels: &[u32]) -> Vec<f64> {
        levels.iter().map(|&l| self.dequantize(l)).collect()
    }

    /// Worst-case absolute reconstruction error per amplitude (half a
    /// step).
    pub fn max_error(&self) -> f64 {
        1.0 / f64::from(self.levels - 1)
    }
}

/// Per-tile normalisation scale: the peak |amplitude|, floored so a
/// (theoretically impossible, but defensively handled) all-zero latent
/// block never divides by zero.
pub fn tile_scale(amps: &[f64]) -> f32 {
    let peak = amps.iter().fold(0.0f64, |m, &a| m.max(a.abs()));
    (peak.max(1e-9)) as f32
}

/// Fold a level index around `zero_level` so near-zero amplitudes get
/// small symbols: 0, +1, −1, +2, −2, … → 0, 1, 2, 3, 4, …
pub fn zigzag(level: u32, zero_level: u32) -> u32 {
    if level >= zero_level {
        2 * (level - zero_level)
    } else {
        2 * (zero_level - level) - 1
    }
}

/// Inverse of [`zigzag`]; saturates at level 0 rather than wrapping on
/// corrupt symbols (the container layer separately validates symbol
/// range).
pub fn unzigzag(symbol: u32, zero_level: u32) -> u32 {
    if symbol.is_multiple_of(2) {
        zero_level + symbol / 2
    } else {
        zero_level.saturating_sub(symbol / 2 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_bit_depths() {
        assert!(Quantizer::new(0).is_err());
        assert!(Quantizer::new(17).is_err());
        assert!(Quantizer::new(1).is_ok());
        assert!(Quantizer::new(16).is_ok());
    }

    #[test]
    fn quantize_covers_endpoints_exactly() {
        let q = Quantizer::new(8).unwrap();
        assert_eq!(q.quantize(-1.0), 0);
        assert_eq!(q.quantize(1.0), 255);
        assert_eq!(q.dequantize(0), -1.0);
        assert_eq!(q.dequantize(255), 1.0);
        // Out-of-range inputs clamp instead of wrapping.
        assert_eq!(q.quantize(-7.0), 0);
        assert_eq!(q.quantize(7.0), 255);
    }

    #[test]
    fn roundtrip_error_is_bounded_by_half_step() {
        for bits in [2u8, 4, 8, 12] {
            let q = Quantizer::new(bits).unwrap();
            let n = 1000;
            for i in 0..=n {
                let a = -1.0 + 2.0 * (i as f64) / (n as f64);
                let back = q.dequantize(q.quantize(a));
                assert!(
                    (back - a).abs() <= q.max_error() + 1e-12,
                    "bits={bits} a={a} back={back}"
                );
            }
        }
    }

    #[test]
    fn dequantize_saturates_corrupt_levels() {
        let q = Quantizer::new(4).unwrap();
        assert_eq!(q.dequantize(u32::MAX), 1.0);
    }

    #[test]
    fn zigzag_is_a_bijection_on_levels() {
        let q = Quantizer::new(6).unwrap();
        let zero = q.zero_level();
        let mut seen = vec![false; q.levels() as usize];
        for level in 0..q.levels() {
            let z = zigzag(level, zero);
            assert!(z < q.levels(), "zigzag output in range");
            assert!(!seen[z as usize], "zigzag collision at {z}");
            seen[z as usize] = true;
            assert_eq!(unzigzag(z, zero), level);
        }
    }

    #[test]
    fn zero_amplitude_gets_symbol_zero() {
        let q = Quantizer::new(8).unwrap();
        let level = q.quantize(0.0);
        assert_eq!(zigzag(level, q.zero_level()), 0);
    }

    #[test]
    fn tile_scale_tracks_peak() {
        assert!((tile_scale(&[0.1, -0.6, 0.3]) - 0.6).abs() < 1e-7);
        assert!(tile_scale(&[0.0, 0.0]) > 0.0, "floored, never zero");
    }

    #[test]
    fn block_helpers_match_scalar_paths() {
        let q = Quantizer::new(8).unwrap();
        let amps = [0.0, 0.5, -0.5, 1.0, -1.0, 0.123];
        let levels = q.quantize_block(&amps);
        let back = q.dequantize_block(&levels);
        for (i, &a) in amps.iter().enumerate() {
            assert_eq!(levels[i], q.quantize(a));
            assert_eq!(back[i], q.dequantize(levels[i]));
        }
    }
}
