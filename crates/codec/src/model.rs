//! Versioned binary persistence for trained models (`.qnm` files).
//!
//! # Byte layout (format version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "QNMD"
//! 4       2     format version (current: 1)
//! 6       2     flags: bit 0 = real model (all α ≡ 0; α arrays omitted)
//!                      bit 1 = U_R derived (U_R is the exact inverse of
//!                              U_C; only its layer count is stored)
//! 8       4     state dimension N
//! 12      4     compressed dimension d
//! 16      1     kept-subspace kind (0 = KeepLast, 1 = KeepFirst)
//! 17      3     reserved (must be 0)
//! 20      …     mesh U_C   (layout below)
//! …       …     [flags bit 1 clear] mesh U_R
//!               [flags bit 1 set]   U_R layer count u32
//! end−4   4     CRC-32 (IEEE) of every preceding byte
//!
//! mesh := n_layers  u32
//!         repeat n_layers times:
//!           order   u8   (0 = ascending cascade, 1 = descending)
//!           theta   f64 × (N−1)   (raw IEEE-754 bits — bit-exact)
//!           [flags bit 0 clear] alpha f64 × (N−1)
//! ```
//!
//! The two flag bits are size optimisations the writer applies whenever
//! they are exact: the paper's networks are real (bit 0 halves the
//! file), and spectral/untrained-`U_R` models reconstruct with the
//! reversed-negated compression mesh (bit 1 halves it again — the
//! derivation is deterministic, so the loaded mesh is still bit-exact).
//!
//! # Versioning rules
//!
//! - Readers accept any file whose version ≤ their
//!   [`MODEL_VERSION`] and must reject newer versions with
//!   [`CodecError::UnsupportedVersion`] (no silent best-effort parses).
//! - Any change to field meaning, order, or the parameter flattening
//!   order of `QuantumAutoencoder::export_parameters` bumps the
//!   version; reserved fields exist so small additions don't have to.
//! - Angles and phases are stored as raw IEEE-754 bits, so
//!   save → load → save is byte-identical and a loaded model produces
//!   **bit-exact** amplitudes relative to the model that was saved.
//!
//! The model's identity — stored in `.qnc` containers to pair them with
//! the right decoder — is [`model_id`]: the FNV-1a 64 hash of the
//! serialised body (checksum excluded).

use crate::bitstream::{crc32, fnv1a64, ByteReader, ByteWriter};
use crate::error::{CodecError, Result};
use qn_core::compression::CompressionNetwork;
use qn_core::config::{CompressionTargetKind, SubspaceKind};
use qn_core::reconstruction::ReconstructionNetwork;
use qn_core::QuantumAutoencoder;
use qn_photonic::{GateOrder, Mesh, MeshLayer};
use std::path::Path;

/// Leading magic of a model file.
pub const MODEL_MAGIC: [u8; 4] = *b"QNMD";
/// Highest format version this build reads and the version it writes.
pub const MODEL_VERSION: u16 = 1;

/// Hard cap on `n_layers`/dimension fields so corrupt headers cannot
/// drive huge allocations.
const MAX_REASONABLE: u32 = 1 << 20;

/// Flag bit 0: every phase is zero; α arrays are omitted.
pub const MODEL_FLAG_REAL: u16 = 1 << 0;
/// Flag bit 1: `U_R` is the exact inverse of `U_C` (reversed structure,
/// negated angles, identity-padded to its layer count); only that layer
/// count is stored.
pub const MODEL_FLAG_DERIVED_R: u16 = 1 << 1;

fn write_mesh(w: &mut ByteWriter, mesh: &Mesh, real: bool) {
    w.put_u32(mesh.n_layers() as u32);
    for layer in mesh.layers() {
        w.put_u8(match layer.order() {
            GateOrder::Ascending => 0,
            GateOrder::Descending => 1,
        });
        for &t in layer.thetas() {
            w.put_f64(t);
        }
        if !real {
            for &a in layer.alphas() {
                w.put_f64(a);
            }
        }
    }
}

fn read_mesh(r: &mut ByteReader<'_>, dim: usize, real: bool) -> Result<Mesh> {
    let n_layers = r.get_u32("mesh layer count")?;
    if n_layers == 0 || n_layers > MAX_REASONABLE {
        return Err(CodecError::Invalid(format!(
            "mesh layer count {n_layers} out of range"
        )));
    }
    let mut layers = Vec::with_capacity(n_layers as usize);
    for _ in 0..n_layers {
        let order = match r.get_u8("layer order")? {
            0 => GateOrder::Ascending,
            1 => GateOrder::Descending,
            other => {
                return Err(CodecError::Invalid(format!(
                    "unknown gate order tag {other}"
                )))
            }
        };
        let mut thetas = Vec::with_capacity(dim - 1);
        for _ in 0..dim - 1 {
            thetas.push(r.get_f64("layer theta")?);
        }
        let alphas = if real {
            vec![0.0; dim - 1]
        } else {
            let mut alphas = Vec::with_capacity(dim - 1);
            for _ in 0..dim - 1 {
                alphas.push(r.get_f64("layer alpha")?);
            }
            alphas
        };
        layers.push(MeshLayer::from_parts(dim, thetas, alphas, order));
    }
    Ok(Mesh::from_layers(layers))
}

/// True when `U_R` equals the deterministic inverse derivation from
/// `U_C` — exact f64 equality, so omission is lossless.
fn reconstruction_is_derived(model: &QuantumAutoencoder) -> bool {
    let derived = ReconstructionNetwork::from_reversed_compression(
        &model.compression,
        model.reconstruction.mesh().n_layers(),
    );
    derived.mesh() == model.reconstruction.mesh()
}

/// Serialise the model body (everything except the trailing CRC).
fn encode_body(model: &QuantumAutoencoder) -> Vec<u8> {
    let real = model.compression.mesh().is_real() && model.reconstruction.mesh().is_real();
    let derived_r = reconstruction_is_derived(model);
    let mut flags = 0u16;
    if real {
        flags |= MODEL_FLAG_REAL;
    }
    if derived_r {
        flags |= MODEL_FLAG_DERIVED_R;
    }
    let mut w = ByteWriter::new();
    w.put_bytes(&MODEL_MAGIC);
    w.put_u16(MODEL_VERSION);
    w.put_u16(flags);
    w.put_u32(model.dim() as u32);
    w.put_u32(model.compression.compressed_dim() as u32);
    w.put_u8(match model.compression.subspace_kind() {
        SubspaceKind::KeepLast => 0,
        SubspaceKind::KeepFirst => 1,
    });
    w.put_bytes(&[0, 0, 0]); // reserved
    write_mesh(&mut w, model.compression.mesh(), real);
    if derived_r {
        w.put_u32(model.reconstruction.mesh().n_layers() as u32);
    } else {
        write_mesh(&mut w, model.reconstruction.mesh(), real);
    }
    w.finish()
}

/// Serialise a model to its complete file bytes (body + CRC-32).
pub fn encode_model(model: &QuantumAutoencoder) -> Vec<u8> {
    let mut bytes = encode_body(model);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// The model's stable 64-bit identity: FNV-1a of the serialised body.
/// Containers record this so decoders can detect model mismatches.
pub fn model_id(model: &QuantumAutoencoder) -> u64 {
    fnv1a64(&encode_body(model))
}

/// Parse model bytes (the inverse of [`encode_model`]).
///
/// # Errors
/// Typed [`CodecError`] for bad magic, unsupported versions, truncation,
/// checksum mismatches, or inconsistent fields — never panics on
/// arbitrary input.
pub fn decode_model(bytes: &[u8]) -> Result<QuantumAutoencoder> {
    if bytes.len() < 4 {
        return Err(CodecError::Truncated {
            context: "model magic",
        });
    }
    let found: [u8; 4] = bytes[..4].try_into().expect("length checked");
    if found != MODEL_MAGIC {
        return Err(CodecError::BadMagic {
            expected: MODEL_MAGIC,
            found,
        });
    }
    // Verify the trailing CRC before trusting any field past the magic.
    if bytes.len() < 24 {
        return Err(CodecError::Truncated {
            context: "model header",
        });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }

    let mut r = ByteReader::new(body);
    r.get_bytes(4, "model magic")?; // already validated
    let version = r.get_u16("model version")?;
    if version == 0 || version > MODEL_VERSION {
        return Err(CodecError::UnsupportedVersion {
            found: version,
            supported: MODEL_VERSION,
        });
    }
    let flags = r.get_u16("model flags")?;
    let known = MODEL_FLAG_REAL | MODEL_FLAG_DERIVED_R;
    if flags & !known != 0 {
        return Err(CodecError::Invalid(format!(
            "unknown model flags: {:#06x}",
            flags & !known
        )));
    }
    let real = flags & MODEL_FLAG_REAL != 0;
    let derived_r = flags & MODEL_FLAG_DERIVED_R != 0;
    let dim = r.get_u32("state dimension")?;
    let compressed_dim = r.get_u32("compressed dimension")?;
    if !(2..=MAX_REASONABLE).contains(&dim) {
        return Err(CodecError::Invalid(format!(
            "state dimension {dim} out of range"
        )));
    }
    if compressed_dim == 0 || compressed_dim > dim {
        return Err(CodecError::Invalid(format!(
            "compressed dimension {compressed_dim} out of range for N={dim}"
        )));
    }
    let subspace = match r.get_u8("subspace kind")? {
        0 => SubspaceKind::KeepLast,
        1 => SubspaceKind::KeepFirst,
        other => {
            return Err(CodecError::Invalid(format!(
                "unknown subspace kind tag {other}"
            )))
        }
    };
    r.get_bytes(3, "reserved header bytes")?;

    let mesh_c = read_mesh(&mut r, dim as usize, real)?;
    let compression = CompressionNetwork::new(
        mesh_c,
        compressed_dim as usize,
        subspace,
        // Targets only matter during training; persisted models carry
        // inference state, so the standard target is restored.
        CompressionTargetKind::TrashPenalty,
    )?;
    let reconstruction = if derived_r {
        let layers_r = r.get_u32("derived U_R layer count")?;
        // Unlike a stored mesh (whose size is bounded by the bytes
        // actually present), a derived U_R is materialised from two
        // header integers — bound their *product* so a small crafted
        // file cannot demand a terabyte-scale allocation.
        if layers_r == 0 || u64::from(layers_r) * u64::from(dim) > u64::from(MAX_REASONABLE) {
            return Err(CodecError::Invalid(format!(
                "derived U_R layer count {layers_r} out of range for N={dim}"
            )));
        }
        ReconstructionNetwork::from_reversed_compression(&compression, layers_r as usize)
    } else {
        ReconstructionNetwork::new(read_mesh(&mut r, dim as usize, real)?)
    };
    if r.remaining() != 0 {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after model payload",
            r.remaining()
        )));
    }
    Ok(QuantumAutoencoder::new(compression, reconstruction))
}

/// Write a model file.
///
/// # Errors
/// Propagates IO failures.
pub fn save_model(path: &Path, model: &QuantumAutoencoder) -> Result<()> {
    std::fs::write(path, encode_model(model))?;
    Ok(())
}

/// Read a model file.
///
/// # Errors
/// IO failures plus everything [`decode_model`] reports.
pub fn load_model(path: &Path) -> Result<QuantumAutoencoder> {
    let bytes = std::fs::read(path)?;
    decode_model(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qn_core::config::SubspaceKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Real model with a derived `U_R` (exercises both size flags plus
    /// descending-order layer persistence).
    fn sample_model(seed: u64) -> QuantumAutoencoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let mesh_c = Mesh::random(8, 3, &mut rng);
        let compression = CompressionNetwork::new(
            mesh_c,
            3,
            SubspaceKind::KeepLast,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let reconstruction = ReconstructionNetwork::from_reversed_compression(&compression, 5);
        QuantumAutoencoder::new(compression, reconstruction)
    }

    /// Independently-random `U_R` (not derivable) with non-zero phases
    /// (not real): both flags clear, full layout exercised.
    fn sample_model_full(seed: u64) -> QuantumAutoencoder {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mesh_c = Mesh::random(8, 3, &mut rng);
        mesh_c.set_alpha_at(1, 2, 0.7);
        let compression = CompressionNetwork::new(
            mesh_c,
            3,
            SubspaceKind::KeepFirst,
            CompressionTargetKind::TrashPenalty,
        )
        .unwrap();
        let reconstruction = ReconstructionNetwork::new(Mesh::random(8, 4, &mut rng));
        QuantumAutoencoder::new(compression, reconstruction)
    }

    fn assert_bit_exact_roundtrip(model: &QuantumAutoencoder) {
        let bytes = encode_model(model);
        let loaded = decode_model(&bytes).unwrap();
        assert_eq!(loaded.dim(), model.dim());
        assert_eq!(
            loaded.compression.compressed_dim(),
            model.compression.compressed_dim()
        );
        assert_eq!(
            loaded.compression.subspace_kind(),
            model.compression.subspace_kind()
        );
        assert_eq!(loaded.export_parameters(), model.export_parameters());
        assert_eq!(loaded.compression.mesh(), model.compression.mesh());
        assert_eq!(loaded.reconstruction.mesh(), model.reconstruction.mesh());
        // Bit-exact forward amplitudes on an arbitrary input (real path;
        // complex meshes are covered by the mesh equality above).
        if model.compression.mesh().is_real() {
            let x: Vec<f64> = (0..8).map(|i| ((i + 1) as f64 * 0.17).sin()).collect();
            assert_eq!(
                loaded.compression.forward(&x),
                model.compression.forward(&x)
            );
        }
        // Re-encoding reproduces the identical file.
        assert_eq!(encode_model(&loaded), bytes);
    }

    #[test]
    fn save_load_is_bit_exact_with_size_flags() {
        assert_bit_exact_roundtrip(&sample_model(3));
    }

    #[test]
    fn save_load_is_bit_exact_on_the_full_layout() {
        assert_bit_exact_roundtrip(&sample_model_full(3));
    }

    #[test]
    fn size_flags_shrink_the_file() {
        let compact = encode_model(&sample_model(3)).len();
        let full = encode_model(&sample_model_full(3)).len();
        // Same dim; compact drops α arrays and the whole U_R mesh.
        assert!(
            compact * 2 < full,
            "compact {compact} bytes vs full {full} bytes"
        );
    }

    #[test]
    fn model_id_is_stable_and_discriminates() {
        let a = sample_model(1);
        let b = sample_model(2);
        assert_eq!(model_id(&a), model_id(&a));
        assert_ne!(model_id(&a), model_id(&b));
        let loaded = decode_model(&encode_model(&a)).unwrap();
        assert_eq!(model_id(&loaded), model_id(&a));
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let bytes = encode_model(&sample_model(4));
        for cut in 0..bytes.len() {
            let err = decode_model(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_caught_by_the_checksum() {
        let bytes = encode_model(&sample_model(5));
        for pos in [4usize, 9, 20, bytes.len() / 2, bytes.len() - 5] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let err = decode_model(&bad).expect_err("corruption must fail");
            assert!(
                matches!(err, CodecError::ChecksumMismatch { .. }),
                "flip at {pos}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn wrong_magic_and_future_versions_are_rejected() {
        let mut bytes = encode_model(&sample_model(6));
        let mut wrong = bytes.clone();
        wrong[..4].copy_from_slice(b"JPEG");
        assert!(matches!(
            decode_model(&wrong),
            Err(CodecError::BadMagic { .. })
        ));
        // Bump the version and fix the CRC so only the version check fires.
        bytes[4] = 0xFF;
        bytes[5] = 0xFF;
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        assert!(matches!(
            decode_model(&bytes),
            Err(CodecError::UnsupportedVersion {
                found: 0xFFFF,
                supported: MODEL_VERSION
            })
        ));
    }

    #[test]
    fn derived_layer_count_bomb_is_rejected() {
        // In a derived-U_R file the layer count is the u32 right before
        // the CRC. Inflate it so layers × dim far exceeds the allocation
        // bound; the loader must error instead of materialising it.
        let mut bytes = encode_model(&sample_model(8));
        let len = bytes.len();
        bytes[len - 8..len - 4].copy_from_slice(&0x00FF_FFFFu32.to_le_bytes());
        let crc = crc32(&bytes[..len - 4]).to_le_bytes();
        bytes[len - 4..].copy_from_slice(&crc);
        let err = decode_model(&bytes).expect_err("layer bomb must fail");
        assert!(
            matches!(err, CodecError::Invalid(ref m) if m.contains("layer count")),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("qn_codec_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.qnm");
        let model = sample_model(7);
        save_model(&path, &model).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.export_parameters(), model.export_parameters());
        std::fs::remove_file(&path).ok();
    }
}
