//! The `.qnc` compressed-image container.
//!
//! # Byte layout (format versions 1 and 2, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QNC1"
//! 4       2     format version (1 = rice, 2 = rice-pos / range)
//! 6       2     flags: bit 0 = per-tile scaled quantization
//!                      bit 1 = inline model present
//!                      bit 2 = per-position Rice coding (v2 only)
//!                      bit 3 = adaptive range coding   (v2 only)
//! 8       8     model id (FNV-1a 64 of the encoder's model body)
//! 16      4     image width   (pixels)
//! 20      4     image height  (pixels)
//! 24      2     tile size     (pixels per tile edge)
//! 26      2     latent dimension d (kept amplitudes per tile)
//! 28      1     quantizer bit depth
//! 29      3     reserved (must be 0)
//! 32      4     max tile norm (f32) — scale for 16-bit norm quantization
//! 36      …     [flags bit 1] inline model: length u32 + model bytes
//! …       4     payload length (bytes)
//! …       …     payload bitstream (layout below)
//! end−4   4     CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! **Version 1 payload** (`rice`), tiles in row-major order, bits
//! LSB-first:
//!
//! ```text
//! per tile:
//!   1 bit   occupancy (0 = all-zero tile, nothing follows)
//!   16 bits tile norm, quantized against the header's max norm
//!   [flags bit 0] 32 bits per-tile scale (f32 bit pattern)
//!   5 bits  Rice parameter k for this tile
//!   d ×     Rice(k)-coded zigzag symbols of the quantized latents
//! ```
//!
//! **Version 2 payload, flag bit 2** (`rice-pos`): one Rice parameter
//! per latent position, estimated over the whole tile panel, plus
//! predicted-norm deltas between raster-neighbouring occupied tiles:
//!
//! ```text
//! k-table:  5 bits k₀, then per position j = 1..d the signed delta
//!           kⱼ − kⱼ₋₁, zigzag-mapped and Rice(1)-coded
//! norm-k:   5 bits — Rice parameter of the norm-delta stream
//! per tile:
//!   1 bit   occupancy
//!   Rice(norm-k) zigzag of (norm_q − pred); pred = previous occupied
//!           tile's norm_q, initially 65535 (the max-norm tile's value)
//!   [flags bit 0] 32 bits per-tile scale (f32 bit pattern)
//!   d ×     Rice(kⱼ)-coded zigzag symbols
//! ```
//!
//! **Version 2 payload, flag bit 3** (`range`): a single adaptive
//! binary range-coded stream (see [`crate::entropy`]) carrying, per
//! tile: the occupancy bit (one adaptive context), the zigzagged norm
//! delta (Exp-Golomb, shared context set), the optional scale as 32
//! bypass bits, and each latent symbol Exp-Golomb-coded under its
//! position's context set. No side tables: the contexts adapt as the
//! stream decodes.
//!
//! # Versioning rules
//!
//! Readers reject versions above [`CONTAINER_VERSION`]; any layout
//! change bumps the version; the reserved header bytes absorb small
//! additions without a bump. A v1 container must not carry the v2
//! entropy flags (and vice versa: v2 requires exactly one of them) —
//! inconsistent pairings surface as
//! [`CodecError::UnsupportedCoder`].

use crate::bitstream::{
    best_rice_k, crc32, read_rice, unzigzag_signed, write_rice, zigzag_signed, BitReader,
    BitWriter, ByteReader, ByteWriter, RICE_K_BITS,
};
use crate::entropy::{decode_eg, encode_eg, EntropyCoder, RangeDecoder, RangeEncoder, PROB_INIT};
use crate::error::{CodecError, Result};
use crate::quantize::{Quantizer, MAX_BITS};

/// Leading magic of a container file.
pub const CONTAINER_MAGIC: [u8; 4] = *b"QNC1";
/// Highest container version this build reads. Version 1 is written
/// for `rice` containers (bit-exact with pre-v2 builds), version 2 for
/// `rice-pos` / `range`.
pub const CONTAINER_VERSION: u16 = 2;
/// The version `rice` containers carry.
pub const CONTAINER_VERSION_V1: u16 = 1;

/// Flag bit 0: per-tile scaled quantization.
pub const FLAG_PER_TILE_SCALE: u16 = 1 << 0;
/// Flag bit 1: the container embeds its own model file.
pub const FLAG_INLINE_MODEL: u16 = 1 << 1;
/// Flag bit 2 (v2): per-latent-position Rice coding.
pub const FLAG_ENTROPY_RICE_POS: u16 = 1 << 2;
/// Flag bit 3 (v2): adaptive binary range coding.
pub const FLAG_ENTROPY_RANGE: u16 = 1 << 3;

/// Levels of the 16-bit norm quantizer.
const NORM_LEVELS: u32 = u16::MAX as u32;
/// Predictor seed for the first occupied tile's norm delta: the
/// max-norm tile quantizes to exactly [`NORM_LEVELS`], so single-tile
/// images (and images whose first tile carries the peak) get a
/// zero-cost first delta.
const NORM_PRED_INIT: u32 = NORM_LEVELS;
/// Largest meaningful Rice parameter for the norm-delta stream
/// (zigzagged deltas are below 2^18).
const MAX_NORM_K: u32 = 17;
/// Rice parameter for the k-table's delta stream.
const K_TABLE_DELTA_K: u32 = 1;
/// Exp-Golomb bucket cap for range-coded values (both zigzag symbols
/// and norm deltas are below 2^18).
const MAX_EG_BUCKET: u32 = 17;
/// Adaptive context bins for range-coded symbol prefixes.
const SYM_CTX_BINS: usize = 10;
/// Adaptive context bins for range-coded norm-delta prefixes.
const NORM_CTX_BINS: usize = 12;
/// Latent positions with their own context set; higher positions share
/// the last set (bounds context memory for hostile headers).
const MAX_CTX_POSITIONS: usize = 64;
/// Hard cap on the tile count of a `range` container. Range-coded
/// occupancy bits compress below one bit per tile, so the v1 "one bit
/// per tile" payload-budget guard cannot bound the tile vector; this
/// cap does (4 Mi tiles ≈ an 8192×8192 image at tile 4), symmetric in
/// encoder and decoder.
const MAX_RANGE_TILES: usize = 1 << 22;
/// Decoded items (occupancy bits, norms, symbols) a `range` payload
/// byte may yield. A fully adapted context floors at probability
/// 2017/2048, so one decoded bin costs ≥ −log₂(2017/2048) ≈ 0.022
/// bits — at most ~364 items per byte from any stream our coder can
/// produce. 512 leaves margin while keeping decode memory and work
/// proportional to the *input* size: a small corrupt-but-CRC-valid
/// container cannot balloon into millions of decoded tiles.
const RANGE_ITEMS_PER_BYTE: usize = 512;

/// Upper bound on header dimensions (defends allocations against
/// corrupt headers; 2³⁰ pixels ≈ 1 gigapixel per side is far beyond any
/// workload this serves).
const MAX_DIM: u32 = 1 << 30;

/// Parsed fixed-size header of a container.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// Feature flags (`FLAG_*`).
    pub flags: u16,
    /// Identity of the encoding model.
    pub model_id: u64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Tile edge length in pixels.
    pub tile_size: u16,
    /// Kept amplitudes per tile.
    pub latent_dim: u16,
    /// Quantizer bit depth.
    pub bits: u8,
    /// Largest tile norm (norm-quantization scale).
    pub max_norm: f32,
}

impl ContainerHeader {
    /// Tiles per row.
    pub fn tiles_x(&self) -> usize {
        (self.width as usize)
            .div_ceil(self.tile_size as usize)
            .max(1)
    }

    /// Tiles per column.
    pub fn tiles_y(&self) -> usize {
        (self.height as usize)
            .div_ceil(self.tile_size as usize)
            .max(1)
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        self.tiles_x() * self.tiles_y()
    }

    /// Whether per-tile scales are stored.
    pub fn per_tile_scale(&self) -> bool {
        self.flags & FLAG_PER_TILE_SCALE != 0
    }

    /// Whether a model file is embedded.
    pub fn inline_model(&self) -> bool {
        self.flags & FLAG_INLINE_MODEL != 0
    }

    /// The entropy coder the version/flag pair names.
    ///
    /// # Errors
    /// [`CodecError::UnsupportedCoder`] for inconsistent pairings: a v1
    /// container carrying v2 entropy flags, a v2 container carrying
    /// none (or both) — the typed "this build does not read that
    /// coder" signal.
    pub fn entropy(&self) -> Result<EntropyCoder> {
        let coder_bits = self.flags & (FLAG_ENTROPY_RICE_POS | FLAG_ENTROPY_RANGE);
        match (self.version, coder_bits) {
            (CONTAINER_VERSION_V1, 0) => Ok(EntropyCoder::Rice),
            (CONTAINER_VERSION, FLAG_ENTROPY_RICE_POS) => Ok(EntropyCoder::RicePos),
            (CONTAINER_VERSION, FLAG_ENTROPY_RANGE) => Ok(EntropyCoder::Range),
            _ => Err(CodecError::UnsupportedCoder { flags: coder_bits }),
        }
    }

    fn validate(&self) -> Result<()> {
        if self.version == 0 || self.version > CONTAINER_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: self.version,
                supported: CONTAINER_VERSION,
            });
        }
        let known =
            FLAG_PER_TILE_SCALE | FLAG_INLINE_MODEL | FLAG_ENTROPY_RICE_POS | FLAG_ENTROPY_RANGE;
        if self.flags & !known != 0 {
            return Err(CodecError::Invalid(format!(
                "unknown container flags: {:#06x}",
                self.flags & !known
            )));
        }
        self.entropy()?;
        if self.width == 0 || self.height == 0 || self.width > MAX_DIM || self.height > MAX_DIM {
            return Err(CodecError::Invalid(format!(
                "image dimensions {}x{} out of range",
                self.width, self.height
            )));
        }
        if self.tile_size == 0 {
            return Err(CodecError::Invalid("tile size must be positive".into()));
        }
        if self.latent_dim == 0 {
            return Err(CodecError::Invalid(
                "latent dimension must be positive".into(),
            ));
        }
        if self.bits == 0 || self.bits > MAX_BITS {
            return Err(CodecError::Invalid(format!(
                "bit depth must be in 1..={MAX_BITS}, got {}",
                self.bits
            )));
        }
        if !self.max_norm.is_finite() || self.max_norm < 0.0 {
            return Err(CodecError::Invalid(format!(
                "max norm {} is not a finite non-negative value",
                self.max_norm
            )));
        }
        Ok(())
    }
}

/// One occupied tile's compressed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePayload {
    /// Tile norm quantized against the header's `max_norm`
    /// (`norm ≈ norm_q / 65535 · max_norm`).
    pub norm_q: u16,
    /// Per-tile amplitude scale (present iff [`FLAG_PER_TILE_SCALE`]).
    pub scale: Option<f32>,
    /// Quantizer level per latent amplitude (length = `latent_dim`).
    pub levels: Vec<u32>,
}

/// A fully parsed (or to-be-written) container.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    /// Fixed-size header.
    pub header: ContainerHeader,
    /// Embedded model file bytes, when present.
    pub inline_model: Option<Vec<u8>>,
    /// Per-tile payloads, row-major; `None` marks an all-zero tile.
    pub tiles: Vec<Option<TilePayload>>,
}

/// Quantize a tile norm against the container's max norm.
pub fn quantize_norm(norm: f64, max_norm: f32) -> u16 {
    if max_norm <= 0.0 {
        return 0;
    }
    let unit = (norm / f64::from(max_norm)).clamp(0.0, 1.0);
    (unit * f64::from(NORM_LEVELS)).round() as u16
}

/// Reconstruct a tile norm.
pub fn dequantize_norm(norm_q: u16, max_norm: f32) -> f64 {
    f64::from(norm_q) / f64::from(NORM_LEVELS) * f64::from(max_norm)
}

impl Container {
    /// Serialise to complete file bytes (header + payload + CRC).
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when the container is internally
    /// inconsistent (wrong tile count, levels out of range for the bit
    /// depth, scale presence disagreeing with the flags).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        self.header.validate()?;
        if self.tiles.len() != self.header.tile_count() {
            return Err(CodecError::Invalid(format!(
                "container has {} tiles, header implies {}",
                self.tiles.len(),
                self.header.tile_count()
            )));
        }
        if self.header.inline_model() != self.inline_model.is_some() {
            return Err(CodecError::Invalid(
                "inline-model flag disagrees with inline model presence".into(),
            ));
        }
        let quantizer = Quantizer::new(self.header.bits)?;
        let symbols = self.tile_symbols(&quantizer)?;
        let payload = match self.header.entropy()? {
            EntropyCoder::Rice => self.payload_rice(&symbols),
            EntropyCoder::RicePos => self.payload_rice_pos(&symbols),
            EntropyCoder::Range => {
                if self.tiles.len() > MAX_RANGE_TILES {
                    return Err(CodecError::Invalid(format!(
                        "{} tiles exceed the {MAX_RANGE_TILES}-tile limit of the range \
                         coder; use rice or rice-pos for images this large",
                        self.tiles.len()
                    )));
                }
                self.payload_range(&symbols)
            }
        };

        let mut w = ByteWriter::new();
        w.put_bytes(&CONTAINER_MAGIC);
        w.put_u16(self.header.version);
        w.put_u16(self.header.flags);
        w.put_u64(self.header.model_id);
        w.put_u32(self.header.width);
        w.put_u32(self.header.height);
        w.put_u16(self.header.tile_size);
        w.put_u16(self.header.latent_dim);
        w.put_u8(self.header.bits);
        w.put_bytes(&[0, 0, 0]); // reserved
        w.put_f32(self.header.max_norm);
        if let Some(model) = &self.inline_model {
            w.put_u32(model.len() as u32);
            w.put_bytes(model);
        }
        w.put_u32(payload.len() as u32);
        w.put_bytes(&payload);
        let mut bytes = w.finish();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        Ok(bytes)
    }

    /// Parse container bytes (the inverse of [`Container::to_bytes`]).
    ///
    /// # Errors
    /// Typed [`CodecError`] for every malformation — truncation, bad
    /// magic, unknown versions/flags, checksum or field-range failures.
    /// Never panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(CodecError::Truncated {
                context: "container magic",
            });
        }
        let found: [u8; 4] = bytes[..4].try_into().expect("length checked");
        if found != CONTAINER_MAGIC {
            return Err(CodecError::BadMagic {
                expected: CONTAINER_MAGIC,
                found,
            });
        }
        if bytes.len() < 40 {
            return Err(CodecError::Truncated {
                context: "container header",
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }

        let mut r = ByteReader::new(body);
        r.get_bytes(4, "container magic")?;
        let header = ContainerHeader {
            version: r.get_u16("container version")?,
            flags: r.get_u16("container flags")?,
            model_id: r.get_u64("model id")?,
            width: r.get_u32("image width")?,
            height: r.get_u32("image height")?,
            tile_size: r.get_u16("tile size")?,
            latent_dim: r.get_u16("latent dimension")?,
            bits: {
                let b = r.get_u8("bit depth")?;
                r.get_bytes(3, "reserved header bytes")?;
                b
            },
            max_norm: r.get_f32("max norm")?,
        };
        header.validate()?;

        let inline_model = if header.inline_model() {
            let len = r.get_u32("inline model length")? as usize;
            if len > r.remaining() {
                return Err(CodecError::Truncated {
                    context: "inline model bytes",
                });
            }
            Some(r.get_bytes(len, "inline model bytes")?.to_vec())
        } else {
            None
        };

        let payload_len = r.get_u32("payload length")? as usize;
        if payload_len != r.remaining() {
            return Err(CodecError::Invalid(format!(
                "payload length field says {payload_len} bytes, {} remain",
                r.remaining()
            )));
        }
        let payload = r.get_bytes(payload_len, "payload bytes")?;

        let entropy = header.entropy()?;
        // Bound the tile-vector allocation before it happens (a crafted
        // width/height pair can imply ~2^60 tiles). Under Rice coding
        // every tile costs at least its occupancy bit, so the payload's
        // bit count bounds the grid; range-coded occupancy compresses
        // below a bit per tile, so that mode carries its own hard cap.
        match entropy {
            EntropyCoder::Rice | EntropyCoder::RicePos => {
                if header.tile_count() > payload.len() * 8 {
                    return Err(CodecError::Invalid(format!(
                        "header implies {} tiles but the payload holds only {} bits",
                        header.tile_count(),
                        payload.len() * 8
                    )));
                }
            }
            EntropyCoder::Range => {
                if header.tile_count() > MAX_RANGE_TILES {
                    return Err(CodecError::Invalid(format!(
                        "header implies {} tiles, above the {MAX_RANGE_TILES}-tile limit \
                         of the range coder",
                        header.tile_count()
                    )));
                }
            }
        }
        let quantizer = Quantizer::new(header.bits)?;
        let tiles = match entropy {
            EntropyCoder::Rice => read_tiles_rice(&header, &quantizer, payload)?,
            EntropyCoder::RicePos => read_tiles_rice_pos(&header, &quantizer, payload)?,
            EntropyCoder::Range => read_tiles_range(&header, &quantizer, payload)?,
        };

        Ok(Container {
            header,
            inline_model,
            tiles,
        })
    }

    /// Validate every tile against the header and zigzag-map its
    /// levels — the symbol view all three payload writers share: the
    /// occupied tiles' symbols concatenated in tile order, `latent_dim`
    /// per tile (one flat buffer, not a vector per tile).
    fn tile_symbols(&self, quantizer: &Quantizer) -> Result<Vec<u32>> {
        let levels = quantizer.levels();
        let zero_level = quantizer.zero_level();
        let d = self.header.latent_dim as usize;
        let occupied = self.tiles.iter().flatten().count();
        let mut symbols = Vec::with_capacity(occupied * d);
        for payload in self.tiles.iter().flatten() {
            if payload.levels.len() != d {
                return Err(CodecError::Invalid(format!(
                    "tile has {} latents, header says {}",
                    payload.levels.len(),
                    self.header.latent_dim
                )));
            }
            if payload.scale.is_some() != self.header.per_tile_scale() {
                return Err(CodecError::Invalid(
                    "tile scale presence disagrees with container flags".into(),
                ));
            }
            for &level in &payload.levels {
                if level >= levels {
                    return Err(CodecError::Invalid(format!(
                        "level {level} out of range for {}-bit quantizer",
                        self.header.bits
                    )));
                }
                symbols.push(crate::quantize::zigzag(level, zero_level));
            }
        }
        Ok(symbols)
    }

    /// The v1 payload: per-tile Rice parameter, raw 16-bit norms.
    /// Bit-exact with every pre-v2 build.
    fn payload_rice(&self, symbols: &[u32]) -> Vec<u8> {
        let max_k = u32::from(self.header.bits) + 1;
        let mut bits = BitWriter::new();
        let mut chunks = symbols.chunks_exact(self.header.latent_dim as usize);
        for tile in &self.tiles {
            let Some(payload) = tile else {
                bits.write_bit(false);
                continue;
            };
            let syms = chunks.next().expect("one symbol chunk per occupied tile");
            bits.write_bit(true);
            bits.write_bits(u64::from(payload.norm_q), 16);
            if let Some(scale) = payload.scale {
                bits.write_bits(u64::from(scale.to_bits()), 32);
            }
            let k = best_rice_k(syms, max_k);
            bits.write_bits(u64::from(k), RICE_K_BITS);
            for &s in syms {
                write_rice(&mut bits, s, k);
            }
        }
        bits.finish()
    }

    /// The v2 `rice-pos` payload: delta-coded per-position k-table and
    /// norm-delta stream up front, then the tiles.
    fn payload_rice_pos(&self, symbols: &[u32]) -> Vec<u8> {
        let d = self.header.latent_dim as usize;
        let max_k = u32::from(self.header.bits) + 1;

        // Per-position Rice parameters over the whole tile panel.
        let mut k_table = vec![0u32; d];
        let mut column = Vec::new();
        for (j, k) in k_table.iter_mut().enumerate() {
            column.clear();
            column.extend(symbols.chunks_exact(d).map(|syms| syms[j]));
            *k = best_rice_k(&column, max_k);
        }

        // Predicted-norm deltas between raster-neighbouring occupied
        // tiles, and the Rice parameter that fits them best.
        let mut pred = NORM_PRED_INIT;
        let mut deltas = Vec::new();
        for tile in self.tiles.iter().flatten() {
            let norm_q = u32::from(tile.norm_q);
            deltas.push(zigzag_signed(i64::from(norm_q) - i64::from(pred)) as u32);
            pred = norm_q;
        }
        let norm_k = best_rice_k(&deltas, MAX_NORM_K);

        let mut bits = BitWriter::new();
        bits.write_bits(u64::from(k_table[0]), RICE_K_BITS);
        for j in 1..d {
            let delta = i64::from(k_table[j]) - i64::from(k_table[j - 1]);
            write_rice(&mut bits, zigzag_signed(delta) as u32, K_TABLE_DELTA_K);
        }
        bits.write_bits(u64::from(norm_k), RICE_K_BITS);

        let mut delta_iter = deltas.into_iter();
        let mut chunks = symbols.chunks_exact(d);
        for tile in &self.tiles {
            let Some(payload) = tile else {
                bits.write_bit(false);
                continue;
            };
            let syms = chunks.next().expect("one symbol chunk per occupied tile");
            bits.write_bit(true);
            write_rice(
                &mut bits,
                delta_iter.next().expect("one delta per tile"),
                norm_k,
            );
            if let Some(scale) = payload.scale {
                bits.write_bits(u64::from(scale.to_bits()), 32);
            }
            for (j, &s) in syms.iter().enumerate() {
                write_rice(&mut bits, s, k_table[j]);
            }
        }
        bits.finish()
    }

    /// The v2 `range` payload: one adaptive binary range-coded stream,
    /// per-position contexts, no side tables.
    fn payload_range(&self, symbols: &[u32]) -> Vec<u8> {
        let d = self.header.latent_dim as usize;
        let ctx_sets = d.clamp(1, MAX_CTX_POSITIONS);
        let mut enc = RangeEncoder::new();
        let mut occ_ctx = PROB_INIT;
        let mut norm_ctx = [PROB_INIT; NORM_CTX_BINS];
        let mut sym_ctx = vec![[PROB_INIT; SYM_CTX_BINS]; ctx_sets];
        let mut pred = NORM_PRED_INIT;
        let mut chunks = symbols.chunks_exact(d);
        for tile in &self.tiles {
            let Some(payload) = tile else {
                enc.encode_bit(&mut occ_ctx, false);
                continue;
            };
            let syms = chunks.next().expect("one symbol chunk per occupied tile");
            enc.encode_bit(&mut occ_ctx, true);
            let norm_q = u32::from(payload.norm_q);
            let delta = zigzag_signed(i64::from(norm_q) - i64::from(pred)) as u32;
            encode_eg(&mut enc, &mut norm_ctx, delta);
            pred = norm_q;
            if let Some(scale) = payload.scale {
                enc.encode_direct(u64::from(scale.to_bits()), 32);
            }
            for (j, &s) in syms.iter().enumerate() {
                encode_eg(&mut enc, &mut sym_ctx[j.min(ctx_sets - 1)], s);
            }
        }
        enc.finish()
    }
}

/// Shared per-tile field validation: the scale read by both v2 readers.
fn validate_scale(raw: u32) -> Result<f32> {
    let s = f32::from_bits(raw);
    if !s.is_finite() || s <= 0.0 {
        return Err(CodecError::Invalid(format!(
            "tile scale {s} is not a positive finite value"
        )));
    }
    Ok(s)
}

/// Apply a decoded zigzag norm delta to the running predictor,
/// rejecting out-of-range results (corrupt stream).
fn apply_norm_delta(pred: &mut u32, delta_zz: u32) -> Result<u16> {
    let norm = i64::from(*pred) + unzigzag_signed(u64::from(delta_zz));
    if !(0..=i64::from(NORM_LEVELS)).contains(&norm) {
        return Err(CodecError::Invalid(format!(
            "norm delta walks the predictor to {norm}, outside the 16-bit norm range"
        )));
    }
    *pred = norm as u32;
    Ok(norm as u16)
}

/// Decode the v1 payload (per-tile Rice parameter, raw norms).
fn read_tiles_rice(
    header: &ContainerHeader,
    quantizer: &Quantizer,
    payload: &[u8],
) -> Result<Vec<Option<TilePayload>>> {
    let levels = quantizer.levels();
    let zero_level = quantizer.zero_level();
    let mut bits = BitReader::new(payload);
    let mut tiles = Vec::with_capacity(header.tile_count());
    for _ in 0..header.tile_count() {
        if !bits.read_bit()? {
            tiles.push(None);
            continue;
        }
        let norm_q = bits.read_bits(16)? as u16;
        let scale = if header.per_tile_scale() {
            Some(validate_scale(bits.read_bits(32)? as u32)?)
        } else {
            None
        };
        let k = bits.read_bits(RICE_K_BITS)? as u32;
        if k > u32::from(header.bits) + 1 {
            return Err(CodecError::Invalid(format!(
                "rice parameter {k} exceeds the maximum for {}-bit symbols",
                header.bits
            )));
        }
        let mut tile_levels = Vec::with_capacity(header.latent_dim as usize);
        for _ in 0..header.latent_dim {
            let symbol = read_rice(&mut bits, k)?;
            if symbol >= levels {
                return Err(CodecError::Invalid(format!(
                    "zigzag symbol {symbol} out of range for {}-bit quantizer",
                    header.bits
                )));
            }
            tile_levels.push(crate::quantize::unzigzag(symbol, zero_level));
        }
        tiles.push(Some(TilePayload {
            norm_q,
            scale,
            levels: tile_levels,
        }));
    }
    Ok(tiles)
}

/// Decode the v2 `rice-pos` payload.
fn read_tiles_rice_pos(
    header: &ContainerHeader,
    quantizer: &Quantizer,
    payload: &[u8],
) -> Result<Vec<Option<TilePayload>>> {
    let levels = quantizer.levels();
    let zero_level = quantizer.zero_level();
    let d = header.latent_dim as usize;
    let max_k = u32::from(header.bits) + 1;
    let mut bits = BitReader::new(payload);

    let mut k_table = Vec::with_capacity(d);
    let mut k = bits.read_bits(RICE_K_BITS)? as i64;
    for j in 0..d {
        if j > 0 {
            let delta_zz = read_rice(&mut bits, K_TABLE_DELTA_K)?;
            k += unzigzag_signed(u64::from(delta_zz));
        }
        if !(0..=i64::from(max_k)).contains(&k) {
            return Err(CodecError::Invalid(format!(
                "per-position rice parameter {k} at position {j} exceeds the maximum \
                 for {}-bit symbols",
                header.bits
            )));
        }
        k_table.push(k as u32);
    }
    let norm_k = bits.read_bits(RICE_K_BITS)? as u32;
    if norm_k > MAX_NORM_K {
        return Err(CodecError::Invalid(format!(
            "norm-delta rice parameter {norm_k} exceeds the maximum {MAX_NORM_K}"
        )));
    }

    let mut pred = NORM_PRED_INIT;
    let mut tiles = Vec::with_capacity(header.tile_count());
    for _ in 0..header.tile_count() {
        if !bits.read_bit()? {
            tiles.push(None);
            continue;
        }
        let norm_q = apply_norm_delta(&mut pred, read_rice(&mut bits, norm_k)?)?;
        let scale = if header.per_tile_scale() {
            Some(validate_scale(bits.read_bits(32)? as u32)?)
        } else {
            None
        };
        let mut tile_levels = Vec::with_capacity(d);
        for &kj in &k_table {
            let symbol = read_rice(&mut bits, kj)?;
            if symbol >= levels {
                return Err(CodecError::Invalid(format!(
                    "zigzag symbol {symbol} out of range for {}-bit quantizer",
                    header.bits
                )));
            }
            tile_levels.push(crate::quantize::unzigzag(symbol, zero_level));
        }
        tiles.push(Some(TilePayload {
            norm_q,
            scale,
            levels: tile_levels,
        }));
    }
    Ok(tiles)
}

/// Decode the v2 `range` payload.
fn read_tiles_range(
    header: &ContainerHeader,
    quantizer: &Quantizer,
    payload: &[u8],
) -> Result<Vec<Option<TilePayload>>> {
    let levels = quantizer.levels();
    let zero_level = quantizer.zero_level();
    let d = header.latent_dim as usize;
    let ctx_sets = d.clamp(1, MAX_CTX_POSITIONS);
    let mut dec = RangeDecoder::new(payload)?;
    let mut occ_ctx = PROB_INIT;
    let mut norm_ctx = [PROB_INIT; NORM_CTX_BINS];
    let mut sym_ctx = vec![[PROB_INIT; SYM_CTX_BINS]; ctx_sets];
    let mut pred = NORM_PRED_INIT;
    // Decode memory must stay proportional to the *input*: no
    // preallocation from header fields (a tiny CRC-valid file must not
    // reserve a MAX_RANGE_TILES-sized vector up front), and a budget of
    // decoded items tied to the payload size — any stream our encoder
    // can produce stays far under it, while a corrupt stream that
    // "decodes" endless near-free items hits a typed error instead of
    // ballooning.
    let mut item_budget = payload
        .len()
        .saturating_mul(RANGE_ITEMS_PER_BYTE)
        .saturating_add(64);
    let mut spend = |items: usize| -> Result<()> {
        item_budget = item_budget.checked_sub(items).ok_or_else(|| {
            CodecError::Invalid(format!(
                "range payload of {} bytes implies more decoded symbols than it can carry",
                payload.len()
            ))
        })?;
        Ok(())
    };
    let mut tiles = Vec::new();
    for _ in 0..header.tile_count() {
        spend(1)?;
        if !dec.decode_bit(&mut occ_ctx)? {
            tiles.push(None);
            continue;
        }
        spend(1 + d)?;
        let delta_zz = decode_eg(&mut dec, &mut norm_ctx, MAX_EG_BUCKET)?;
        let norm_q = apply_norm_delta(&mut pred, delta_zz)?;
        let scale = if header.per_tile_scale() {
            Some(validate_scale(dec.decode_direct(32)? as u32)?)
        } else {
            None
        };
        let mut tile_levels = Vec::with_capacity(d);
        for j in 0..d {
            let symbol = decode_eg(&mut dec, &mut sym_ctx[j.min(ctx_sets - 1)], MAX_EG_BUCKET)?;
            if symbol >= levels {
                return Err(CodecError::Invalid(format!(
                    "zigzag symbol {symbol} out of range for {}-bit quantizer",
                    header.bits
                )));
            }
            tile_levels.push(crate::quantize::unzigzag(symbol, zero_level));
        }
        tiles.push(Some(TilePayload {
            norm_q,
            scale,
            levels: tile_levels,
        }));
    }
    Ok(tiles)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_container(per_tile_scale: bool, inline_model: Option<Vec<u8>>) -> Container {
        let mut flags = 0u16;
        if per_tile_scale {
            flags |= FLAG_PER_TILE_SCALE;
        }
        if inline_model.is_some() {
            flags |= FLAG_INLINE_MODEL;
        }
        let header = ContainerHeader {
            version: CONTAINER_VERSION_V1,
            flags,
            model_id: 0xDEAD_BEEF_CAFE_F00D,
            width: 10,
            height: 7,
            tile_size: 4,
            latent_dim: 5,
            bits: 8,
            max_norm: 3.5,
        };
        let tiles = (0..header.tile_count())
            .map(|i| {
                if i % 3 == 2 {
                    None
                } else {
                    Some(TilePayload {
                        norm_q: (i * 9991 % 65536) as u16,
                        scale: per_tile_scale.then_some(0.25 + i as f32 * 0.1),
                        levels: (0..5).map(|j| ((i * 37 + j * 11) % 256) as u32).collect(),
                    })
                }
            })
            .collect();
        Container {
            header,
            inline_model,
            tiles,
        }
    }

    /// Rewrite a v1 sample as a v2 container carrying `coder`.
    fn with_entropy(mut c: Container, coder: EntropyCoder) -> Container {
        c.header.version = coder.container_version();
        c.header.flags &= !(FLAG_ENTROPY_RICE_POS | FLAG_ENTROPY_RANGE);
        c.header.flags |= coder.container_flags();
        c
    }

    #[test]
    fn roundtrip_is_exact() {
        for per_tile in [false, true] {
            for model in [None, Some(vec![1u8, 2, 3, 4, 5])] {
                let c = sample_container(per_tile, model);
                let bytes = c.to_bytes().unwrap();
                let back = Container::from_bytes(&bytes).unwrap();
                assert_eq!(back, c);
                // Deterministic re-serialisation.
                assert_eq!(back.to_bytes().unwrap(), bytes);
            }
        }
    }

    #[test]
    fn v2_coders_roundtrip_exactly_and_agree_on_tiles() {
        for coder in [EntropyCoder::RicePos, EntropyCoder::Range] {
            for per_tile in [false, true] {
                for model in [None, Some(vec![1u8, 2, 3])] {
                    let c = with_entropy(sample_container(per_tile, model), coder);
                    let bytes = c.to_bytes().unwrap();
                    let back = Container::from_bytes(&bytes).unwrap();
                    assert_eq!(back, c, "{coder} per_tile={per_tile}");
                    assert_eq!(back.to_bytes().unwrap(), bytes, "{coder}");
                    assert_eq!(back.header.entropy().unwrap(), coder);
                    // Same tiles as the v1 encoding of the same data:
                    // entropy coding is lossless re the levels.
                    let v1 = sample_container(per_tile, None);
                    assert_eq!(back.tiles, v1.tiles, "{coder}");
                }
            }
        }
    }

    #[test]
    fn inconsistent_coder_version_pairings_are_typed_errors() {
        // v1 carrying a v2 entropy flag.
        let mut c = sample_container(false, None);
        c.header.flags |= FLAG_ENTROPY_RICE_POS;
        assert!(matches!(
            c.to_bytes(),
            Err(CodecError::UnsupportedCoder { .. })
        ));
        // v2 with no coder flag at all.
        let mut c = sample_container(false, None);
        c.header.version = CONTAINER_VERSION;
        assert!(matches!(
            c.to_bytes(),
            Err(CodecError::UnsupportedCoder { .. })
        ));
        // v2 with both coder flags.
        let mut c = with_entropy(sample_container(false, None), EntropyCoder::RicePos);
        c.header.flags |= FLAG_ENTROPY_RANGE;
        assert!(matches!(
            c.to_bytes(),
            Err(CodecError::UnsupportedCoder { .. })
        ));
        // The same pairings forged into serialized bytes fail on read.
        let good = with_entropy(sample_container(false, None), EntropyCoder::Range)
            .to_bytes()
            .unwrap();
        let mut forged = good.clone();
        forged[4..6].copy_from_slice(&CONTAINER_VERSION_V1.to_le_bytes());
        let body = forged.len() - 4;
        let crc = crc32(&forged[..body]).to_le_bytes();
        forged[body..].copy_from_slice(&crc);
        assert!(matches!(
            Container::from_bytes(&forged),
            Err(CodecError::UnsupportedCoder { .. })
        ));
    }

    #[test]
    fn v2_truncation_and_flips_never_panic() {
        for coder in [EntropyCoder::RicePos, EntropyCoder::Range] {
            let bytes = with_entropy(sample_container(true, None), coder)
                .to_bytes()
                .unwrap();
            for cut in 0..bytes.len() {
                assert!(
                    Container::from_bytes(&bytes[..cut]).is_err(),
                    "{coder}: cut {cut}"
                );
            }
            for pos in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x10;
                assert!(
                    Container::from_bytes(&bad).is_err(),
                    "{coder}: flip at {pos} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn single_occupied_tile_norm_delta_is_cheap() {
        // A 4×4 single-tile container: the sole tile carries the max
        // norm, so its quantized norm is exactly 65535 and the seeded
        // predictor makes the delta zero — rice-pos must beat v1's raw
        // 16-bit norm even after paying for the k-table.
        let header = ContainerHeader {
            version: CONTAINER_VERSION_V1,
            flags: 0,
            model_id: 1,
            width: 4,
            height: 4,
            tile_size: 4,
            latent_dim: 8,
            bits: 8,
            max_norm: 2.0,
        };
        let tiles = vec![Some(TilePayload {
            norm_q: u16::MAX,
            scale: None,
            levels: vec![200, 140, 131, 126, 129, 128, 127, 128],
        })];
        let v1 = Container {
            header,
            inline_model: None,
            tiles,
        };
        let v1_bytes = v1.to_bytes().unwrap();
        let v2 = with_entropy(v1.clone(), EntropyCoder::RicePos);
        let v2_bytes = v2.to_bytes().unwrap();
        assert!(
            v2_bytes.len() <= v1_bytes.len(),
            "rice-pos {} bytes vs rice {} bytes on a single PCA-ordered tile",
            v2_bytes.len(),
            v1_bytes.len()
        );
        assert_eq!(Container::from_bytes(&v2_bytes).unwrap().tiles, v2.tiles);
    }

    #[test]
    fn header_geometry_matches_tiling_rules() {
        let c = sample_container(false, None);
        // 10×7 at tile 4 → 3×2 tiles, like qn_image::tiles::tile.
        assert_eq!(c.header.tiles_x(), 3);
        assert_eq!(c.header.tiles_y(), 2);
        assert_eq!(c.header.tile_count(), 6);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_container(true, Some(vec![9u8; 64]))
            .to_bytes()
            .unwrap();
        for cut in 0..bytes.len() {
            let err = Container::from_bytes(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let bytes = sample_container(false, None).to_bytes().unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                Container::from_bytes(&bad).is_err(),
                "flip at {pos} went unnoticed"
            );
        }
    }

    #[test]
    fn unknown_flags_and_versions_are_rejected() {
        let mut c = sample_container(false, None);
        c.header.flags = 0x8000;
        assert!(matches!(c.to_bytes(), Err(CodecError::Invalid(_))));
        c.header.flags = 0;
        c.header.version = CONTAINER_VERSION + 1;
        assert!(matches!(
            c.to_bytes(),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn inconsistent_containers_cannot_serialise() {
        // Wrong tile count.
        let mut c = sample_container(false, None);
        c.tiles.pop();
        assert!(c.to_bytes().is_err());
        // Level out of range for the bit depth.
        let mut c = sample_container(false, None);
        if let Some(Some(t)) = c.tiles.first_mut().map(|t| t.as_mut()) {
            t.levels[0] = 256;
        }
        assert!(c.to_bytes().is_err());
        // Scale present without the flag.
        let mut c = sample_container(false, None);
        if let Some(Some(t)) = c.tiles.first_mut().map(|t| t.as_mut()) {
            t.scale = Some(1.0);
        }
        assert!(c.to_bytes().is_err());
    }

    #[test]
    fn gigapixel_header_bomb_is_rejected_not_allocated() {
        // A crafted header claiming a ~2^60-tile grid must produce a
        // typed error before the tile vector is allocated.
        let mut bytes = sample_container(false, None).to_bytes().unwrap();
        bytes[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes()); // width
        bytes[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes()); // height
        bytes[24..26].copy_from_slice(&1u16.to_le_bytes()); // tile_size
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let err = Container::from_bytes(&bytes).expect_err("bomb must fail");
        assert!(
            matches!(err, CodecError::Invalid(ref m) if m.contains("tiles")),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn norm_quantization_is_tight() {
        let max_norm = 4.0f32;
        for i in 0..=1000 {
            let norm = f64::from(max_norm) * f64::from(i) / 1000.0;
            let back = dequantize_norm(quantize_norm(norm, max_norm), max_norm);
            assert!(
                (back - norm).abs() <= f64::from(max_norm) / f64::from(u16::MAX) + 1e-12,
                "norm {norm} → {back}"
            );
        }
        assert_eq!(quantize_norm(99.0, 4.0), u16::MAX, "clamped above");
        assert_eq!(quantize_norm(1.0, 0.0), 0, "degenerate scale");
    }
}
