//! The `.qnc` compressed-image container.
//!
//! # Byte layout (format version 1, all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QNC1"
//! 4       2     format version (current: 1)
//! 6       2     flags: bit 0 = per-tile scaled quantization
//!                      bit 1 = inline model present
//! 8       8     model id (FNV-1a 64 of the encoder's model body)
//! 16      4     image width   (pixels)
//! 20      4     image height  (pixels)
//! 24      2     tile size     (pixels per tile edge)
//! 26      2     latent dimension d (kept amplitudes per tile)
//! 28      1     quantizer bit depth
//! 29      3     reserved (must be 0)
//! 32      4     max tile norm (f32) — scale for 16-bit norm quantization
//! 36      …     [flags bit 1] inline model: length u32 + model bytes
//! …       4     payload length (bytes)
//! …       …     payload bitstream (layout below)
//! end−4   4     CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! Payload bitstream, tiles in row-major tile order, bits LSB-first:
//!
//! ```text
//! per tile:
//!   1 bit   occupancy (0 = all-zero tile, nothing follows)
//!   16 bits tile norm, quantized against the header's max norm
//!   [flags bit 0] 32 bits per-tile scale (f32 bit pattern)
//!   5 bits  Rice parameter k for this tile
//!   d ×     Rice(k)-coded zigzag symbols of the quantized latents
//! ```
//!
//! # Versioning rules
//!
//! Same policy as the model format: readers reject versions above
//! [`CONTAINER_VERSION`]; any layout change bumps the version; the
//! reserved header bytes absorb small additions without a bump.

use crate::bitstream::{
    best_rice_k, crc32, read_rice, write_rice, BitReader, BitWriter, ByteReader, ByteWriter,
    RICE_K_BITS,
};
use crate::error::{CodecError, Result};
use crate::quantize::MAX_BITS;

/// Leading magic of a container file.
pub const CONTAINER_MAGIC: [u8; 4] = *b"QNC1";
/// Highest container version this build reads and the version it writes.
pub const CONTAINER_VERSION: u16 = 1;

/// Flag bit 0: per-tile scaled quantization.
pub const FLAG_PER_TILE_SCALE: u16 = 1 << 0;
/// Flag bit 1: the container embeds its own model file.
pub const FLAG_INLINE_MODEL: u16 = 1 << 1;

/// Levels of the 16-bit norm quantizer.
const NORM_LEVELS: u32 = u16::MAX as u32;

/// Upper bound on header dimensions (defends allocations against
/// corrupt headers; 2³⁰ pixels ≈ 1 gigapixel per side is far beyond any
/// workload this serves).
const MAX_DIM: u32 = 1 << 30;

/// Parsed fixed-size header of a container.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerHeader {
    /// Format version the file was written with.
    pub version: u16,
    /// Feature flags (`FLAG_*`).
    pub flags: u16,
    /// Identity of the encoding model.
    pub model_id: u64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Tile edge length in pixels.
    pub tile_size: u16,
    /// Kept amplitudes per tile.
    pub latent_dim: u16,
    /// Quantizer bit depth.
    pub bits: u8,
    /// Largest tile norm (norm-quantization scale).
    pub max_norm: f32,
}

impl ContainerHeader {
    /// Tiles per row.
    pub fn tiles_x(&self) -> usize {
        (self.width as usize)
            .div_ceil(self.tile_size as usize)
            .max(1)
    }

    /// Tiles per column.
    pub fn tiles_y(&self) -> usize {
        (self.height as usize)
            .div_ceil(self.tile_size as usize)
            .max(1)
    }

    /// Total tile count.
    pub fn tile_count(&self) -> usize {
        self.tiles_x() * self.tiles_y()
    }

    /// Whether per-tile scales are stored.
    pub fn per_tile_scale(&self) -> bool {
        self.flags & FLAG_PER_TILE_SCALE != 0
    }

    /// Whether a model file is embedded.
    pub fn inline_model(&self) -> bool {
        self.flags & FLAG_INLINE_MODEL != 0
    }

    fn validate(&self) -> Result<()> {
        if self.version == 0 || self.version > CONTAINER_VERSION {
            return Err(CodecError::UnsupportedVersion {
                found: self.version,
                supported: CONTAINER_VERSION,
            });
        }
        let known = FLAG_PER_TILE_SCALE | FLAG_INLINE_MODEL;
        if self.flags & !known != 0 {
            return Err(CodecError::Invalid(format!(
                "unknown container flags: {:#06x}",
                self.flags & !known
            )));
        }
        if self.width == 0 || self.height == 0 || self.width > MAX_DIM || self.height > MAX_DIM {
            return Err(CodecError::Invalid(format!(
                "image dimensions {}x{} out of range",
                self.width, self.height
            )));
        }
        if self.tile_size == 0 {
            return Err(CodecError::Invalid("tile size must be positive".into()));
        }
        if self.latent_dim == 0 {
            return Err(CodecError::Invalid(
                "latent dimension must be positive".into(),
            ));
        }
        if self.bits == 0 || self.bits > MAX_BITS {
            return Err(CodecError::Invalid(format!(
                "bit depth must be in 1..={MAX_BITS}, got {}",
                self.bits
            )));
        }
        if !self.max_norm.is_finite() || self.max_norm < 0.0 {
            return Err(CodecError::Invalid(format!(
                "max norm {} is not a finite non-negative value",
                self.max_norm
            )));
        }
        Ok(())
    }
}

/// One occupied tile's compressed payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TilePayload {
    /// Tile norm quantized against the header's `max_norm`
    /// (`norm ≈ norm_q / 65535 · max_norm`).
    pub norm_q: u16,
    /// Per-tile amplitude scale (present iff [`FLAG_PER_TILE_SCALE`]).
    pub scale: Option<f32>,
    /// Quantizer level per latent amplitude (length = `latent_dim`).
    pub levels: Vec<u32>,
}

/// A fully parsed (or to-be-written) container.
#[derive(Debug, Clone, PartialEq)]
pub struct Container {
    /// Fixed-size header.
    pub header: ContainerHeader,
    /// Embedded model file bytes, when present.
    pub inline_model: Option<Vec<u8>>,
    /// Per-tile payloads, row-major; `None` marks an all-zero tile.
    pub tiles: Vec<Option<TilePayload>>,
}

/// Quantize a tile norm against the container's max norm.
pub fn quantize_norm(norm: f64, max_norm: f32) -> u16 {
    if max_norm <= 0.0 {
        return 0;
    }
    let unit = (norm / f64::from(max_norm)).clamp(0.0, 1.0);
    (unit * f64::from(NORM_LEVELS)).round() as u16
}

/// Reconstruct a tile norm.
pub fn dequantize_norm(norm_q: u16, max_norm: f32) -> f64 {
    f64::from(norm_q) / f64::from(NORM_LEVELS) * f64::from(max_norm)
}

impl Container {
    /// Serialise to complete file bytes (header + payload + CRC).
    ///
    /// # Errors
    /// [`CodecError::Invalid`] when the container is internally
    /// inconsistent (wrong tile count, levels out of range for the bit
    /// depth, scale presence disagreeing with the flags).
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        self.header.validate()?;
        if self.tiles.len() != self.header.tile_count() {
            return Err(CodecError::Invalid(format!(
                "container has {} tiles, header implies {}",
                self.tiles.len(),
                self.header.tile_count()
            )));
        }
        if self.header.inline_model() != self.inline_model.is_some() {
            return Err(CodecError::Invalid(
                "inline-model flag disagrees with inline model presence".into(),
            ));
        }
        let quantizer = crate::quantize::Quantizer::new(self.header.bits)?;
        let levels = quantizer.levels();
        let zero_level = quantizer.zero_level();

        // Payload bitstream.
        let mut bits = BitWriter::new();
        for tile in &self.tiles {
            match tile {
                None => bits.write_bit(false),
                Some(payload) => {
                    if payload.levels.len() != self.header.latent_dim as usize {
                        return Err(CodecError::Invalid(format!(
                            "tile has {} latents, header says {}",
                            payload.levels.len(),
                            self.header.latent_dim
                        )));
                    }
                    if payload.scale.is_some() != self.header.per_tile_scale() {
                        return Err(CodecError::Invalid(
                            "tile scale presence disagrees with container flags".into(),
                        ));
                    }
                    bits.write_bit(true);
                    bits.write_bits(u64::from(payload.norm_q), 16);
                    if let Some(scale) = payload.scale {
                        bits.write_bits(u64::from(scale.to_bits()), 32);
                    }
                    let mut symbols = Vec::with_capacity(payload.levels.len());
                    for &level in &payload.levels {
                        if level >= levels {
                            return Err(CodecError::Invalid(format!(
                                "level {level} out of range for {}-bit quantizer",
                                self.header.bits
                            )));
                        }
                        symbols.push(crate::quantize::zigzag(level, zero_level));
                    }
                    let k = best_rice_k(&symbols, u32::from(self.header.bits) + 1);
                    bits.write_bits(u64::from(k), RICE_K_BITS);
                    for &s in &symbols {
                        write_rice(&mut bits, s, k);
                    }
                }
            }
        }
        let payload = bits.finish();

        let mut w = ByteWriter::new();
        w.put_bytes(&CONTAINER_MAGIC);
        w.put_u16(self.header.version);
        w.put_u16(self.header.flags);
        w.put_u64(self.header.model_id);
        w.put_u32(self.header.width);
        w.put_u32(self.header.height);
        w.put_u16(self.header.tile_size);
        w.put_u16(self.header.latent_dim);
        w.put_u8(self.header.bits);
        w.put_bytes(&[0, 0, 0]); // reserved
        w.put_f32(self.header.max_norm);
        if let Some(model) = &self.inline_model {
            w.put_u32(model.len() as u32);
            w.put_bytes(model);
        }
        w.put_u32(payload.len() as u32);
        w.put_bytes(&payload);
        let mut bytes = w.finish();
        let crc = crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        Ok(bytes)
    }

    /// Parse container bytes (the inverse of [`Container::to_bytes`]).
    ///
    /// # Errors
    /// Typed [`CodecError`] for every malformation — truncation, bad
    /// magic, unknown versions/flags, checksum or field-range failures.
    /// Never panics on arbitrary input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 4 {
            return Err(CodecError::Truncated {
                context: "container magic",
            });
        }
        let found: [u8; 4] = bytes[..4].try_into().expect("length checked");
        if found != CONTAINER_MAGIC {
            return Err(CodecError::BadMagic {
                expected: CONTAINER_MAGIC,
                found,
            });
        }
        if bytes.len() < 40 {
            return Err(CodecError::Truncated {
                context: "container header",
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(CodecError::ChecksumMismatch { stored, computed });
        }

        let mut r = ByteReader::new(body);
        r.get_bytes(4, "container magic")?;
        let header = ContainerHeader {
            version: r.get_u16("container version")?,
            flags: r.get_u16("container flags")?,
            model_id: r.get_u64("model id")?,
            width: r.get_u32("image width")?,
            height: r.get_u32("image height")?,
            tile_size: r.get_u16("tile size")?,
            latent_dim: r.get_u16("latent dimension")?,
            bits: {
                let b = r.get_u8("bit depth")?;
                r.get_bytes(3, "reserved header bytes")?;
                b
            },
            max_norm: r.get_f32("max norm")?,
        };
        header.validate()?;

        let inline_model = if header.inline_model() {
            let len = r.get_u32("inline model length")? as usize;
            if len > r.remaining() {
                return Err(CodecError::Truncated {
                    context: "inline model bytes",
                });
            }
            Some(r.get_bytes(len, "inline model bytes")?.to_vec())
        } else {
            None
        };

        let payload_len = r.get_u32("payload length")? as usize;
        if payload_len != r.remaining() {
            return Err(CodecError::Invalid(format!(
                "payload length field says {payload_len} bytes, {} remain",
                r.remaining()
            )));
        }
        let payload = r.get_bytes(payload_len, "payload bytes")?;

        // Every tile costs at least its occupancy bit, so a grid larger
        // than the payload's bit count is corrupt — reject it before the
        // tile vector is allocated (a crafted width/height pair can
        // otherwise imply ~2^60 tiles and abort on allocation).
        if header.tile_count() > payload.len() * 8 {
            return Err(CodecError::Invalid(format!(
                "header implies {} tiles but the payload holds only {} bits",
                header.tile_count(),
                payload.len() * 8
            )));
        }
        let quantizer = crate::quantize::Quantizer::new(header.bits)?;
        let levels = quantizer.levels();
        let zero_level = quantizer.zero_level();
        let mut bits = BitReader::new(payload);
        let mut tiles = Vec::with_capacity(header.tile_count());
        for _ in 0..header.tile_count() {
            if !bits.read_bit()? {
                tiles.push(None);
                continue;
            }
            let norm_q = bits.read_bits(16)? as u16;
            let scale = if header.per_tile_scale() {
                let raw = bits.read_bits(32)? as u32;
                let s = f32::from_bits(raw);
                if !s.is_finite() || s <= 0.0 {
                    return Err(CodecError::Invalid(format!(
                        "tile scale {s} is not a positive finite value"
                    )));
                }
                Some(s)
            } else {
                None
            };
            let k = bits.read_bits(RICE_K_BITS)? as u32;
            if k > u32::from(header.bits) + 1 {
                return Err(CodecError::Invalid(format!(
                    "rice parameter {k} exceeds the maximum for {}-bit symbols",
                    header.bits
                )));
            }
            let mut tile_levels = Vec::with_capacity(header.latent_dim as usize);
            for _ in 0..header.latent_dim {
                let symbol = read_rice(&mut bits, k)?;
                if symbol >= levels {
                    return Err(CodecError::Invalid(format!(
                        "zigzag symbol {symbol} out of range for {}-bit quantizer",
                        header.bits
                    )));
                }
                tile_levels.push(crate::quantize::unzigzag(symbol, zero_level));
            }
            tiles.push(Some(TilePayload {
                norm_q,
                scale,
                levels: tile_levels,
            }));
        }

        Ok(Container {
            header,
            inline_model,
            tiles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_container(per_tile_scale: bool, inline_model: Option<Vec<u8>>) -> Container {
        let mut flags = 0u16;
        if per_tile_scale {
            flags |= FLAG_PER_TILE_SCALE;
        }
        if inline_model.is_some() {
            flags |= FLAG_INLINE_MODEL;
        }
        let header = ContainerHeader {
            version: CONTAINER_VERSION,
            flags,
            model_id: 0xDEAD_BEEF_CAFE_F00D,
            width: 10,
            height: 7,
            tile_size: 4,
            latent_dim: 5,
            bits: 8,
            max_norm: 3.5,
        };
        let tiles = (0..header.tile_count())
            .map(|i| {
                if i % 3 == 2 {
                    None
                } else {
                    Some(TilePayload {
                        norm_q: (i * 9991 % 65536) as u16,
                        scale: per_tile_scale.then_some(0.25 + i as f32 * 0.1),
                        levels: (0..5).map(|j| ((i * 37 + j * 11) % 256) as u32).collect(),
                    })
                }
            })
            .collect();
        Container {
            header,
            inline_model,
            tiles,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        for per_tile in [false, true] {
            for model in [None, Some(vec![1u8, 2, 3, 4, 5])] {
                let c = sample_container(per_tile, model);
                let bytes = c.to_bytes().unwrap();
                let back = Container::from_bytes(&bytes).unwrap();
                assert_eq!(back, c);
                // Deterministic re-serialisation.
                assert_eq!(back.to_bytes().unwrap(), bytes);
            }
        }
    }

    #[test]
    fn header_geometry_matches_tiling_rules() {
        let c = sample_container(false, None);
        // 10×7 at tile 4 → 3×2 tiles, like qn_image::tiles::tile.
        assert_eq!(c.header.tiles_x(), 3);
        assert_eq!(c.header.tiles_y(), 2);
        assert_eq!(c.header.tile_count(), 6);
    }

    #[test]
    fn truncation_never_panics() {
        let bytes = sample_container(true, Some(vec![9u8; 64]))
            .to_bytes()
            .unwrap();
        for cut in 0..bytes.len() {
            let err = Container::from_bytes(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. } | CodecError::ChecksumMismatch { .. }
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_are_caught() {
        let bytes = sample_container(false, None).to_bytes().unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                Container::from_bytes(&bad).is_err(),
                "flip at {pos} went unnoticed"
            );
        }
    }

    #[test]
    fn unknown_flags_and_versions_are_rejected() {
        let mut c = sample_container(false, None);
        c.header.flags = 0x8000;
        assert!(matches!(c.to_bytes(), Err(CodecError::Invalid(_))));
        c.header.flags = 0;
        c.header.version = CONTAINER_VERSION + 1;
        assert!(matches!(
            c.to_bytes(),
            Err(CodecError::UnsupportedVersion { .. })
        ));
    }

    #[test]
    fn inconsistent_containers_cannot_serialise() {
        // Wrong tile count.
        let mut c = sample_container(false, None);
        c.tiles.pop();
        assert!(c.to_bytes().is_err());
        // Level out of range for the bit depth.
        let mut c = sample_container(false, None);
        if let Some(Some(t)) = c.tiles.first_mut().map(|t| t.as_mut()) {
            t.levels[0] = 256;
        }
        assert!(c.to_bytes().is_err());
        // Scale present without the flag.
        let mut c = sample_container(false, None);
        if let Some(Some(t)) = c.tiles.first_mut().map(|t| t.as_mut()) {
            t.scale = Some(1.0);
        }
        assert!(c.to_bytes().is_err());
    }

    #[test]
    fn gigapixel_header_bomb_is_rejected_not_allocated() {
        // A crafted header claiming a ~2^60-tile grid must produce a
        // typed error before the tile vector is allocated.
        let mut bytes = sample_container(false, None).to_bytes().unwrap();
        bytes[16..20].copy_from_slice(&(1u32 << 30).to_le_bytes()); // width
        bytes[20..24].copy_from_slice(&(1u32 << 30).to_le_bytes()); // height
        bytes[24..26].copy_from_slice(&1u16.to_le_bytes()); // tile_size
        let body_len = bytes.len() - 4;
        let crc = crc32(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&crc);
        let err = Container::from_bytes(&bytes).expect_err("bomb must fail");
        assert!(
            matches!(err, CodecError::Invalid(ref m) if m.contains("tiles")),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn norm_quantization_is_tight() {
        let max_norm = 4.0f32;
        for i in 0..=1000 {
            let norm = f64::from(max_norm) * f64::from(i) / 1000.0;
            let back = dequantize_norm(quantize_norm(norm, max_norm), max_norm);
            assert!(
                (back - norm).abs() <= f64::from(max_norm) / f64::from(u16::MAX) + 1e-12,
                "norm {norm} → {back}"
            );
        }
        assert_eq!(quantize_norm(99.0, 4.0), u16::MAX, "clamped above");
        assert_eq!(quantize_norm(1.0, 0.0), 0, "degenerate scale");
    }
}
