//! Entropy-coder selection and the adaptive binary range coder behind
//! bitstream format v2.
//!
//! Format v1 spends one Rice parameter per tile: a single `k` must
//! serve every latent position, even though PCA-ordered latents have
//! strongly position-dependent statistics (position 0 carries most of
//! the energy, the tail hugs zero). Version 2 adds two coders that
//! exploit that structure:
//!
//! - **`rice-pos`** — one Rice parameter *per latent position*,
//!   estimated from the whole tile panel and stored once per container
//!   as delta-coded side information, plus predicted-norm deltas
//!   between raster-neighbouring tiles for the norm stream.
//! - **`range`** — an adaptive binary range coder (LZMA-style, 11-bit
//!   probabilities) over Exp-Golomb binarized symbols with per-position
//!   contexts: no side table at all, the contexts learn the statistics
//!   as the stream decodes.
//!
//! Both are lossless re-encodings of the same quantized levels, so the
//! decoded pixels are bit-identical across coders — only the rate
//! moves. The container layer (`crate::container`) owns the byte
//! layouts; this module owns the coder primitives.

use crate::error::{CodecError, Result};
use std::fmt;
use std::str::FromStr;

/// Which entropy coder a container's latent payload uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EntropyCoder {
    /// Format v1: one Rice parameter per tile (the only coder v1
    /// containers can carry).
    #[default]
    Rice,
    /// Format v2: per-latent-position Rice parameters + norm deltas.
    RicePos,
    /// Format v2: adaptive binary range coder with per-position
    /// contexts + norm deltas.
    Range,
}

impl EntropyCoder {
    /// Every selectable coder, in CLI/documentation order.
    pub const ALL: [EntropyCoder; 3] = [
        EntropyCoder::Rice,
        EntropyCoder::RicePos,
        EntropyCoder::Range,
    ];

    /// The container format version this coder serialises as.
    pub fn container_version(self) -> u16 {
        match self {
            EntropyCoder::Rice => 1,
            EntropyCoder::RicePos | EntropyCoder::Range => 2,
        }
    }

    /// The container feature-flag bits this coder sets (the inverse of
    /// `ContainerHeader::entropy`, kept single-sourced here).
    pub fn container_flags(self) -> u16 {
        match self {
            EntropyCoder::Rice => 0,
            EntropyCoder::RicePos => crate::container::FLAG_ENTROPY_RICE_POS,
            EntropyCoder::Range => crate::container::FLAG_ENTROPY_RANGE,
        }
    }

    /// Stable one-byte wire id (the serve protocol's encode-request
    /// field; 0 is what pre-v2 clients send).
    pub fn wire_id(self) -> u8 {
        match self {
            EntropyCoder::Rice => 0,
            EntropyCoder::RicePos => 1,
            EntropyCoder::Range => 2,
        }
    }

    /// Decode a wire id.
    pub fn from_wire_id(id: u8) -> Option<EntropyCoder> {
        match id {
            0 => Some(EntropyCoder::Rice),
            1 => Some(EntropyCoder::RicePos),
            2 => Some(EntropyCoder::Range),
            _ => None,
        }
    }
}

impl fmt::Display for EntropyCoder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EntropyCoder::Rice => "rice",
            EntropyCoder::RicePos => "rice-pos",
            EntropyCoder::Range => "range",
        })
    }
}

impl FromStr for EntropyCoder {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "rice" => Ok(EntropyCoder::Rice),
            "rice-pos" => Ok(EntropyCoder::RicePos),
            "range" => Ok(EntropyCoder::Range),
            other => Err(format!(
                "unknown entropy coder {other:?} (expected rice, rice-pos or range)"
            )),
        }
    }
}

// ---------------------------------------------------------------------
// Binary range coder (LZMA-style)
// ---------------------------------------------------------------------

/// Probability resolution: probabilities live in `0..2^11`.
const PROB_BITS: u32 = 11;
/// The fixed-point value representing probability 1.
const PROB_ONE: u16 = 1 << PROB_BITS;
/// Adaptation speed: larger shifts adapt slower.
const MOVE_BITS: u32 = 5;
/// Renormalisation threshold.
const TOP: u32 = 1 << 24;

/// A fresh adaptive context (probability ½).
pub const PROB_INIT: u16 = PROB_ONE / 2;

/// Encoder half of the binary range coder. Probabilities are plain
/// `u16` slots the caller owns (context modelling stays at the call
/// site); `encode_bit` updates them adaptively.
#[derive(Debug)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// An empty encoder.
    pub fn new() -> Self {
        RangeEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low & 0xFFFF_FFFF) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }

    fn normalize(&mut self) {
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode one bit against an adaptive probability slot.
    pub fn encode_bit(&mut self, prob: &mut u16, bit: bool) {
        let bound = (self.range >> PROB_BITS) * u32::from(*prob);
        if bit {
            self.low += u64::from(bound);
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
        } else {
            self.range = bound;
            *prob += (PROB_ONE - *prob) >> MOVE_BITS;
        }
        self.normalize();
    }

    /// Encode the `n` low bits of `value` (MSB first) as equiprobable
    /// "bypass" bits — no context, no adaptation.
    pub fn encode_direct(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 63, "direct runs are below 64 bits");
        for i in (0..n).rev() {
            self.range >>= 1;
            if (value >> i) & 1 == 1 {
                self.low += u64::from(self.range);
            }
            self.normalize();
        }
    }

    /// Flush and return the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Decoder half of the binary range coder, reading from a byte slice.
/// Running out of bytes mid-stream is a typed truncation error —
/// well-formed streams never over-read because the encoder's 5-byte
/// flush covers every renormalisation the decoder replays.
#[derive(Debug)]
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Start decoding `bytes`.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than the 5 initialisation
    /// bytes are present.
    pub fn new(bytes: &'a [u8]) -> Result<Self> {
        let mut d = RangeDecoder {
            code: 0,
            range: u32::MAX,
            bytes,
            pos: 0,
        };
        // The first output byte is the encoder's zero-initialised cache.
        d.next_byte()?;
        for _ in 0..4 {
            let b = d.next_byte()?;
            d.code = (d.code << 8) | u32::from(b);
        }
        Ok(d)
    }

    fn next_byte(&mut self) -> Result<u8> {
        let b = self
            .bytes
            .get(self.pos)
            .copied()
            .ok_or(CodecError::Truncated {
                context: "range-coded payload",
            })?;
        self.pos += 1;
        Ok(b)
    }

    fn normalize(&mut self) -> Result<()> {
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte()?);
        }
        Ok(())
    }

    /// Decode one bit against an adaptive probability slot.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn decode_bit(&mut self, prob: &mut u16) -> Result<bool> {
        let bound = (self.range >> PROB_BITS) * u32::from(*prob);
        let bit = if self.code < bound {
            self.range = bound;
            *prob += (PROB_ONE - *prob) >> MOVE_BITS;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
            true
        };
        self.normalize()?;
        Ok(bit)
    }

    /// Decode `n` bypass bits (MSB first).
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn decode_direct(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 63, "direct runs are below 64 bits");
        let mut v = 0u64;
        for _ in 0..n {
            self.range >>= 1;
            let bit = if self.code >= self.range {
                self.code -= self.range;
                1u64
            } else {
                0u64
            };
            v = (v << 1) | bit;
            self.normalize()?;
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Exp-Golomb binarization over the range coder
// ---------------------------------------------------------------------

/// Encode a non-negative value as Exp-Golomb order 0: the bucket
/// `b = ⌊log₂(value+1)⌋` as a context-coded unary prefix (contexts
/// shared beyond `ctx.len()-1` bins), then `b` bypass offset bits.
pub fn encode_eg(enc: &mut RangeEncoder, ctx: &mut [u16], value: u32) {
    debug_assert!(value < u32::MAX, "value + 1 must not overflow");
    debug_assert!(!ctx.is_empty(), "need at least one context slot");
    let bucket = 31 - (value + 1).leading_zeros();
    for i in 0..bucket {
        let slot = (i as usize).min(ctx.len() - 1);
        enc.encode_bit(&mut ctx[slot], true);
    }
    let slot = (bucket as usize).min(ctx.len() - 1);
    enc.encode_bit(&mut ctx[slot], false);
    if bucket > 0 {
        enc.encode_direct(u64::from(value + 1) & ((1u64 << bucket) - 1), bucket);
    }
}

/// Decode an Exp-Golomb value written by [`encode_eg`], rejecting
/// buckets above `max_bucket` (corrupt stream) instead of looping.
///
/// # Errors
/// [`CodecError::Truncated`] at end of input; [`CodecError::Invalid`]
/// when the unary prefix exceeds `max_bucket`.
pub fn decode_eg(dec: &mut RangeDecoder<'_>, ctx: &mut [u16], max_bucket: u32) -> Result<u32> {
    debug_assert!(!ctx.is_empty(), "need at least one context slot");
    let mut bucket = 0u32;
    loop {
        let slot = (bucket as usize).min(ctx.len() - 1);
        if !dec.decode_bit(&mut ctx[slot])? {
            break;
        }
        bucket += 1;
        if bucket > max_bucket {
            return Err(CodecError::Invalid(format!(
                "exp-golomb prefix exceeds the maximum bucket {max_bucket}"
            )));
        }
    }
    let offset = if bucket > 0 {
        dec.decode_direct(bucket)?
    } else {
        0
    };
    Ok((((1u64 << bucket) | offset) - 1) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coder_names_roundtrip() {
        for coder in EntropyCoder::ALL {
            assert_eq!(coder.to_string().parse::<EntropyCoder>(), Ok(coder));
            assert_eq!(EntropyCoder::from_wire_id(coder.wire_id()), Some(coder));
        }
        assert!("huffman".parse::<EntropyCoder>().is_err());
        assert_eq!(EntropyCoder::from_wire_id(77), None);
        assert_eq!(EntropyCoder::default(), EntropyCoder::Rice);
        assert_eq!(EntropyCoder::Rice.container_version(), 1);
        assert_eq!(EntropyCoder::RicePos.container_version(), 2);
        assert_eq!(EntropyCoder::Range.container_version(), 2);
    }

    #[test]
    fn adaptive_bits_roundtrip_and_compress_biased_streams() {
        // A heavily biased bit stream must roundtrip exactly and come
        // out well below 1 bit/symbol once the context adapts.
        let bits: Vec<bool> = (0..4000).map(|i| i % 17 == 0).collect();
        let mut enc = RangeEncoder::new();
        let mut prob = PROB_INIT;
        for &b in &bits {
            enc.encode_bit(&mut prob, b);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() < bits.len() / 16,
            "biased stream coded at {} bytes for {} bits",
            bytes.len(),
            bits.len()
        );
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut prob = PROB_INIT;
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(dec.decode_bit(&mut prob).unwrap(), b, "bit {i}");
        }
    }

    #[test]
    fn direct_bits_roundtrip_interleaved_with_adaptive_bits() {
        let mut enc = RangeEncoder::new();
        let mut prob = PROB_INIT;
        let values: Vec<(u64, u32)> = (0..200)
            .map(|i: u64| (i.wrapping_mul(0x9E37_79B9) & 0xFFFF, 16))
            .collect();
        for (i, &(v, n)) in values.iter().enumerate() {
            enc.encode_bit(&mut prob, i % 3 == 0);
            enc.encode_direct(v, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut prob = PROB_INIT;
        for (i, &(v, n)) in values.iter().enumerate() {
            assert_eq!(dec.decode_bit(&mut prob).unwrap(), i % 3 == 0);
            assert_eq!(dec.decode_direct(n).unwrap(), v, "value {i}");
        }
    }

    #[test]
    fn exp_golomb_roundtrips_every_small_value() {
        let mut enc = RangeEncoder::new();
        let mut ctx = [PROB_INIT; 8];
        for v in 0..600u32 {
            encode_eg(&mut enc, &mut ctx, v);
        }
        // Include the largest symbol the container layer can emit.
        encode_eg(&mut enc, &mut ctx, 1 << 17);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut ctx = [PROB_INIT; 8];
        for v in 0..600u32 {
            assert_eq!(decode_eg(&mut dec, &mut ctx, 17).unwrap(), v);
        }
        assert_eq!(decode_eg(&mut dec, &mut ctx, 17).unwrap(), 1 << 17);
    }

    #[test]
    fn truncated_range_streams_error_typed() {
        let mut enc = RangeEncoder::new();
        let mut ctx = [PROB_INIT; 4];
        for v in 0..64u32 {
            encode_eg(&mut enc, &mut ctx, v * 31);
        }
        let bytes = enc.finish();
        for cut in 0..bytes.len().min(5) {
            assert!(matches!(
                RangeDecoder::new(&bytes[..cut]),
                Err(CodecError::Truncated { .. })
            ));
        }
        // Cut mid-stream: continued decoding must hit a typed
        // truncation once the bytes run out, never run off the slice.
        let mut dec = RangeDecoder::new(&bytes[..bytes.len() / 2]).unwrap();
        let mut ctx = [PROB_INIT; 4];
        let mut saw_error = false;
        // A fully adapted context spends ~0.02 bits per bin, so a few
        // hundred thousand decodes certainly exhaust the leftover bytes.
        for _ in 0..500_000 {
            match decode_eg(&mut dec, &mut ctx, 30) {
                Ok(_) => {}
                Err(CodecError::Truncated { .. }) | Err(CodecError::Invalid(_)) => {
                    saw_error = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(saw_error, "truncation must surface once the bytes run out");
    }

    #[test]
    fn corrupt_prefix_is_bounded_by_max_bucket() {
        // An all-ones stream drives the unary prefix upward forever;
        // the bucket cap must turn that into a typed error.
        let bytes = vec![0xFFu8; 64];
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut ctx = [PROB_INIT; 4];
        let mut hit = false;
        for _ in 0..200 {
            match decode_eg(&mut dec, &mut ctx, 17) {
                Err(CodecError::Invalid(_)) | Err(CodecError::Truncated { .. }) => {
                    hit = true;
                    break;
                }
                Ok(_) => {}
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(hit, "corrupt stream must hit a typed error");
    }
}
