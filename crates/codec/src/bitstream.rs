//! Bit-level IO, Rice entropy coding, and the checksums/hashes the file
//! formats use.
//!
//! The latent payload of a `.qnc` container is a single bitstream:
//! per-tile occupancy flags, quantized norms, and Rice-coded latent
//! symbols, all packed LSB-first. Rice coding fits here because the
//! zigzag-mapped quantizer output is sharply peaked at zero (latent
//! amplitudes of unit-norm states cluster near 0), and the per-tile
//! parameter `k` adapts to each tile's energy at a cost of
//! [`RICE_K_BITS`] bits — the same adaptivity trick QPIXL uses with its
//! compression-ratio gate threshold, applied to a classical bitstream.

use crate::error::{CodecError, Result};

/// Bits used to store a tile's Rice parameter.
pub const RICE_K_BITS: u32 = 5;

/// Hard cap on a single Rice unary run. The largest legal zigzag symbol
/// is `2^17` (16-bit quantizer), so any run beyond this signals corrupt
/// input rather than data.
const MAX_UNARY_RUN: u32 = 1 << 18;

// ---------------------------------------------------------------------
// Bit-level writer / reader
// ---------------------------------------------------------------------

/// Append-only bit sink, LSB-first within each byte.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0 = byte boundary).
    used: u32,
}

impl BitWriter {
    /// Empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << self.used;
        }
        self.used = (self.used + 1) % 8;
    }

    /// Append the `n` low bits of `value`, LSB first (`n ≤ 64`).
    ///
    /// Byte-at-a-time: tops up the current partial byte, then emits
    /// whole bytes — the resulting byte layout is identical to pushing
    /// the same bits one at a time.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64, "write_bits supports at most 64 bits");
        if n == 0 {
            return;
        }
        let mut value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let mut n = n;
        if self.used != 0 {
            let free = 8 - self.used;
            let take = free.min(n);
            let last = self.bytes.last_mut().expect("partial byte exists");
            *last |= ((value & ((1u64 << take) - 1)) as u8) << self.used;
            self.used = (self.used + take) % 8;
            value >>= take;
            n -= take;
        }
        while n >= 8 {
            self.bytes.push((value & 0xFF) as u8);
            value >>= 8;
            n -= 8;
        }
        if n > 0 {
            self.bytes.push((value & ((1u64 << n) - 1)) as u8);
            self.used = n;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        match self.used {
            0 => self.bytes.len() * 8,
            used => (self.bytes.len() - 1) * 8 + used as usize,
        }
    }

    /// Finish, returning the padded byte buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Bit source over a byte slice, LSB-first within each byte.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Read one bit.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn read_bit(&mut self) -> Result<bool> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(CodecError::Truncated {
                context: "bitstream payload",
            });
        }
        let bit = (self.bytes[byte] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Read `n ≤ 64` bits, LSB first.
    ///
    /// Byte-at-a-time: drains the current partial byte, then whole
    /// bytes — same cursor semantics as reading bit by bit.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 64, "read_bits supports at most 64 bits");
        if n == 0 {
            return Ok(0);
        }
        let end = self.pos + n as usize;
        if end > self.bytes.len() * 8 {
            // Consistent with bit-by-bit reading: the cursor advances to
            // the end of input before the truncation surfaces; nothing
            // downstream reads on after an error.
            self.pos = self.bytes.len() * 8;
            return Err(CodecError::Truncated {
                context: "bitstream payload",
            });
        }
        if let Some((w, valid)) = self.peek64() {
            if n <= valid {
                self.pos = end;
                return Ok(if n == 64 { w } else { w & ((1u64 << n) - 1) });
            }
        }
        let mut v = 0u64;
        let mut got = 0u32;
        let mut byte = self.pos / 8;
        let off = (self.pos % 8) as u32;
        if off != 0 {
            let take = (8 - off).min(n);
            v |= (u64::from(self.bytes[byte]) >> off) & ((1u64 << take) - 1);
            got = take;
            byte += 1;
        }
        while n - got >= 8 {
            v |= u64::from(self.bytes[byte]) << got;
            byte += 1;
            got += 8;
        }
        if got < n {
            let take = n - got;
            v |= (u64::from(self.bytes[byte]) & ((1u64 << take) - 1)) << got;
        }
        self.pos = end;
        Ok(v)
    }

    /// Count consecutive one bits up to and including the terminating
    /// zero (which is consumed), scanning a byte at a time.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input;
    /// [`CodecError::Invalid`] when the run exceeds `max_run` ones.
    fn read_unary(&mut self, max_run: u32) -> Result<u32> {
        let mut q = 0u32;
        loop {
            let byte = self.pos / 8;
            if byte >= self.bytes.len() {
                return Err(CodecError::Truncated {
                    context: "bitstream payload",
                });
            }
            let off = (self.pos % 8) as u32;
            let avail = 8 - off;
            let remaining = u32::from(self.bytes[byte]) >> off;
            let inverted = !remaining & ((1u32 << avail) - 1);
            if inverted != 0 {
                let ones = inverted.trailing_zeros();
                q += ones;
                if q > max_run {
                    return Err(CodecError::Invalid(
                        "rice unary run exceeds maximum symbol".to_string(),
                    ));
                }
                self.pos += (ones + 1) as usize;
                return Ok(q);
            }
            q += avail;
            self.pos += avail as usize;
            if q > max_run {
                return Err(CodecError::Invalid(
                    "rice unary run exceeds maximum symbol".to_string(),
                ));
            }
        }
    }

    /// Peek a 64-bit little-endian window at the cursor: the next
    /// `64 − bit_offset ≥ 56` bits of the stream, LSB-first, without
    /// advancing. `None` when fewer than eight whole bytes remain at
    /// the cursor's byte — callers fall back to the exact
    /// byte-at-a-time readers near the end of input.
    #[inline]
    fn peek64(&self) -> Option<(u64, u32)> {
        let byte = self.pos / 8;
        let off = (self.pos % 8) as u32;
        let window = self.bytes.get(byte..byte + 8)?;
        let w = u64::from_le_bytes(window.try_into().expect("8 bytes")) >> off;
        Some((w, 64 - off))
    }
}

// ---------------------------------------------------------------------
// Rice coding
// ---------------------------------------------------------------------

/// Bits Rice(k) spends on `value`.
#[inline]
pub fn rice_len(value: u32, k: u32) -> usize {
    (value >> k) as usize + 1 + k as usize
}

/// The `k` minimising the total Rice length of `values`, searched over
/// `0..=max_k`.
pub fn best_rice_k(values: &[u32], max_k: u32) -> u32 {
    let mut best = (usize::MAX, 0u32);
    for k in 0..=max_k {
        let total: usize = values.iter().map(|&v| rice_len(v, k)).sum();
        if total < best.0 {
            best = (total, k);
        }
    }
    best.1
}

/// Write `value` with Rice parameter `k`: unary quotient (q ones, one
/// zero), then the k low remainder bits.
pub fn write_rice(w: &mut BitWriter, value: u32, k: u32) {
    let mut q = value >> k;
    while q >= 32 {
        w.write_bits(u64::from(u32::MAX), 32);
        q -= 32;
    }
    let rem = u64::from(value) & ((1u64 << k) - 1);
    if q + 1 + k <= 64 {
        // Whole symbol in one word: q ones, the terminating zero, then
        // the k remainder bits — the same stream two separate writes
        // produce.
        w.write_bits((rem << (q + 1)) | ((1u64 << q) - 1), q + 1 + k);
    } else {
        w.write_bits((1u64 << q) - 1, q + 1);
        w.write_bits(rem, k);
    }
}

/// Read one Rice(k) value.
///
/// # Errors
/// [`CodecError::Truncated`] at end of input, [`CodecError::Invalid`]
/// when the unary run exceeds any symbol a supported quantizer emits
/// (corrupt stream).
pub fn read_rice(r: &mut BitReader<'_>, k: u32) -> Result<u32> {
    // Fast path: when the whole symbol — unary run, terminator and k
    // remainder bits — fits inside one peeked 64-bit window, decode it
    // with two shifts instead of per-byte cursor arithmetic. Bits
    // beyond the window's valid count are zeros shifted in, so a run
    // reaching them fails the bounds check and falls through to the
    // exact byte-at-a-time path (identical bits, identical cursor).
    if let Some((w, valid)) = r.peek64() {
        let q = (!w).trailing_zeros();
        if q + 1 + k <= valid {
            r.pos += (q + 1 + k) as usize;
            let rem = if k == 0 {
                0
            } else {
                (w >> (q + 1)) & ((1u64 << k) - 1)
            };
            let value = (u64::from(q) << k) | rem;
            return u32::try_from(value).map_err(|_| {
                CodecError::Invalid("rice symbol exceeds the 32-bit symbol range".to_string())
            });
        }
    }
    let q = r.read_unary(MAX_UNARY_RUN)?;
    let rem = r.read_bits(k)? as u32;
    // Assemble in u64: with k near its maximum a corrupt unary run can
    // push q << k past 32 bits, and a wrapping result would alias a huge
    // symbol onto a small "valid" one instead of erroring.
    let value = (u64::from(q) << k) | u64::from(rem);
    u32::try_from(value)
        .map_err(|_| CodecError::Invalid("rice symbol exceeds the 32-bit symbol range".to_string()))
}

/// Map a signed value onto the non-negative integers for Rice/EG
/// coding: 0, −1, 1, −2, 2, … → 0, 1, 2, 3, 4, … (the delta streams of
/// bitstream v2 use this for norm and Rice-parameter predictions).
#[inline]
pub fn zigzag_signed(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_signed`].
#[inline]
pub fn unzigzag_signed(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------
// Checksums / ids
// ---------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the integrity check both file formats
/// append.
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_of_parts(&[bytes])
}

/// CRC-32 (IEEE) over the concatenation of `parts`, without
/// materialising it — equal to `crc32` of the joined bytes. Lets
/// framing layers checksum header + payload with no copy.
pub fn crc32_of_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
    }
    !crc
}

/// FNV-1a 64-bit hash — the stable model identifier stored in `.qnc`
/// containers to detect model/container mismatches.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Byte-level little-endian helpers (shared by model and container)
// ---------------------------------------------------------------------

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    bytes: Vec<u8>,
}

impl ByteWriter {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.bytes.extend_from_slice(b);
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian f32 (bit pattern).
    pub fn put_f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian f64 (bit pattern; bit-exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Borrow the buffer (for checksumming before finishing).
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Take the buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

/// Cursor over a byte slice with typed, truncation-checked reads.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Raw bytes.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] when fewer than `n` bytes remain.
    pub fn get_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        self.take(n, context)
    }

    /// One byte.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u8(&mut self, context: &'static str) -> Result<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Little-endian u16.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u16(&mut self, context: &'static str) -> Result<u16> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Little-endian u32.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u32(&mut self, context: &'static str) -> Result<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian u64.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_u64(&mut self, context: &'static str) -> Result<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Little-endian f32.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_f32(&mut self, context: &'static str) -> Result<f32> {
        let b = self.take(4, context)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Little-endian f64 (bit-exact).
    ///
    /// # Errors
    /// [`CodecError::Truncated`] at end of input.
    pub fn get_f64(&mut self, context: &'static str) -> Result<f64> {
        let b = self.take(8, context)?;
        Ok(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_of_parts_equals_crc32_of_concatenation() {
        let data: Vec<u8> = (0..200u16).map(|i| (i * 7 % 251) as u8).collect();
        for split in [0, 1, 16, 100, 199, 200] {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32_of_parts(&[a, b]), crc32(&data), "split {split}");
        }
        assert_eq!(crc32_of_parts(&[]), crc32(&[]));
        assert_eq!(crc32_of_parts(&[&data, &[], &data]), {
            let mut doubled = data.clone();
            doubled.extend_from_slice(&data);
            crc32(&doubled)
        });
    }

    #[test]
    fn bits_roundtrip_lsb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bit(true);
        w.write_bits(0x3FF, 10);
        assert_eq!(w.bit_len(), 15);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(10).unwrap(), 0x3FF);
    }

    #[test]
    fn reader_reports_truncation() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(matches!(r.read_bit(), Err(CodecError::Truncated { .. })));
        // Word-level reads spanning the end truncate too.
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(3).unwrap(), 0b111);
        assert!(matches!(r.read_bits(6), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn word_level_writer_matches_a_bit_by_bit_reference() {
        // The word-level write_bits/write_rice fast paths must emit the
        // exact byte layout of pushing every bit individually — the
        // invariant all existing .qnc payloads (and the golden vectors)
        // depend on.
        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new();
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let value = next();
            let n = (next() % 65) as u32;
            fast.write_bits(value, n);
            for i in 0..n {
                slow.write_bit((value >> i) & 1 == 1);
            }
            let rice_value = (next() % 3000) as u32;
            let k = (next() % 12) as u32;
            write_rice(&mut fast, rice_value, k);
            let q = rice_value >> k;
            for _ in 0..q {
                slow.write_bit(true);
            }
            slow.write_bit(false);
            for i in 0..k {
                slow.write_bit((rice_value >> i) & 1 == 1);
            }
            assert_eq!(fast.bit_len(), slow.bit_len());
        }
        let fast = fast.finish();
        let slow = slow.finish();
        assert_eq!(fast, slow, "byte layout must be identical");
        // And the word-level reader round-trips the same stream
        // bit-for-bit against single-bit reads.
        let mut word = BitReader::new(&fast);
        let mut bit = BitReader::new(&slow);
        let mut state2 = 0x0FED_CBA9_8765_4321u64;
        let mut next2 = move || {
            state2 ^= state2 << 13;
            state2 ^= state2 >> 7;
            state2 ^= state2 << 17;
            state2
        };
        loop {
            let n = (next2() % 23) as u32;
            let via_word = word.read_bits(n);
            let via_bits: Result<u64> =
                (0..n).try_fold(0u64, |acc, i| Ok(acc | (u64::from(bit.read_bit()?) << i)));
            match (via_word, via_bits) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(_), Err(_)) => break,
                (a, b) => panic!("reader divergence: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn rice_roundtrips_every_small_value() {
        for k in 0..8u32 {
            let mut w = BitWriter::new();
            for v in 0..200u32 {
                write_rice(&mut w, v, k);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for v in 0..200u32 {
                assert_eq!(read_rice(&mut r, k).unwrap(), v, "k={k}");
            }
        }
    }

    #[test]
    fn best_k_minimises_length() {
        // Small symbols → small k; large symbols → larger k.
        assert_eq!(best_rice_k(&[0, 1, 0, 2, 1], 15), 0);
        let big: Vec<u32> = (0..32).map(|i| 1000 + i).collect();
        let k = best_rice_k(&big, 15);
        assert!(k >= 8, "large symbols want a large k, got {k}");
        // The chosen k really is no worse than its neighbours.
        let len = |kk: u32| -> usize { big.iter().map(|&v| rice_len(v, kk)).sum() };
        assert!(len(k) <= len(k.saturating_sub(1)));
        assert!(len(k) <= len(k + 1));
    }

    #[test]
    fn rice_symbols_past_u32_error_instead_of_wrapping() {
        // k = 17 with a long unary run pushes q << k past 32 bits; the
        // decoder must error, not alias the symbol onto a small value.
        let mut w = BitWriter::new();
        let q = 1u32 << 15;
        for _ in 0..q {
            w.write_bit(true);
        }
        w.write_bit(false);
        w.write_bits(0, 17);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(read_rice(&mut r, 17), Err(CodecError::Invalid(_))));
    }

    #[test]
    fn corrupt_unary_run_is_a_typed_error() {
        // All-ones payload: unary run never terminates.
        let bytes = vec![0xFFu8; 1 << 16];
        let mut r = BitReader::new(&bytes);
        match read_rice(&mut r, 0) {
            Err(CodecError::Invalid(_)) | Err(CodecError::Truncated { .. }) => {}
            other => panic!("expected typed error, got {other:?}"),
        }
    }

    #[test]
    fn signed_zigzag_is_a_bijection() {
        for v in [-3i64, -2, -1, 0, 1, 2, 3, -65535, 65535, i32::MAX as i64] {
            assert_eq!(unzigzag_signed(zigzag_signed(v)), v);
        }
        assert_eq!(zigzag_signed(0), 0);
        assert_eq!(zigzag_signed(-1), 1);
        assert_eq!(zigzag_signed(1), 2);
        assert_eq!(zigzag_signed(-2), 3);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // FNV-1a 64 official vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn byte_reader_roundtrips_and_truncates() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(513);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f32(1.5);
        w.put_f64(-0.1);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u16("b").unwrap(), 513);
        assert_eq!(r.get_u32("c").unwrap(), 70_000);
        assert_eq!(r.get_u64("d").unwrap(), 1 << 40);
        assert_eq!(r.get_f32("e").unwrap(), 1.5);
        assert_eq!(r.get_f64("f").unwrap(), -0.1);
        assert!(matches!(
            r.get_u8("g"),
            Err(CodecError::Truncated { context: "g" })
        ));
    }
}
