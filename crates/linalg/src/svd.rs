//! Singular value decomposition by one-sided Jacobi rotations.
//!
//! One-sided Jacobi orthogonalises the columns of `A` by repeatedly applying
//! plane rotations on the right: after convergence `A V = U Σ`, so the
//! column norms are the singular values and the normalised columns form `U`.
//! It is slower asymptotically than Golub–Kahan but unconditionally robust
//! and very accurate for the small dictionaries (≤ a few hundred columns)
//! used by the K-SVD baseline — exactly the regime this workspace needs.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Maximum number of full sweeps before declaring failure.
const MAX_SWEEPS: usize = 60;

/// Result of `A = U Σ Vᵀ` with singular values sorted in descending order.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m × k` where `k = min(m, n)`.
    pub u: Matrix,
    /// Singular values (length `k`, descending, non-negative).
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `n × k` (columns are the right vectors).
    pub v: Matrix,
}

impl Svd {
    /// Reconstruct `U Σ Vᵀ` (useful in tests and low-rank truncations).
    pub fn reconstruct(&self) -> Matrix {
        let k = self.singular_values.len();
        let mut us = self.u.clone();
        for j in 0..k {
            for i in 0..us.rows() {
                let v = us.get(i, j) * self.singular_values[j];
                us.set(i, j, v);
            }
        }
        us.matmul(&self.v.transpose())
            .expect("shape by construction")
    }

    /// Best rank-`r` approximation `U_r Σ_r V_rᵀ` (Eckart–Young).
    pub fn truncate(&self, r: usize) -> Matrix {
        let r = r.min(self.singular_values.len());
        let m = self.u.rows();
        let n = self.v.rows();
        let mut out = Matrix::zeros(m, n);
        for t in 0..r {
            let s = self.singular_values[t];
            for i in 0..m {
                let uis = self.u.get(i, t) * s;
                if uis == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let val = out.get(i, j) + uis * self.v.get(j, t);
                    out.set(i, j, val);
                }
            }
        }
        out
    }

    /// Numerical rank: number of singular values above
    /// `tol * max(singular value)`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        if max == 0.0 {
            return 0;
        }
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max)
            .count()
    }
}

/// Compute the thin SVD of `a` (any shape, including tall/wide).
///
/// # Errors
/// - [`LinalgError::InvalidArgument`] for an empty matrix.
/// - [`LinalgError::NoConvergence`] if Jacobi sweeps do not converge
///   (practically unreachable for finite input).
pub fn svd(a: &Matrix) -> Result<Svd> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument(
            "svd: empty matrix".to_string(),
        ));
    }
    // One-sided Jacobi wants at least as many rows as columns; transpose if
    // needed and swap U/V at the end.
    if m < n {
        let t = svd(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        });
    }

    let mut w = a.clone(); // will converge to U Σ
    let mut v = Matrix::identity(n);
    let eps = 1e-15_f64;
    // Absolute floor for the off-diagonal test: rotations between columns
    // whose correlation is pure roundoff noise relative to the matrix
    // scale (e.g. two numerically-zero columns of a rank-deficient input)
    // must count as converged, or the sweep loop never terminates.
    let frob_sq: f64 = a.data().iter().map(|x| x * x).sum();
    let abs_floor = eps * frob_sq;

    let mut converged = false;
    let mut sweeps = 0;
    while sweeps < MAX_SWEEPS && !converged {
        converged = true;
        for p in 0..n.saturating_sub(1) {
            for q in (p + 1)..n {
                // 2×2 Gram block of columns p, q.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = w.get(i, p);
                    let wq = w.get(i, q);
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() || apq.abs() <= abs_floor {
                    continue;
                }
                converged = false;
                // Jacobi rotation that annihilates the off-diagonal entry.
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // Rotate columns p and q of both W and V.
                for i in 0..m {
                    let wp = w.get(i, p);
                    let wq = w.get(i, q);
                    w.set(i, p, c * wp - s * wq);
                    w.set(i, q, s * wp + c * wq);
                }
                for i in 0..n {
                    let vp = v.get(i, p);
                    let vq = v.get(i, q);
                    v.set(i, p, c * vp - s * vq);
                    v.set(i, q, s * vp + c * vq);
                }
            }
        }
        sweeps += 1;
    }
    if !converged {
        return Err(LinalgError::NoConvergence {
            algorithm: "one-sided jacobi svd",
            iterations: MAX_SWEEPS,
        });
    }

    // Extract singular values (column norms) and normalise U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigmas = vec![0.0; n];
    for (j, sig) in sigmas.iter_mut().enumerate() {
        let mut s = 0.0;
        for i in 0..m {
            s += w.get(i, j) * w.get(i, j);
        }
        *sig = s.sqrt();
    }
    order.sort_by(|&a, &b| sigmas[b].total_cmp(&sigmas[a]));

    let k = n; // thin: k = min(m, n) = n here
    let mut u = Matrix::zeros(m, k);
    let mut v_sorted = Matrix::zeros(n, k);
    let mut singular_values = Vec::with_capacity(k);
    for (dst, &src) in order.iter().enumerate() {
        let s = sigmas[src];
        singular_values.push(s);
        if s > 0.0 {
            for i in 0..m {
                u.set(i, dst, w.get(i, src) / s);
            }
        } else {
            // Zero singular value: leave the U column zero; callers use
            // `rank()` to know how many columns are meaningful.
        }
        for i in 0..n {
            v_sorted.set(i, dst, v.get(i, src));
        }
    }

    Ok(Svd {
        u,
        singular_values,
        v: v_sorted,
    })
}

/// Largest singular value (spectral norm) of `a`.
///
/// # Errors
/// Propagates errors from [`svd`].
pub fn spectral_norm(a: &Matrix) -> Result<f64> {
    Ok(svd(a)?.singular_values.first().copied().unwrap_or(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruction_error(a: &Matrix) -> f64 {
        let d = svd(a).unwrap();
        d.reconstruct().max_abs_diff(a).unwrap()
    }

    #[test]
    fn svd_of_diagonal_matrix() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let d = svd(&a).unwrap();
        assert!((d.singular_values[0] - 3.0).abs() < 1e-12);
        assert!((d.singular_values[1] - 2.0).abs() < 1e-12);
        assert!((d.singular_values[2] - 1.0).abs() < 1e-12);
        assert!(reconstruction_error(&a) < 1e-12);
    }

    #[test]
    fn svd_square_general() {
        let a = Matrix::from_rows(&[
            vec![4.0, 0.0, -2.0],
            vec![1.0, 3.0, 0.5],
            vec![-1.0, 2.0, 2.0],
        ])
        .unwrap();
        let d = svd(&a).unwrap();
        assert!(reconstruction_error(&a) < 1e-10);
        assert!(d.u.is_orthogonal(1e-10));
        assert!(d.v.is_orthogonal(1e-10));
        // Descending order.
        for w in d.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-14);
        }
    }

    #[test]
    fn svd_tall_and_wide() {
        let tall = Matrix::from_fn(7, 3, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        assert!(reconstruction_error(&tall) < 1e-10);
        let d = svd(&tall).unwrap();
        assert_eq!(d.u.shape(), (7, 3));
        assert_eq!(d.v.shape(), (3, 3));

        let wide = tall.transpose();
        assert!(reconstruction_error(&wide) < 1e-10);
        let d = svd(&wide).unwrap();
        assert_eq!(d.u.shape(), (3, 3));
        assert_eq!(d.v.shape(), (7, 3));
    }

    #[test]
    fn svd_rank_deficient() {
        // rank-1 outer product
        let a = Matrix::from_fn(4, 4, |i, j| ((i + 1) * (j + 1)) as f64);
        let d = svd(&a).unwrap();
        assert_eq!(d.rank(1e-10), 1);
        assert!(reconstruction_error(&a) < 1e-10);
        // Trailing singular values are ~0.
        assert!(d.singular_values[1].abs() < 1e-10);
    }

    #[test]
    fn svd_zero_matrix() {
        let a = Matrix::zeros(3, 3);
        let d = svd(&a).unwrap();
        assert_eq!(d.rank(1e-12), 0);
        assert!(d.singular_values.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn svd_rejects_empty() {
        assert!(svd(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn truncation_is_best_low_rank() {
        // A = rank-2 + tiny rank-1 noise; truncating to rank 2 should strip
        // the smallest singular direction.
        let d = svd(&Matrix::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
            vec![0.0, 0.0, 0.01],
        ])
        .unwrap())
        .unwrap();
        let t = d.truncate(2);
        assert!((t.get(0, 0) - 5.0).abs() < 1e-12);
        assert!((t.get(1, 1) - 3.0).abs() < 1e-12);
        assert!(t.get(2, 2).abs() < 1e-12);
        // Truncating beyond k is a full reconstruction.
        let full = d.truncate(10);
        assert!(full.max_abs_diff(&d.reconstruct()).unwrap() < 1e-12);
    }

    #[test]
    fn singular_values_match_eigentheory() {
        // For A = [[3, 0], [4, 5]], AᵀA has eigenvalues 45 and 5,
        // so σ = {√45, √5}.
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 5.0]]).unwrap();
        let d = svd(&a).unwrap();
        assert!((d.singular_values[0] - 45.0_f64.sqrt()).abs() < 1e-10);
        assert!((d.singular_values[1] - 5.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn spectral_norm_of_orthogonal_is_one() {
        let g = crate::givens::Givens::from_angle(0.6).to_matrix(4, 1, 2);
        assert!((spectral_norm(&g).unwrap() - 1.0).abs() < 1e-10);
    }
}
