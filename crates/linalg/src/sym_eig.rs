//! Symmetric eigendecomposition by the classical Jacobi rotation method.
//!
//! Powers the PCA baseline (covariance eigenvectors) and the spectral
//! initialisation of the quantum network. Jacobi is quadratically
//! convergent and delivers small, fully-orthogonal eigenbases — ideal for
//! the 16×16…256×256 matrices that arise here.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

const MAX_SWEEPS: usize = 100;

/// Result of `A = Q Λ Qᵀ` for symmetric `A`, eigenvalues descending.
#[derive(Debug, Clone)]
pub struct SymEig {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Orthogonal eigenvector matrix; column `j` pairs with
    /// `eigenvalues[j]`.
    pub eigenvectors: Matrix,
}

impl SymEig {
    /// Reconstruct `Q Λ Qᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        let n = self.eigenvalues.len();
        let q = &self.eigenvectors;
        let mut ql = q.clone();
        for j in 0..n {
            for i in 0..n {
                let v = ql.get(i, j) * self.eigenvalues[j];
                ql.set(i, j, v);
            }
        }
        ql.matmul(&q.transpose()).expect("square by construction")
    }
}

/// Eigendecomposition of a symmetric matrix.
///
/// The input is symmetrised as `(A + Aᵀ)/2` first, so slightly-asymmetric
/// numerical covariance matrices are accepted gracefully.
///
/// # Errors
/// - [`LinalgError::ShapeMismatch`] for non-square input.
/// - [`LinalgError::InvalidArgument`] for an empty matrix.
/// - [`LinalgError::NoConvergence`] if sweeps are exhausted.
pub fn sym_eig(a: &Matrix) -> Result<SymEig> {
    if !a.is_square() {
        return Err(LinalgError::ShapeMismatch(format!(
            "sym_eig: {}x{} not square",
            a.rows(),
            a.cols()
        )));
    }
    let n = a.rows();
    if n == 0 {
        return Err(LinalgError::InvalidArgument(
            "sym_eig: empty matrix".to_string(),
        ));
    }

    // Symmetrise defensively.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut q = Matrix::identity(n);

    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m.get(i, j) * m.get(i, j);
            }
        }
        s.sqrt()
    };
    let scale = m.frobenius_norm().max(1e-300);

    let mut sweeps = 0;
    while off(&m) > 1e-14 * scale && sweeps < MAX_SWEEPS {
        for p in 0..n - 1 {
            for qq in (p + 1)..n {
                let apq = m.get(p, qq);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(qq, qq);
                let tau = (aqq - app) / (2.0 * apq);
                let t = if tau >= 0.0 {
                    1.0 / (tau + (1.0 + tau * tau).sqrt())
                } else {
                    -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                // M ← Jᵀ M J with J the rotation in the (p,q) plane.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, qq);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, qq, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(qq, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(qq, k, s * mpk + c * mqk);
                }
                // Accumulate eigenvectors: Q ← Q J.
                for k in 0..n {
                    let qkp = q.get(k, p);
                    let qkq = q.get(k, qq);
                    q.set(k, p, c * qkp - s * qkq);
                    q.set(k, qq, s * qkp + c * qkq);
                }
            }
        }
        sweeps += 1;
    }
    if off(&m) > 1e-10 * scale {
        return Err(LinalgError::NoConvergence {
            algorithm: "jacobi sym_eig",
            iterations: MAX_SWEEPS,
        });
    }

    // Sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m.get(i, i)).collect();
    order.sort_by(|&x, &y| diag[y].total_cmp(&diag[x]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for i in 0..n {
            eigenvectors.set(i, dst, q.get(i, src));
        }
    }
    Ok(SymEig {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[1.0, 5.0, 3.0]);
        let e = sym_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 5.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = sym_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 1.0).abs() < 1e-12);
        // Eigenvector for λ=3 is (1,1)/√2 up to sign.
        let v0 = e.eigenvectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_fn(6, 6, |i, j| {
            let x = (i as f64 - j as f64).abs();
            (-x / 2.0).exp() // symmetric kernel matrix
        });
        let e = sym_eig(&a).unwrap();
        assert!(e.eigenvectors.is_orthogonal(1e-10));
        assert!(e.reconstruct().max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn accepts_slightly_asymmetric_input() {
        let mut a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        a.set(0, 1, 1.0 + 1e-13);
        let e = sym_eig(&a).unwrap();
        assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn negative_eigenvalues_sorted_correctly() {
        let a = Matrix::from_diag(&[-4.0, 2.0, -1.0]);
        let e = sym_eig(&a).unwrap();
        assert_eq!(
            e.eigenvalues
                .iter()
                .map(|v| v.round() as i64)
                .collect::<Vec<_>>(),
            vec![2, -1, -4]
        );
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(sym_eig(&Matrix::zeros(2, 3)).is_err());
        assert!(sym_eig(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn gram_matrix_eigenvalues_are_squared_singular_values() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 5.0]]).unwrap();
        let g = a.gram();
        let e = sym_eig(&g).unwrap();
        assert!((e.eigenvalues[0] - 45.0).abs() < 1e-10);
        assert!((e.eigenvalues[1] - 5.0).abs() < 1e-10);
    }
}
