//! Deterministic parallel reduction helpers.
//!
//! Floating-point addition is not associative, so a naive
//! `par_iter().sum()` produces results that depend on rayon's work split.
//! Training runs must be bit-identical across thread counts for the
//! experiments to be reproducible, so reductions here use *fixed* chunk
//! boundaries: items are grouped into chunks of a static size, each chunk
//! is summed sequentially (possibly on different workers), and the per-chunk
//! partials are combined sequentially in index order. The result is
//! identical to a plain sequential fold over the same chunking, regardless
//! of how many threads rayon uses.

use rayon::prelude::*;

/// Chunk size used by the deterministic reductions. Large enough to
/// amortise scheduling, small enough to expose parallelism for the
/// batch sizes used in the experiments.
pub const DET_CHUNK: usize = 64;

/// Deterministic parallel sum of `f(i)` for `i` in `0..n`.
///
/// Equivalent to `(0..n).map(f).sum()` evaluated with fixed chunk
/// boundaries of [`DET_CHUNK`]; the value does not depend on thread count.
pub fn par_sum_indexed<F>(n: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    if n == 0 {
        return 0.0;
    }
    let starts: Vec<usize> = (0..n).step_by(DET_CHUNK).collect();
    let partials: Vec<f64> = starts
        .par_iter()
        .map(|&s| {
            let end = (s + DET_CHUNK).min(n);
            let mut acc = 0.0;
            for i in s..end {
                acc += f(i);
            }
            acc
        })
        .collect();
    partials.iter().sum()
}

/// Deterministic parallel element-wise accumulation of vectors:
/// returns `Σ_{i<n} f(i)` where each `f(i)` is a vector of length `len`.
///
/// Per-chunk partial vectors are produced in parallel, then combined
/// sequentially in chunk order, so the result is thread-count invariant.
///
/// # Panics
/// Panics if any `f(i)` has length different from `len`.
pub fn par_sum_vectors<F>(n: usize, len: usize, f: F) -> Vec<f64>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if n == 0 {
        return vec![0.0; len];
    }
    let starts: Vec<usize> = (0..n).step_by(DET_CHUNK).collect();
    let partials: Vec<Vec<f64>> = starts
        .par_iter()
        .map(|&s| {
            let end = (s + DET_CHUNK).min(n);
            let mut acc = vec![0.0; len];
            for i in s..end {
                f(i, &mut acc);
            }
            acc
        })
        .collect();
    let mut out = vec![0.0; len];
    for p in partials {
        assert_eq!(p.len(), len, "par_sum_vectors: length mismatch");
        for (o, v) in out.iter_mut().zip(&p) {
            *o += v;
        }
    }
    out
}

/// Parallel map with order-preserving collection: `(0..n).map(f)` computed
/// on the rayon pool. Each element is independent, so this is
/// deterministic by construction.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    (0..n).into_par_iter().map(f).collect()
}

/// Parallel map over fixed-size chunks of `0..n`: calls `f(start, end)`
/// once per half-open chunk `[start, end)` of at most `chunk` items (the
/// last chunk may be ragged) and collects the results in chunk order.
///
/// This is the scheduling substrate for panel-batched mesh execution:
/// chunk boundaries depend only on `n` and `chunk`, never on the thread
/// count, so any per-chunk computation that is itself deterministic
/// yields a thread-count-invariant result.
///
/// # Panics
/// Panics when `chunk` is zero.
pub fn par_map_chunked<T, F>(n: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync + Send,
{
    assert!(chunk > 0, "chunk size must be positive");
    let starts: Vec<usize> = (0..n).step_by(chunk).collect();
    starts
        .into_par_iter()
        .map(|s| f(s, (s + chunk).min(n)))
        .collect()
}

/// Like [`par_map_chunked`], but the per-chunk results are written
/// straight into the caller's preallocated `out` slice instead of being
/// collected through per-chunk `Vec`s: `f(start, block)` receives the
/// half-open chunk's start index and the mutable sub-slice
/// `out[start..end]` to fill. Chunk boundaries depend only on
/// `out.len()` and `chunk`, so the result is thread-count invariant
/// whenever `f` is deterministic.
///
/// # Panics
/// Panics when `chunk` is zero.
pub fn par_map_chunked_into<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send,
{
    assert!(chunk > 0, "chunk size must be positive");
    if out.is_empty() {
        return;
    }
    out.par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(i, block)| f(i * chunk, block));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_sum_matches_sequential_chunked_sum() {
        let n = 1000;
        let f = |i: usize| (i as f64).sin() * 1e-3 + (i as f64) * 1e-6;
        let par = par_sum_indexed(n, f);
        // Sequential reference with identical chunking.
        let mut seq = 0.0;
        let mut s = 0;
        while s < n {
            let end = (s + DET_CHUNK).min(n);
            let mut acc = 0.0;
            for i in s..end {
                acc += f(i);
            }
            seq += acc;
            s = end;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn par_sum_empty_is_zero() {
        assert_eq!(par_sum_indexed(0, |_| 1.0), 0.0);
    }

    #[test]
    fn par_sum_is_reproducible_across_invocations() {
        let f = |i: usize| 1.0 / (i as f64 + 1.0);
        let a = par_sum_indexed(5000, f);
        let b = par_sum_indexed(5000, f);
        assert_eq!(a, b);
    }

    #[test]
    fn par_sum_vectors_accumulates_elementwise() {
        let n = 300;
        let len = 4;
        let out = par_sum_vectors(n, len, |i, acc| {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += (i * (j + 1)) as f64;
            }
        });
        let total: f64 = (0..n).map(|i| i as f64).sum();
        for (j, &v) in out.iter().enumerate() {
            assert_eq!(v, total * (j + 1) as f64);
        }
    }

    #[test]
    fn par_sum_vectors_empty() {
        let out = par_sum_vectors(0, 3, |_, _| panic!("not called"));
        assert_eq!(out, vec![0.0; 3]);
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map_indexed(100, |i| i * 2);
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_chunked_covers_ragged_ranges() {
        for (n, chunk) in [(10usize, 3usize), (9, 3), (1, 5), (64, 64), (65, 64)] {
            let spans = par_map_chunked(n, chunk, |s, e| (s, e));
            // Chunks tile 0..n in order, each at most `chunk` long.
            let mut expect_start = 0;
            for &(s, e) in &spans {
                assert_eq!(s, expect_start);
                assert!(e > s && e - s <= chunk);
                expect_start = e;
            }
            assert_eq!(expect_start, n, "n={n} chunk={chunk}");
        }
    }

    #[test]
    fn par_map_chunked_empty_is_empty() {
        assert!(par_map_chunked(0, 8, |s, e| (s, e)).is_empty());
    }

    #[test]
    fn par_map_chunked_into_matches_the_collecting_variant() {
        for (n, chunk) in [(137usize, 16usize), (10, 3), (1, 5), (64, 64), (65, 64)] {
            let collected: Vec<usize> =
                par_map_chunked(n, chunk, |s, e| (s..e).collect::<Vec<_>>())
                    .into_iter()
                    .flatten()
                    .map(|i| i * 3)
                    .collect();
            let mut wrote = vec![0usize; n];
            par_map_chunked_into(&mut wrote, chunk, |start, block| {
                for (off, v) in block.iter_mut().enumerate() {
                    *v = (start + off) * 3;
                }
            });
            assert_eq!(wrote, collected, "n={n} chunk={chunk}");
        }
    }

    #[test]
    fn par_map_chunked_into_empty_is_a_noop() {
        let mut out: Vec<usize> = Vec::new();
        par_map_chunked_into(&mut out, 8, |_, _| panic!("not called"));
    }

    #[test]
    fn par_map_chunked_is_thread_count_invariant() {
        let compute = || par_map_chunked(137, 16, |s, e| (s, e, (s..e).sum::<usize>()));
        let base = compute();
        for threads in [1usize, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            assert_eq!(pool.install(compute), base, "{threads} threads");
        }
    }
}
