//! Error type shared by all linear-algebra routines.

use std::fmt;

/// Errors produced by the dense linear-algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. `A * B` with mismatched inner
    /// dimensions). Carries a human-readable description of the mismatch.
    ShapeMismatch(String),
    /// The matrix is singular (or numerically singular) where an invertible
    /// matrix was required.
    Singular,
    /// An iterative algorithm failed to converge within its sweep budget.
    NoConvergence {
        /// Name of the algorithm that failed.
        algorithm: &'static str,
        /// Number of sweeps/iterations performed before giving up.
        iterations: usize,
    },
    /// An argument was outside its valid domain (e.g. empty matrix where a
    /// non-empty one is required).
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_readable() {
        let e = LinalgError::ShapeMismatch("2x3 * 4x5".into());
        assert!(e.to_string().contains("2x3 * 4x5"));
        let e = LinalgError::NoConvergence {
            algorithm: "jacobi-svd",
            iterations: 60,
        };
        assert!(e.to_string().contains("jacobi-svd"));
        assert!(e.to_string().contains("60"));
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
        let e = LinalgError::InvalidArgument("empty".into());
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::Singular, LinalgError::Singular);
        assert_ne!(
            LinalgError::Singular,
            LinalgError::InvalidArgument("x".into())
        );
    }
}
