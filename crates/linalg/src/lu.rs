//! LU decomposition with partial pivoting.
//!
//! Used for solving the small dense systems that appear in the OMP
//! least-squares refits and for matrix inversion in tests.

// Indexed loops with offset ranges mirror the textbook algorithms here;
// iterator adaptors would obscure the pivoting/reflection structure.
#![allow(clippy::needless_range_loop)]

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::Result;

/// Packed LU factorisation `P A = L U` with partial pivoting.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Combined storage: strictly-lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: row `i` of the factorisation came from
    /// `perm[i]` of the input.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 / -1.0), used for the determinant.
    perm_sign: f64,
}

impl LuDecomposition {
    /// Factorise a square matrix.
    ///
    /// # Errors
    /// - [`LinalgError::ShapeMismatch`] for non-square input.
    /// - [`LinalgError::Singular`] when a pivot collapses to ~0.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::ShapeMismatch(format!(
                "lu: {}x{} not square",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu.get(k, k).abs();
            for i in (k + 1)..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val < 1e-300 {
                return Err(LinalgError::Singular);
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                perm_sign = -perm_sign;
            }
            let pivot = lu.get(k, k);
            for i in (k + 1)..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    let v = lu.get(i, j) - factor * lu.get(k, j);
                    lu.set(i, j, v);
                }
            }
        }
        Ok(LuDecomposition {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solve `A x = b`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "lu solve: system is {n}, rhs has {}",
                b.len()
            )));
        }
        // Forward substitution on permuted rhs: L y = P b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[self.perm[i]];
            for j in 0..i {
                s -= self.lu.get(i, j) * y[j];
            }
            y[i] = s;
        }
        // Back substitution: U x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu.get(i, j) * x[j];
            }
            x[i] = s / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let n = self.lu.rows();
        let mut d = self.perm_sign;
        for i in 0..n {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Inverse of the original matrix (column-by-column solve).
    ///
    /// # Errors
    /// Propagates solve errors.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.set_col(j, &col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot convenience: solve `A x = b`.
///
/// # Errors
/// Propagates factorisation/solve errors.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        // Known solution x = (2, 3, -1) for b = (8, -11, -3).
        let x = solve(&a, &[8.0, -11.0, -3.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(LuDecomposition::new(&a).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_non_square() {
        assert!(LuDecomposition::new(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[vec![3.0, 8.0], vec![4.0, 6.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!((lu.det() + 14.0).abs() < 1e-12);
        // Identity has det 1; permuted identity keeps |det| = 1.
        let id = Matrix::identity(4);
        assert!((LuDecomposition::new(&id).unwrap().det() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![4.0, 7.0, 1.0],
            vec![2.0, 6.0, 0.0],
            vec![1.0, 0.0, 3.0],
        ])
        .unwrap();
        let inv = LuDecomposition::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn solve_rejects_bad_rhs() {
        let a = Matrix::identity(3);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve(&[1.0, 2.0]).is_err());
    }
}
