//! Givens (plane) rotations.
//!
//! A Givens rotation acts on two coordinates `(i, j)` of a vector:
//!
//! ```text
//! | c  -s | | x_i |
//! | s   c | | x_j |
//! ```
//!
//! This is exactly the paper's beam-splitter gate `U(k,k+1)` with phase
//! `α ≡ 0` (reflectivity `cos θ`): a real rotation between two adjacent
//! modes of the interferometer. The same primitive also powers the QR and
//! Jacobi algorithms in this crate.

use crate::matrix::Matrix;

/// A 2×2 plane rotation, stored as the cosine/sine pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Givens {
    /// Cosine component.
    pub c: f64,
    /// Sine component.
    pub s: f64,
}

impl Givens {
    /// Rotation by angle `theta` (counter-clockwise).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Givens { c, s }
    }

    /// Recover the angle in `(-π, π]`.
    #[inline]
    pub fn angle(&self) -> f64 {
        self.s.atan2(self.c)
    }

    /// The rotation that zeroes `b` in the pair `(a, b)`:
    /// `G · (a, b)ᵀ = (r, 0)ᵀ` with `r = hypot(a, b) ≥ 0`.
    ///
    /// Uses the numerically-stable formulation that avoids overflow.
    pub fn zeroing(a: f64, b: f64) -> Self {
        if b == 0.0 {
            let c = if a >= 0.0 { 1.0 } else { -1.0 };
            return Givens { c, s: 0.0 };
        }
        if a == 0.0 {
            return Givens {
                c: 0.0,
                s: if b > 0.0 { -1.0 } else { 1.0 },
            };
        }
        // c = a/r, s = -b/r gives G·(a,b)ᵀ = (+r, 0)ᵀ for every sign of a, b.
        let r = a.hypot(b);
        Givens {
            c: a / r,
            s: -b / r,
        }
    }

    /// Inverse (transpose) rotation.
    #[inline]
    pub fn inverse(&self) -> Self {
        Givens {
            c: self.c,
            s: -self.s,
        }
    }

    /// Apply to a coordinate pair, returning the rotated pair.
    #[inline]
    pub fn apply_pair(&self, x: f64, y: f64) -> (f64, f64) {
        (self.c * x - self.s * y, self.s * x + self.c * y)
    }

    /// Rotate coordinates `i` and `j` of vector `v` in place.
    ///
    /// # Panics
    /// Panics when `i == j` or an index is out of bounds.
    #[inline]
    pub fn apply_vec(&self, v: &mut [f64], i: usize, j: usize) {
        assert_ne!(i, j, "givens: identical indices");
        let (xi, xj) = (v[i], v[j]);
        let (a, b) = self.apply_pair(xi, xj);
        v[i] = a;
        v[j] = b;
    }

    /// Left-multiply matrix `m` by the rotation acting on rows `i`, `j`
    /// (i.e. `m ← G(i,j) · m`).
    pub fn apply_rows(&self, m: &mut Matrix, i: usize, j: usize) {
        assert_ne!(i, j, "givens: identical rows");
        for k in 0..m.cols() {
            let (a, b) = self.apply_pair(m.get(i, k), m.get(j, k));
            m.set(i, k, a);
            m.set(j, k, b);
        }
    }

    /// Right-multiply matrix `m` by the rotation acting on columns `i`, `j`
    /// (i.e. `m ← m · G(i,j)ᵀ` in the row-rotation convention, which rotates
    /// the column pair the same way `apply_pair` rotates coordinates).
    pub fn apply_cols(&self, m: &mut Matrix, i: usize, j: usize) {
        assert_ne!(i, j, "givens: identical columns");
        for k in 0..m.rows() {
            let (a, b) = self.apply_pair(m.get(k, i), m.get(k, j));
            m.set(k, i, a);
            m.set(k, j, b);
        }
    }

    /// Dense `n × n` matrix embedding of the rotation on coordinates `(i, j)`.
    pub fn to_matrix(&self, n: usize, i: usize, j: usize) -> Matrix {
        let mut m = Matrix::identity(n);
        m.set(i, i, self.c);
        m.set(i, j, -self.s);
        m.set(j, i, self.s);
        m.set(j, j, self.c);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-14;

    #[test]
    fn from_angle_roundtrip() {
        for &t in &[0.0, 0.3, -1.2, std::f64::consts::FRAC_PI_2] {
            let g = Givens::from_angle(t);
            assert!((g.angle() - t).abs() < TOL);
            assert!((g.c * g.c + g.s * g.s - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn zeroing_annihilates_second_component() {
        for &(a, b) in &[
            (3.0, 4.0),
            (-3.0, 4.0),
            (3.0, -4.0),
            (-3.0, -4.0),
            (0.0, 5.0),
            (5.0, 0.0),
            (-5.0, 0.0),
            (1e-300, 1e-300),
        ] {
            let g = Givens::zeroing(a, b);
            let (r, z) = g.apply_pair(a, b);
            assert!(z.abs() <= 1e-12 * (1.0 + r.abs()), "z={z} for ({a},{b})");
            assert!(r >= -TOL, "r should be non-negative, got {r}");
            assert!((r - a.hypot(b)).abs() <= 1e-12 * (1.0 + r.abs()));
        }
    }

    #[test]
    fn zeroing_is_orthogonal() {
        let g = Givens::zeroing(1.0, 2.0);
        assert!((g.c * g.c + g.s * g.s - 1.0).abs() < TOL);
    }

    #[test]
    fn inverse_undoes_rotation() {
        let g = Givens::from_angle(0.7);
        let (x, y) = g.apply_pair(1.0, 2.0);
        let (x2, y2) = g.inverse().apply_pair(x, y);
        assert!((x2 - 1.0).abs() < TOL && (y2 - 2.0).abs() < TOL);
    }

    #[test]
    fn apply_vec_preserves_norm() {
        let g = Givens::from_angle(1.1);
        let mut v = vec![1.0, -2.0, 3.0, 0.5];
        let n0 = crate::vector::norm2(&v);
        g.apply_vec(&mut v, 1, 3);
        assert!((crate::vector::norm2(&v) - n0).abs() < TOL);
        // Untouched coordinates stay put.
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "identical indices")]
    fn apply_vec_rejects_equal_indices() {
        Givens::from_angle(0.1).apply_vec(&mut [1.0, 2.0], 0, 0);
    }

    #[test]
    fn row_and_col_application_match_dense_embedding() {
        let g = Givens::from_angle(0.4);
        let m0 = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);

        let mut mr = m0.clone();
        g.apply_rows(&mut mr, 1, 2);
        let dense = g.to_matrix(4, 1, 2);
        let expect = dense.matmul(&m0).unwrap();
        assert!(mr.max_abs_diff(&expect).unwrap() < TOL);

        let mut mc = m0.clone();
        g.apply_cols(&mut mc, 0, 3);
        let dense = g.to_matrix(4, 0, 3);
        let expect = m0.matmul(&dense.transpose()).unwrap();
        assert!(mc.max_abs_diff(&expect).unwrap() < TOL);
    }

    #[test]
    fn dense_embedding_is_orthogonal() {
        let g = Givens::from_angle(-0.9);
        let m = g.to_matrix(5, 2, 4);
        assert!(m.is_orthogonal(TOL));
    }
}
