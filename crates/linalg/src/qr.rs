//! Householder QR decomposition.
//!
//! Used for least-squares solves in the MOD dictionary update, for
//! generating Haar-random orthogonal matrices, and as a building block in
//! tests that need orthonormal bases.

// Indexed loops with offset ranges mirror the textbook algorithms here;
// iterator adaptors would obscure the pivoting/reflection structure.
#![allow(clippy::needless_range_loop)]

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector;
use crate::Result;

/// Result of a full QR decomposition `A = Q R`, with `Q` an `m × m`
/// orthogonal matrix and `R` an `m × n` upper-triangular matrix.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthogonal factor (`m × m`).
    pub q: Matrix,
    /// Upper-triangular factor (`m × n`).
    pub r: Matrix,
}

/// Compute the full QR decomposition of `a` by Householder reflections.
///
/// # Errors
/// Returns [`LinalgError::InvalidArgument`] for an empty matrix.
pub fn qr(a: &Matrix) -> Result<QrDecomposition> {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidArgument("qr: empty matrix".to_string()));
    }
    let mut r = a.clone();
    let mut q = Matrix::identity(m);
    let steps = n.min(m.saturating_sub(1));
    let mut v = vec![0.0; m];

    for k in 0..steps {
        // Build the Householder vector for column k, rows k..m.
        let mut norm_x = 0.0;
        for i in k..m {
            norm_x += r.get(i, k) * r.get(i, k);
        }
        let norm_x = norm_x.sqrt();
        if norm_x == 0.0 {
            continue;
        }
        let x0 = r.get(k, k);
        let alpha = if x0 >= 0.0 { -norm_x } else { norm_x };
        for i in k..m {
            v[i] = r.get(i, k);
        }
        v[k] -= alpha;
        let vnorm_sq = vector::norm2_sq(&v[k..m]);
        if vnorm_sq == 0.0 {
            continue;
        }
        let beta = 2.0 / vnorm_sq;

        // R ← (I − β v vᵀ) R
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i] * r.get(i, j);
            }
            let f = beta * dot;
            for i in k..m {
                let val = r.get(i, j) - f * v[i];
                r.set(i, j, val);
            }
        }
        // Q ← Q (I − β v vᵀ)
        for i in 0..m {
            let mut dot = 0.0;
            for j in k..m {
                dot += q.get(i, j) * v[j];
            }
            let f = beta * dot;
            for j in k..m {
                let val = q.get(i, j) - f * v[j];
                q.set(i, j, val);
            }
        }
        // Clean the explicitly-zeroed part of the column.
        r.set(k, k, alpha);
        for i in (k + 1)..m {
            r.set(i, k, 0.0);
        }
    }
    Ok(QrDecomposition { q, r })
}

/// Thin QR: returns `(Q₁, R₁)` with `Q₁` of shape `m × min(m,n)` having
/// orthonormal columns and `R₁` upper-triangular `min(m,n) × n`.
///
/// # Errors
/// Propagates errors from [`qr`].
pub fn qr_thin(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let (m, n) = a.shape();
    let k = m.min(n);
    let QrDecomposition { q, r } = qr(a)?;
    Ok((q.submatrix(0, m, 0, k), r.submatrix(0, k, 0, n)))
}

/// Solve the upper-triangular system `R x = b` by back substitution.
///
/// # Errors
/// Returns [`LinalgError::Singular`] when a diagonal entry is (numerically)
/// zero, and [`LinalgError::ShapeMismatch`] for inconsistent sizes.
pub fn solve_upper_triangular(r: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = r.cols();
    if r.rows() < n || b.len() < n {
        return Err(LinalgError::ShapeMismatch(format!(
            "solve_upper_triangular: R is {}x{}, b has {}",
            r.rows(),
            r.cols(),
            b.len()
        )));
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = b[i];
        for j in (i + 1)..n {
            s -= r.get(i, j) * x[j];
        }
        let d = r.get(i, i);
        if d.abs() < 1e-300 {
            return Err(LinalgError::Singular);
        }
        x[i] = s / d;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &Matrix, b: &Matrix, tol: f64) {
        assert!(
            a.max_abs_diff(b).unwrap() < tol,
            "matrices differ by {:?}",
            a.max_abs_diff(b)
        );
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 3.0],
            vec![1.0, 0.0, 1.0],
            vec![4.0, 2.0, -2.0],
        ])
        .unwrap();
        let QrDecomposition { q, r } = qr(&a).unwrap();
        assert!(q.is_orthogonal(1e-12));
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
        // R upper-triangular.
        for i in 0..3 {
            for j in 0..i {
                assert!(r.get(i, j).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_tall_matrix() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 + (i as f64) * 0.3);
        let QrDecomposition { q, r } = qr(&a).unwrap();
        assert!(q.is_orthogonal(1e-12));
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
    }

    #[test]
    fn qr_wide_matrix() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64 - j as f64) * 1.5 + 1.0);
        let QrDecomposition { q, r } = qr(&a).unwrap();
        assert!(q.is_orthogonal(1e-12));
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Column 2 = 2 * column 0.
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![2.0, 1.0, 4.0],
            vec![3.0, 0.0, 6.0],
        ])
        .unwrap();
        let QrDecomposition { q, r } = qr(&a).unwrap();
        assert_close(&q.matmul(&r).unwrap(), &a, 1e-12);
        // The trailing diagonal entry must be ~0 (rank 2).
        assert!(r.get(2, 2).abs() < 1e-12);
    }

    #[test]
    fn qr_rejects_empty() {
        assert!(qr(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn thin_qr_shapes() {
        let a = Matrix::from_fn(6, 2, |i, j| (i + j) as f64 + 1.0);
        let (q1, r1) = qr_thin(&a).unwrap();
        assert_eq!(q1.shape(), (6, 2));
        assert_eq!(r1.shape(), (2, 2));
        assert!(q1.is_orthogonal(1e-12));
        assert_close(&q1.matmul(&r1).unwrap(), &a, 1e-12);
    }

    #[test]
    fn back_substitution_solves() {
        let r = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]).unwrap();
        let x = solve_upper_triangular(&r, &[5.0, 6.0]).unwrap();
        assert!((x[1] - 2.0).abs() < 1e-14);
        assert!((x[0] - 1.5).abs() < 1e-14);
    }

    #[test]
    fn back_substitution_detects_singularity() {
        let r = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(
            solve_upper_triangular(&r, &[1.0, 1.0]),
            Err(LinalgError::Singular)
        );
    }
}
