//! Seeded random matrices and vectors.
//!
//! All randomness in the workspace flows through explicit `u64` seeds so
//! every experiment is exactly reproducible. Gaussian variates come from a
//! hand-rolled Box–Muller transform (the `rand_distr` crate is outside the
//! allowed dependency set).

use crate::matrix::Matrix;
use crate::qr::qr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draw a standard-normal variate via Box–Muller.
#[inline]
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // Map the half-open [0,1) sample away from 0 so ln() stays finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Vector of iid standard normals.
pub fn gaussian_vec(len: usize, rng: &mut impl Rng) -> Vec<f64> {
    (0..len).map(|_| gaussian(rng)).collect()
}

/// Matrix of iid standard normals.
pub fn gaussian_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_vec(rows, cols, gaussian_vec(rows * cols, rng))
        .expect("length matches by construction")
}

/// Matrix of iid uniform variates on `[lo, hi)`.
pub fn uniform_matrix(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut impl Rng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| lo + (hi - lo) * rng.random::<f64>())
            .collect(),
    )
    .expect("length matches by construction")
}

/// Haar-distributed random orthogonal matrix, generated as the Q factor of
/// a Gaussian matrix with the sign convention fixed so the distribution is
/// exactly Haar (Mezzadri, 2007: multiply each column by sign(R_ii)).
pub fn haar_orthogonal(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = gaussian_matrix(n, n, &mut rng);
    let d = qr(&g).expect("n>0 gaussian matrix");
    let mut q = d.q;
    for j in 0..n {
        if d.r.get(j, j) < 0.0 {
            for i in 0..n {
                let v = -q.get(i, j);
                q.set(i, j, v);
            }
        }
    }
    q
}

/// Seeded RNG helper so callers never construct `StdRng` directly.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = rng_from_seed(42);
        let n = 20_000;
        let xs = gaussian_vec(n, &mut rng);
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = haar_orthogonal(8, 7);
        let b = haar_orthogonal(8, 7);
        assert_eq!(a.max_abs_diff(&b), Some(0.0));
        let c = haar_orthogonal(8, 8);
        assert!(a.max_abs_diff(&c).unwrap() > 1e-3);
    }

    #[test]
    fn haar_matrices_are_orthogonal() {
        for seed in 0..5 {
            let q = haar_orthogonal(6, seed);
            assert!(q.is_orthogonal(1e-12), "seed {seed}");
        }
    }

    #[test]
    fn uniform_matrix_respects_bounds() {
        let mut rng = rng_from_seed(3);
        let m = uniform_matrix(10, 10, -2.0, 5.0, &mut rng);
        assert!(m.data().iter().all(|&v| (-2.0..5.0).contains(&v)));
    }

    #[test]
    fn gaussian_matrix_shape() {
        let mut rng = rng_from_seed(1);
        let m = gaussian_matrix(3, 4, &mut rng);
        assert_eq!(m.shape(), (3, 4));
    }
}
