//! Mode-major panel storage for batched mesh execution.
//!
//! A [`Panel`] holds a batch of amplitude vectors as the columns of a
//! `dim × width` matrix stored **mode-major**: all `width` lanes of mode
//! `m` are contiguous (`data[m·width + lane]`). A beam-splitter gate on
//! modes `(k, k+1)` then touches exactly two contiguous rows, so one
//! trigonometric evaluation sweeps the whole batch with a unit-stride,
//! auto-vectorizable inner loop — the storage layout behind
//! `qn-backend`'s `PanelBackend`.
//!
//! Panels are a pure data-layout change: extracting lane `l` after any
//! sequence of row operations yields bit-identical values to running the
//! same operations on lane `l`'s vector alone, provided the per-row
//! arithmetic is expressed identically (no reassociation, no FMA
//! contraction). The mesh kernels in `qn-photonic` and the conformance
//! suite in `tests/codec_properties.rs` hold that line.

/// A `dim × width` batch of real amplitude vectors, mode-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Panel {
    dim: usize,
    width: usize,
    /// `data[m * width + lane]` is mode `m` of lane `lane`.
    data: Vec<f64>,
}

impl Panel {
    /// All-zero panel of `width` lanes on `dim` modes.
    ///
    /// # Panics
    /// Panics when `dim` or `width` is zero.
    pub fn zeros(dim: usize, width: usize) -> Self {
        assert!(dim > 0, "panel needs at least one mode");
        assert!(width > 0, "panel needs at least one lane");
        Panel {
            dim,
            width,
            data: vec![0.0; dim * width],
        }
    }

    /// Pack a batch of equal-length vectors into the panel's lanes
    /// (vector `i` becomes lane `i`).
    ///
    /// # Panics
    /// Panics when `columns` is empty or the lengths disagree.
    pub fn from_columns(columns: &[Vec<f64>]) -> Self {
        assert!(!columns.is_empty(), "panel needs at least one lane");
        let dim = columns[0].len();
        let mut panel = Panel::zeros(dim, columns.len());
        for (lane, col) in columns.iter().enumerate() {
            panel.set_column(lane, col);
        }
        panel
    }

    /// Number of modes (rows).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of lanes (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// One amplitude.
    ///
    /// # Panics
    /// Panics out of range.
    pub fn get(&self, mode: usize, lane: usize) -> f64 {
        assert!(mode < self.dim && lane < self.width, "panel index");
        self.data[mode * self.width + lane]
    }

    /// Borrow the `width` lanes of one mode.
    ///
    /// # Panics
    /// Panics out of range.
    pub fn row(&self, mode: usize) -> &[f64] {
        assert!(mode < self.dim, "panel row index");
        &self.data[mode * self.width..(mode + 1) * self.width]
    }

    /// Mutably borrow the adjacent rows `mode` and `mode + 1` — the two
    /// rows a beam-splitter on modes `(k, k+1)` rotates.
    ///
    /// # Panics
    /// Panics when `mode + 1 ≥ dim`.
    pub fn row_pair_mut(&mut self, mode: usize) -> (&mut [f64], &mut [f64]) {
        assert!(mode + 1 < self.dim, "panel row pair index");
        let (head, tail) = self.data.split_at_mut((mode + 1) * self.width);
        (&mut head[mode * self.width..], &mut tail[..self.width])
    }

    /// Copy vector `col` into lane `lane`.
    ///
    /// # Panics
    /// Panics on lane or length mismatch.
    pub fn set_column(&mut self, lane: usize, col: &[f64]) {
        assert!(lane < self.width, "panel lane index");
        assert_eq!(col.len(), self.dim, "panel column length mismatch");
        for (m, &v) in col.iter().enumerate() {
            self.data[m * self.width + lane] = v;
        }
    }

    /// Extract lane `lane` as a fresh vector.
    ///
    /// # Panics
    /// Panics when `lane ≥ width`.
    pub fn column(&self, lane: usize) -> Vec<f64> {
        assert!(lane < self.width, "panel lane index");
        (0..self.dim)
            .map(|m| self.data[m * self.width + lane])
            .collect()
    }

    /// Unpack every lane back into vectors, in lane order.
    pub fn into_columns(self) -> Vec<Vec<f64>> {
        (0..self.width).map(|lane| self.column(lane)).collect()
    }

    /// Copy every lane into the caller's preallocated vectors
    /// (`out[lane]` receives lane `lane`) — the allocation-free
    /// counterpart of [`Panel::into_columns`].
    ///
    /// # Panics
    /// Panics when `out` has fewer than `width` vectors or any target
    /// vector's length differs from `dim`.
    pub fn write_columns_into(&self, out: &mut [Vec<f64>]) {
        assert!(out.len() >= self.width, "panel output batch too short");
        for (lane, col) in out.iter_mut().take(self.width).enumerate() {
            assert_eq!(col.len(), self.dim, "panel column length mismatch");
            for (m, v) in col.iter_mut().enumerate() {
                *v = self.data[m * self.width + lane];
            }
        }
    }
}

/// Width of the explicit lane blocks used by the blocked rotation
/// kernels — eight `f64`s, one 512-bit vector register (or a pair of
/// 256-bit ones; narrower ISAs split the block for free).
pub const LANE_BLOCK: usize = 8;

/// Forward beam-splitter rotation over two mode rows in explicit
/// [`LANE_BLOCK`]-wide blocks: `a' = c·a − s·b`, `b' = s·a + c·b` per
/// lane, written as four independent mul/add pairs per block so the
/// compiler can keep whole blocks in vector registers. The remainder
/// lanes use the identical expressions, so every lane is bit-identical
/// to the scalar rotation.
///
/// # Panics
/// Panics when the rows disagree on length.
#[inline]
pub fn rotate_lanes_blocked(row_a: &mut [f64], row_b: &mut [f64], s: f64, c: f64) {
    assert_eq!(row_a.len(), row_b.len(), "row length mismatch");
    let mut chunks_a = row_a.chunks_exact_mut(LANE_BLOCK);
    let mut chunks_b = row_b.chunks_exact_mut(LANE_BLOCK);
    for (blk_a, blk_b) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let mut xs = [0.0f64; LANE_BLOCK];
        let mut ys = [0.0f64; LANE_BLOCK];
        xs.copy_from_slice(blk_a);
        ys.copy_from_slice(blk_b);
        for l in 0..LANE_BLOCK {
            blk_a[l] = c * xs[l] - s * ys[l];
            blk_b[l] = s * xs[l] + c * ys[l];
        }
    }
    for (a, b) in chunks_a
        .into_remainder()
        .iter_mut()
        .zip(chunks_b.into_remainder().iter_mut())
    {
        let x = *a;
        let y = *b;
        *a = c * x - s * y;
        *b = s * x + c * y;
    }
}

/// Inverse beam-splitter rotation in [`LANE_BLOCK`]-wide blocks:
/// `a' = c·a + s·b`, `b' = c·b − s·a` per lane — the blocked
/// counterpart of the scalar inverse gate; see
/// [`rotate_lanes_blocked`].
///
/// # Panics
/// Panics when the rows disagree on length.
#[inline]
pub fn rotate_lanes_blocked_inverse(row_a: &mut [f64], row_b: &mut [f64], s: f64, c: f64) {
    assert_eq!(row_a.len(), row_b.len(), "row length mismatch");
    let mut chunks_a = row_a.chunks_exact_mut(LANE_BLOCK);
    let mut chunks_b = row_b.chunks_exact_mut(LANE_BLOCK);
    for (blk_a, blk_b) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let mut xs = [0.0f64; LANE_BLOCK];
        let mut ys = [0.0f64; LANE_BLOCK];
        xs.copy_from_slice(blk_a);
        ys.copy_from_slice(blk_b);
        for l in 0..LANE_BLOCK {
            blk_a[l] = c * xs[l] + s * ys[l];
            blk_b[l] = c * ys[l] - s * xs[l];
        }
    }
    for (a, b) in chunks_a
        .into_remainder()
        .iter_mut()
        .zip(chunks_b.into_remainder().iter_mut())
    {
        let x = *a;
        let y = *b;
        *a = c * x + s * y;
        *b = c * y - s * x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrips() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let panel = Panel::from_columns(&cols);
        assert_eq!(panel.dim(), 3);
        assert_eq!(panel.width(), 2);
        assert_eq!(panel.column(0), cols[0]);
        assert_eq!(panel.column(1), cols[1]);
        assert_eq!(panel.into_columns(), cols);
    }

    #[test]
    fn storage_is_mode_major() {
        let panel = Panel::from_columns(&[vec![1.0, 3.0], vec![2.0, 4.0]]);
        assert_eq!(panel.row(0), &[1.0, 2.0]);
        assert_eq!(panel.row(1), &[3.0, 4.0]);
        assert_eq!(panel.get(1, 0), 3.0);
    }

    #[test]
    fn row_pair_mut_spans_adjacent_modes() {
        let mut panel = Panel::from_columns(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        {
            let (a, b) = panel.row_pair_mut(1);
            assert_eq!(a, &[2.0, 5.0]);
            assert_eq!(b, &[3.0, 6.0]);
            a[0] = -2.0;
            b[1] = -6.0;
        }
        assert_eq!(panel.column(0), vec![1.0, -2.0, 3.0]);
        assert_eq!(panel.column(1), vec![4.0, 5.0, -6.0]);
    }

    #[test]
    fn single_lane_panel_is_a_vector() {
        let v = vec![0.1, -0.2, 0.3, 0.4];
        let panel = Panel::from_columns(std::slice::from_ref(&v));
        assert_eq!(panel.width(), 1);
        assert_eq!(panel.column(0), v);
    }

    #[test]
    #[should_panic(expected = "panel column length mismatch")]
    fn mismatched_columns_are_rejected() {
        Panel::from_columns(&[vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_panel_is_rejected() {
        Panel::from_columns(&[]);
    }
}
