//! Row-major dense matrix.
//!
//! `Matrix` is the workhorse container of the workspace. Storage is a flat
//! `Vec<f64>` in row-major order, so a row is a contiguous slice — the
//! layout the matvec/matmul kernels and rayon's row-parallel splits want.

use crate::error::LinalgError;
use crate::vector;
use crate::Result;
use rayon::prelude::*;

/// Minimum number of f64 multiply-adds before a product is parallelised.
/// Below this, rayon's scheduling overhead exceeds the work.
const PAR_FLOP_THRESHOLD: usize = 64 * 64 * 64;

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix filled with a constant.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from an explicit row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "from_vec: {}x{} needs {} elements, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from nested row slices.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] for ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(LinalgError::ShapeMismatch(
                "from_rows: ragged rows".to_string(),
            ));
        }
        let data = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Build element-wise from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the flat row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix, returning the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a fresh vector (columns are strided).
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Overwrite column `j` from a slice.
    ///
    /// # Panics
    /// Panics if `v.len() != rows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "set_col: length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self.set(i, j, x);
        }
    }

    /// Overwrite row `i` from a slice.
    ///
    /// # Panics
    /// Panics if `v.len() != cols`.
    pub fn set_row(&mut self, i: usize, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "set_row: length mismatch");
        self.row_mut(i).copy_from_slice(v);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec: {}x{} * len-{}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|i| vector::dot(self.row(i), x))
            .collect())
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != rows`.
    #[allow(clippy::needless_range_loop)] // row-index drives two arrays
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec_t: ({}x{})^T * len-{}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            vector::axpy(x[i], self.row(i), &mut y);
        }
        Ok(y)
    }

    /// Matrix product `A B`. Parallelises over rows of `A` once the flop
    /// count crosses [`PAR_FLOP_THRESHOLD`]; each output row is computed by
    /// a single worker, so results are identical to the sequential path.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        if flops >= PAR_FLOP_THRESHOLD {
            let cols = self.cols;
            out.data
                .par_chunks_mut(other.cols)
                .enumerate()
                .for_each(|(i, out_row)| {
                    let a_row = &self.data[i * cols..(i + 1) * cols];
                    mat_row_kernel(a_row, other, out_row);
                });
        } else {
            for i in 0..self.rows {
                let (a_row, out_row) = (
                    &self.data[i * self.cols..(i + 1) * self.cols],
                    &mut out.data[i * other.cols..(i + 1) * other.cols],
                );
                mat_row_kernel(a_row, other, out_row);
            }
        }
        Ok(out)
    }

    /// `Aᵀ A` (Gram matrix), exploiting symmetry.
    #[allow(clippy::needless_range_loop)] // symmetric fill uses b ≥ a
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for i in 0..self.rows {
            let r = self.row(i);
            for a in 0..n {
                let ra = r[a];
                if ra == 0.0 {
                    continue;
                }
                for b in a..n {
                    g.data[a * n + b] += ra * r[b];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                g.data[a * n + b] = g.data[b * n + a];
            }
        }
        g
    }

    /// Element-wise sum `A + B`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Element-wise difference `A − B`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    fn zip_with(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64, op: &str) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch(format!(
                "{op}: {}x{} vs {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Scale every element by `alpha` in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Scaled copy `alpha · A`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(alpha);
        m
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Largest absolute element difference `‖A − B‖_max`, or `None` when
    /// shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> Option<f64> {
        if self.shape() != other.shape() {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(&other.data)
                .fold(0.0_f64, |m, (&a, &b)| m.max((a - b).abs())),
        )
    }

    /// True when `‖AᵀA − I‖_max ≤ tol` (columns orthonormal; for square
    /// matrices this is the orthogonality test).
    pub fn is_orthogonal(&self, tol: f64) -> bool {
        let g = self.gram();
        let id = Matrix::identity(self.cols);
        g.max_abs_diff(&id).is_some_and(|d| d <= tol)
    }

    /// Extract the contiguous submatrix `[r0, r1) × [c0, c1)`.
    ///
    /// # Panics
    /// Panics when the ranges exceed the matrix bounds.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        assert!(r0 <= r1 && r1 <= self.rows, "submatrix: bad row range");
        assert!(c0 <= c1 && c1 <= self.cols, "submatrix: bad col range");
        Matrix::from_fn(r1 - r0, c1 - c0, |i, j| self.get(r0 + i, c0 + j))
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self.get(i, i)).sum()
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

/// One row of a matmul: `out_row = a_row · B`, traversing `B` row-by-row so
/// the access pattern stays cache-friendly for row-major storage.
#[inline]
fn mat_row_kernel(a_row: &[f64], b: &Matrix, out_row: &mut [f64]) {
    out_row.fill(0.0);
    for (k, &a) in a_row.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        vector::axpy(a, b.row(k), out_row);
    }
}

impl std::fmt::Display for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:>12.6}", self.get(i, j))?;
                if j + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn constructors_and_accessors() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.data().iter().all(|&v| v == 0.0));

        let id = Matrix::identity(3);
        assert_eq!(id.get(0, 0), 1.0);
        assert_eq!(id.get(0, 1), 0.0);
        assert_eq!(id.trace(), 3.0);

        let f = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(f.get(1, 0), 10.0);

        let d = Matrix::from_diag(&[1.0, 2.0]);
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);

        let c = Matrix::filled(2, 2, 7.0);
        assert!(c.data().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn from_vec_shape_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        let empty = Matrix::from_rows(&[]).unwrap();
        assert_eq!(empty.shape(), (0, 0));
    }

    #[test]
    fn rows_cols_and_setters() {
        let mut m = small();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        m.set_col(1, &[9.0, 8.0]);
        assert_eq!(m.col(1), vec![9.0, 8.0]);
        m.set_row(0, &[5.0, 6.0]);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        m.set(0, 0, -1.0);
        assert_eq!(m.get(0, 0), -1.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_matvec_t() {
        let m = small();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_t(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn matmul_small() {
        let a = small();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
        assert!(a.matmul(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = small();
        let id = Matrix::identity(2);
        assert_eq!(a.matmul(&id).unwrap(), a);
        assert_eq!(id.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_parallel_matches_sequential() {
        // Big enough to cross the parallel threshold.
        let n = 96;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 17) as f64 - 8.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 5) % 11) as f64 - 5.0);
        let c = a.matmul(&b).unwrap();
        // Sequential reference.
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let aik = a.get(i, k);
                for j in 0..n {
                    r.data[i * n + j] += aik * b.get(k, j);
                }
            }
        }
        assert_eq!(c.max_abs_diff(&r), Some(0.0));
    }

    #[test]
    fn gram_matches_explicit_ata() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let g = a.gram();
        let ata = a.transpose().matmul(&a).unwrap();
        assert!(g.max_abs_diff(&ata).unwrap() < 1e-12);
    }

    #[test]
    fn add_sub_scale() {
        let a = small();
        let s = a.add(&a).unwrap();
        assert_eq!(s.get(1, 1), 8.0);
        let d = s.sub(&a).unwrap();
        assert_eq!(d, a);
        assert_eq!(a.scaled(2.0), s);
        assert!(a.add(&Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn norms_and_diffs() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(a.frobenius_norm(), 5.0);
        let b = Matrix::zeros(2, 2);
        assert_eq!(a.max_abs_diff(&b), Some(4.0));
        assert_eq!(a.max_abs_diff(&Matrix::zeros(1, 1)), None);
    }

    #[test]
    fn orthogonality_check() {
        assert!(Matrix::identity(4).is_orthogonal(1e-14));
        let rot = Matrix::from_rows(&[vec![0.6, -0.8], vec![0.8, 0.6]]).unwrap();
        assert!(rot.is_orthogonal(1e-14));
        assert!(!small().is_orthogonal(1e-6));
    }

    #[test]
    fn submatrix_and_swap_rows() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.get(0, 0), 6.0);
        assert_eq!(s.get(1, 1), 11.0);

        let mut m2 = small();
        m2.swap_rows(0, 1);
        assert_eq!(m2.row(0), &[3.0, 4.0]);
        m2.swap_rows(1, 1); // no-op path
        assert_eq!(m2.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn display_renders_all_elements() {
        let s = format!("{}", small());
        assert!(s.contains("1.0"));
        assert!(s.contains("4.0"));
        assert_eq!(s.lines().count(), 2);
    }
}
