//! Dense linear-algebra substrate for the quantum-network reproduction.
//!
//! The paper's baselines (classical sparse coding with an SVD-based
//! dictionary, PCA compression) and several extensions (spectral
//! initialisation via Clements decomposition) need a small but complete
//! dense linear-algebra stack. Everything here is hand-rolled: the target
//! regime is small-to-medium matrices (N ≤ a few thousand), where robust
//! textbook algorithms (Householder QR, one-sided Jacobi SVD, symmetric
//! Jacobi eigensolver, partially-pivoted LU) are accurate and fast enough.
//!
//! Parallelism follows the rayon idiom: matrix products parallelise over
//! row blocks, and reductions use fixed chunk boundaries so results are
//! deterministic regardless of thread count.

pub mod error;
pub mod givens;
pub mod lstsq;
pub mod lu;
pub mod matrix;
pub mod panel;
pub mod parallel;
pub mod qr;
pub mod random;
pub mod svd;
pub mod sym_eig;
pub mod vector;

pub use error::LinalgError;
pub use givens::Givens;
pub use lu::LuDecomposition;
pub use matrix::Matrix;
pub use panel::Panel;
pub use qr::QrDecomposition;
pub use svd::Svd;
pub use sym_eig::SymEig;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Default absolute tolerance used by convergence tests in this crate.
pub const DEFAULT_TOL: f64 = 1e-12;
