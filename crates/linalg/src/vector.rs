//! Free functions on `&[f64]` slices.
//!
//! These are the innermost kernels of the whole workspace: every forward
//! pass through a quantum network and every sparse-coding iteration bottoms
//! out in dot products, axpys and norms. They are written allocation-free
//! and simple enough for the compiler to auto-vectorise.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`, computed with a scaling pass to avoid overflow
/// for very large entries (the classic hypot-style rescaling).
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max.is_finite() { 0.0 } else { f64::INFINITY };
    }
    let sum: f64 = x.iter().map(|&v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// Squared Euclidean norm `‖x‖₂²` (no rescaling; used on unit-scale data).
#[inline]
pub fn norm2_sq(x: &[f64]) -> f64 {
    x.iter().map(|&v| v * v).sum()
}

/// 1-norm `‖x‖₁`.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Infinity norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
}

/// `y ← y + alpha * x` (the BLAS axpy).
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Normalise `x` to unit Euclidean norm in place and return the original
/// norm. A zero vector is left unchanged and `0.0` is returned.
#[inline]
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 0.0 {
        let inv = 1.0 / n;
        scale(inv, x);
    }
    n
}

/// Element-wise difference `x - y` into a fresh vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Euclidean distance `‖x − y‖₂`.
#[inline]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt()
}

/// Mean squared error between two vectors.
#[inline]
pub fn mse(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "mse: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / x.len() as f64
}

/// Index and value of the element with the largest absolute value.
/// Returns `None` for an empty slice.
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    x.iter()
        .enumerate()
        .map(|(i, &v)| (i, v))
        .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
}

/// True when `‖x − y‖∞ ≤ tol`.
pub fn approx_eq(x: &[f64], y: &[f64], tol: f64) -> bool {
    x.len() == y.len() && x.iter().zip(y).all(|(a, b)| (a - b).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm1(&[-1.0, 2.0, -3.0]), 6.0);
        assert_eq!(norm_inf(&[-1.0, 2.0, -3.0]), 3.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_does_not_overflow_for_huge_entries() {
        let big = f64::MAX / 4.0;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        let expected = big * 2.0_f64.sqrt();
        assert!((n - expected).abs() / expected < 1e-14);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
    }

    #[test]
    fn normalize_returns_norm_and_unit_result() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-15);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn distance_and_mse() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn argmax_abs_finds_largest_magnitude() {
        assert_eq!(argmax_abs(&[1.0, -5.0, 3.0]), Some((1, -5.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn approx_eq_tolerances() {
        assert!(approx_eq(&[1.0, 2.0], &[1.0 + 1e-9, 2.0], 1e-8));
        assert!(!approx_eq(&[1.0], &[1.1], 1e-8));
        assert!(!approx_eq(&[1.0], &[1.0, 2.0], 1.0));
    }
}
