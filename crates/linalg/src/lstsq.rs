//! Least-squares solvers.
//!
//! `min_x ‖A x − b‖₂` via QR for well-conditioned systems (the OMP refit
//! step) and via SVD with a rank cutoff for possibly-degenerate systems
//! (the MOD dictionary update).

use crate::matrix::Matrix;
use crate::qr::{qr_thin, solve_upper_triangular};
use crate::svd::svd;
use crate::Result;

/// Least squares via thin QR. Requires `A` to have full column rank; use
/// [`lstsq_svd`] otherwise.
///
/// # Errors
/// Propagates QR errors and [`crate::LinalgError::Singular`] from the
/// triangular solve when `A` is column-rank deficient.
pub fn lstsq_qr(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let (q1, r1) = qr_thin(a)?;
    // x solves R₁ x = Q₁ᵀ b.
    let qtb = q1.matvec_t(b)?;
    solve_upper_triangular(&r1, &qtb)
}

/// Minimum-norm least squares via the SVD pseudo-inverse, discarding
/// singular values below `rcond * σ_max`.
///
/// # Errors
/// Propagates SVD errors.
pub fn lstsq_svd(a: &Matrix, b: &[f64], rcond: f64) -> Result<Vec<f64>> {
    let d = svd(a)?;
    let smax = d.singular_values.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    let utb = d.u.matvec_t(b)?;
    let mut coeffs = vec![0.0; d.singular_values.len()];
    for (i, (&s, &c)) in d.singular_values.iter().zip(&utb).enumerate() {
        if s > cutoff && s > 0.0 {
            coeffs[i] = c / s;
        }
    }
    d.v.matvec(&coeffs)
}

/// Solve `min_X ‖A X − B‖_F` column-by-column with the SVD pseudo-inverse.
/// This is exactly the MOD dictionary-update subproblem transposed.
///
/// # Errors
/// Propagates SVD errors.
pub fn lstsq_svd_matrix(a: &Matrix, b: &Matrix, rcond: f64) -> Result<Matrix> {
    let d = svd(a)?;
    let smax = d.singular_values.first().copied().unwrap_or(0.0);
    let cutoff = rcond * smax;
    let k = d.singular_values.len();
    // Pseudo-inverse applied to each column of B: X = V Σ⁺ Uᵀ B.
    let utb = d.u.transpose().matmul(b)?;
    let mut scaled = utb;
    for i in 0..k {
        let s = d.singular_values[i];
        let f = if s > cutoff && s > 0.0 { 1.0 / s } else { 0.0 };
        for j in 0..scaled.cols() {
            let v = scaled.get(i, j) * f;
            scaled.set(i, j, v);
        }
    }
    d.v.matmul(&scaled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_least_squares_overdetermined() {
        // Fit y = 2x + 1 through noisy-free points: exact solution expected.
        let a = Matrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0],
        ])
        .unwrap();
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = lstsq_qr(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares_residual_is_orthogonal() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let b = [0.0, 1.0, 5.0];
        let x = lstsq_qr(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        // Residual ⟂ column space.
        let atr = a.matvec_t(&r).unwrap();
        assert!(atr.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn svd_least_squares_matches_qr_when_full_rank() {
        let a = Matrix::from_rows(&[vec![2.0, 0.5], vec![-1.0, 1.0], vec![0.3, 3.0]]).unwrap();
        let b = [1.0, 0.0, -2.0];
        let x1 = lstsq_qr(&a, &b).unwrap();
        let x2 = lstsq_svd(&a, &b, 1e-12).unwrap();
        assert!((x1[0] - x2[0]).abs() < 1e-10);
        assert!((x1[1] - x2[1]).abs() < 1e-10);
    }

    #[test]
    fn svd_least_squares_handles_rank_deficiency() {
        // Columns are parallel; QR path would hit a singular triangle.
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = lstsq_svd(&a, &b, 1e-10).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-10);
        }
        // Minimum-norm solution: x ∝ (1, 2).
        assert!((x[1] - 2.0 * x[0]).abs() < 1e-10);
    }

    #[test]
    fn matrix_least_squares_solves_mod_update() {
        // Find X minimising ‖A X − B‖_F; with invertible A it's exact.
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![2.0, 4.0], vec![8.0, 12.0]]).unwrap();
        let x = lstsq_svd_matrix(&a, &b, 1e-12).unwrap();
        let expected = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 3.0]]).unwrap();
        assert!(x.max_abs_diff(&expected).unwrap() < 1e-10);
    }
}
