//! The explicit-SIMD backend: pruned gate tables + lane-blocked
//! rotations.
//!
//! Same panel decomposition as [`crate::PanelBackend`], but the mesh
//! pass runs [`qn_photonic::MeshTables`]' blocked kernels: identity
//! gates (`θ = ±0.0`, roughly half the gate slots of an ASAP-packed
//! spectral model) are skipped outright, and the surviving rotations
//! sweep the panel lanes in explicit `f64x4`-style blocks
//! (`qn_linalg::panel::rotate_lanes_blocked`) — four independent
//! mul/add pairs per block that the compiler keeps in vector
//! registers, no nightly features.
//!
//! # Declared equivalence: [`crate::Equivalence::ZeroSignOnly`]
//!
//! Skipping an identity gate preserves an amplitude's stored bits where
//! the reference computes `1·a − 0·b` / `0·a + 1·b`, which can rewrite
//! the *sign of an IEEE zero*. Every output therefore compares equal to
//! the scalar reference under `f64 ==` (absolute difference exactly
//! `0.0`), but is not guaranteed bit-identical on zero amplitudes.
//! Downstream this is invisible: quantization, tile scaling and pixel
//! hashing are all sign-of-zero insensitive, so `.qnc` containers and
//! decoded pixels stay byte-identical — the conformance and golden
//! suites run this backend against the same value-equality assertions
//! as every other, and the epsilon-budget test in `crate` pins the
//! "only zero signs" claim bit-by-bit.

use crate::panel::{run_chunked, DEFAULT_PANEL_WIDTH};
use crate::tables::cached_tables;
use crate::MeshBackend;
use qn_photonic::Mesh;

/// Lane-blocked, identity-pruned panel execution over cached gate
/// tables — see the module docs for the kernel and its declared
/// equivalence contract.
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend {
    width: usize,
}

impl SimdBackend {
    /// SIMD backend with an explicit panel width (lanes per panel).
    ///
    /// # Panics
    /// Panics when `width` is zero — rejected at construction, like
    /// [`crate::PanelBackend::with_width`].
    pub const fn with_width(width: usize) -> Self {
        assert!(width > 0, "panel width must be positive");
        SimdBackend { width }
    }

    /// Lanes per panel.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Default for SimdBackend {
    fn default() -> Self {
        SimdBackend::with_width(DEFAULT_PANEL_WIDTH)
    }
}

impl MeshBackend for SimdBackend {
    fn name(&self) -> &'static str {
        "simd"
    }

    fn forward_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let tables = cached_tables(mesh);
        run_chunked(self.width, batch, |panel| {
            tables.forward_panel_blocked(panel)
        })
    }

    fn inverse_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let tables = cached_tables(mesh);
        run_chunked(self.width, batch, |panel| {
            tables.inverse_panel_blocked(panel)
        })
    }
}
