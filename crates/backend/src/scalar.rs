//! The scalar reference backend: one vector at a time.

use crate::tables::cached_tables;
use crate::MeshBackend;
use qn_linalg::parallel::par_map_indexed;
use qn_photonic::Mesh;

/// Per-vector dispatch with the exact semantics of
/// `Mesh::forward_real` — the reference every other backend must
/// reproduce. The per-gate pass runs through the shared gate-table
/// cache (cached `sin_cos` values are bit-identical to recomputation,
/// so outputs are unchanged down to the last bit). The parallel
/// flavour fans vectors across threads; each vector's pass is
/// untouched, so serial and parallel outputs are identical.
#[derive(Debug, Clone, Copy)]
pub struct ScalarBackend {
    parallel: bool,
}

impl ScalarBackend {
    /// Scalar dispatch on the calling thread.
    pub const fn serial() -> Self {
        ScalarBackend { parallel: false }
    }

    /// Scalar dispatch fanned across threads (one vector per task).
    pub const fn parallel() -> Self {
        ScalarBackend { parallel: true }
    }

    fn map<F>(&self, n: usize, f: F) -> Vec<Vec<f64>>
    where
        F: Fn(usize) -> Vec<f64> + Sync + Send,
    {
        if self.parallel {
            par_map_indexed(n, f)
        } else {
            (0..n).map(f).collect()
        }
    }
}

impl MeshBackend for ScalarBackend {
    fn name(&self) -> &'static str {
        if self.parallel {
            "scalar-parallel"
        } else {
            "scalar"
        }
    }

    fn forward_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let tables = cached_tables(mesh);
        self.map(batch.len(), |i| {
            let mut v = batch[i].clone();
            tables.forward_amps(&mut v);
            v
        })
    }

    fn inverse_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let tables = cached_tables(mesh);
        self.map(batch.len(), |i| {
            let mut v = batch[i].clone();
            tables.inverse_amps(&mut v);
            v
        })
    }
}
