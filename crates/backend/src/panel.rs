//! The batched panel backend: sweep layers across many tiles at once.

use crate::MeshBackend;
use qn_linalg::parallel::par_map_chunked;
use qn_linalg::Panel;
use qn_photonic::Mesh;

/// Default lanes per panel. At the paper's N = 16 state dimension one
/// panel is 16 × 64 × 8 B = 8 KiB — two rows (1 KiB) live comfortably
/// in L1 while a gate sweeps them — and a 256×256 image (4096 tiles)
/// still splits into 64 chunks for thread-level parallelism.
pub const DEFAULT_PANEL_WIDTH: usize = 64;

/// Packs up to `width` vectors into a mode-major [`Panel`] and applies
/// each beam-splitter layer across the whole panel: one `sin_cos` per
/// gate instead of one per gate *per tile*, with unit-stride inner
/// loops over the lanes. Chunks of `width` lanes are processed in
/// parallel via `qn_linalg::parallel::par_map_chunked`; chunk
/// boundaries depend only on the batch length, so results are
/// thread-count invariant — and each lane's arithmetic is exactly the
/// scalar kernel's, so outputs are bit-identical to [`crate::ScalarBackend`].
#[derive(Debug, Clone, Copy)]
pub struct PanelBackend {
    width: usize,
}

impl PanelBackend {
    /// Panel backend with an explicit panel width (lanes per panel).
    ///
    /// Width 0 is rejected at use time (the first batch panics); use
    /// widths ≥ 1. [`DEFAULT_PANEL_WIDTH`] suits the codec's tile sizes.
    pub const fn with_width(width: usize) -> Self {
        PanelBackend { width }
    }

    /// Lanes per panel.
    pub fn width(&self) -> usize {
        self.width
    }

    fn run<F>(&self, batch: &[Vec<f64>], apply: F) -> Vec<Vec<f64>>
    where
        F: Fn(&mut Panel) + Sync,
    {
        if batch.is_empty() {
            return Vec::new();
        }
        let chunks = par_map_chunked(batch.len(), self.width, |start, end| {
            let mut panel = Panel::from_columns(&batch[start..end]);
            apply(&mut panel);
            panel.into_columns()
        });
        chunks.into_iter().flatten().collect()
    }
}

impl Default for PanelBackend {
    fn default() -> Self {
        PanelBackend::with_width(DEFAULT_PANEL_WIDTH)
    }
}

impl MeshBackend for PanelBackend {
    fn name(&self) -> &'static str {
        "panel"
    }

    fn forward_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.run(batch, |panel| mesh.forward_real_panel(panel))
    }

    fn inverse_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.run(batch, |panel| mesh.inverse_real_panel(panel))
    }
}
