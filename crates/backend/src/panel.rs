//! The batched panel backend: sweep layers across many tiles at once.

use crate::tables::cached_tables;
use crate::MeshBackend;
use qn_linalg::parallel::par_map_chunked_into;
use qn_linalg::Panel;
use qn_photonic::Mesh;

/// Default lanes per panel. At the paper's N = 16 state dimension one
/// panel is 16 × 64 × 8 B = 8 KiB — two rows (1 KiB) live comfortably
/// in L1 while a gate sweeps them — and a 256×256 image (4096 tiles)
/// still splits into 64 chunks for thread-level parallelism.
pub const DEFAULT_PANEL_WIDTH: usize = 64;

/// Split `batch` into `width`-lane panels, apply a mesh pass to each,
/// and write the results straight into a preallocated output batch —
/// one allocation per output column, no per-chunk collection vectors.
/// Chunk boundaries depend only on the batch length and `width`, so
/// results are thread-count invariant whenever `apply` is.
pub(crate) fn run_chunked<F>(width: usize, batch: &[Vec<f64>], apply: F) -> Vec<Vec<f64>>
where
    F: Fn(&mut Panel) + Sync,
{
    if batch.is_empty() {
        return Vec::new();
    }
    let mut out: Vec<Vec<f64>> = batch.iter().map(|v| vec![0.0; v.len()]).collect();
    par_map_chunked_into(&mut out, width, |start, block| {
        let mut panel = Panel::from_columns(&batch[start..start + block.len()]);
        apply(&mut panel);
        panel.write_columns_into(block);
    });
    out
}

/// Packs up to `width` vectors into a mode-major [`Panel`] and applies
/// each beam-splitter layer across the whole panel through the shared
/// gate-table cache ([`crate::tables::cached_tables`]): zero `sin_cos`
/// in the hot loop, with unit-stride inner loops over the lanes. Chunks
/// of `width` lanes are processed in parallel with thread-count
/// invariant boundaries, and each lane's arithmetic is exactly the
/// scalar kernel's, so outputs are bit-identical to
/// [`crate::ScalarBackend`].
#[derive(Debug, Clone, Copy)]
pub struct PanelBackend {
    width: usize,
}

impl PanelBackend {
    /// Panel backend with an explicit panel width (lanes per panel).
    /// [`DEFAULT_PANEL_WIDTH`] suits the codec's tile sizes.
    ///
    /// # Panics
    /// Panics when `width` is zero — rejected here, at construction,
    /// not on the first batch.
    pub const fn with_width(width: usize) -> Self {
        assert!(width > 0, "panel width must be positive");
        PanelBackend { width }
    }

    /// Lanes per panel.
    pub fn width(&self) -> usize {
        self.width
    }
}

impl Default for PanelBackend {
    fn default() -> Self {
        PanelBackend::with_width(DEFAULT_PANEL_WIDTH)
    }
}

impl MeshBackend for PanelBackend {
    fn name(&self) -> &'static str {
        "panel"
    }

    fn forward_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let tables = cached_tables(mesh);
        run_chunked(self.width, batch, |panel| tables.forward_panel(panel))
    }

    fn inverse_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>> {
        if batch.is_empty() {
            return Vec::new();
        }
        let tables = cached_tables(mesh);
        run_chunked(self.width, batch, |panel| tables.inverse_panel(panel))
    }
}
