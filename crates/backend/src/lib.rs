//! Execution backends for interferometer-mesh passes.
//!
//! The codec, the trainer and every related mesh workload ultimately
//! reduce to the same primitive: apply a [`Mesh`] (or its inverse) to a
//! batch of real amplitude vectors. This crate abstracts that primitive
//! behind the [`MeshBackend`] trait so the *schedule* — one vector at a
//! time, fanned across threads, or packed into cache-friendly panels —
//! can vary while the *numbers* cannot:
//!
//! - [`ScalarBackend`] — the reference: per-vector dispatch through
//!   `Mesh::forward_real`, serial or thread-parallel;
//! - [`PanelBackend`] — packs vectors into mode-major
//!   [`qn_linalg::Panel`]s and sweeps each beam-splitter layer across
//!   the whole panel, chunked across threads.
//!
//! [`BackendKind`] is the value-level selector (CLI flags, codec
//! options) that maps onto shared backend instances. On top of the
//! trait, [`MeshBatcher`] coalesces passes submitted by independent
//! callers (e.g. concurrent server requests) into single backend
//! batches — sound precisely because backends are bit-identical per
//! vector regardless of batch composition.
//!
//! # Why bit-compatibility is part of the trait contract
//!
//! `.qnc` containers record quantized mesh outputs; a decoder that
//! produced even 1-ulp-different amplitudes could round a quantizer
//! level differently and emit different pixels — a silent format
//! incompatibility. Backends therefore must be bitwise-interchangeable,
//! and the cross-backend conformance suite plus the golden bitstream
//! vectors pin that promise in CI.

mod batch;
mod panel;
mod scalar;

pub use batch::{BatchHandle, BatchKey, BatcherMetrics, FlushCause, MeshBatcher, MeshSource};
pub use panel::{PanelBackend, DEFAULT_PANEL_WIDTH};
pub use scalar::ScalarBackend;

use qn_photonic::Mesh;
use std::fmt;
use std::str::FromStr;

/// Executes mesh forward/inverse passes over batches of amplitude
/// vectors.
///
/// # Equivalence contract
///
/// For every implementation, every mesh `U`, and every batch:
///
/// - `forward_batch(U, batch)[i]` is **bit-identical** to
///   `U.forward_real_copy(&batch[i])`, and
/// - `inverse_batch(U, batch)[i]` is **bit-identical** to applying
///   `U.inverse_real` to a copy of `batch[i]`,
///
/// for all `i`, in input order, regardless of thread count, batch size
/// or internal blocking. "Bit-identical" means the same `f64` bit
/// patterns: implementations must keep the per-gate arithmetic exactly
/// as written in `MeshLayer::apply_real` (`c·a − s·b`, `s·a + c·b`,
/// one `sin_cos` per gate angle) — no reassociation, no FMA
/// contraction, no extended-precision accumulation. This is what makes
/// `.qnc` containers decode byte-identically under every backend; the
/// conformance suite (`tests/codec_properties.rs`) and the golden
/// vectors (`tests/golden_vectors.rs`) enforce it.
///
/// # Panics
///
/// Implementations panic (like the scalar reference) when a batch
/// vector's length differs from `mesh.dim()` or the mesh has complex
/// gates; malformed *file* input must be rejected by the codec layer
/// before reaching a backend.
pub trait MeshBackend: fmt::Debug + Sync {
    /// Stable human-readable name (used in logs and benchmarks).
    fn name(&self) -> &'static str;

    /// Apply `mesh` forward to every vector, returning outputs in input
    /// order.
    fn forward_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>>;

    /// Apply the exact inverse `U⁻¹` to every vector, returning outputs
    /// in input order.
    fn inverse_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>>;
}

/// Value-level backend selector for CLI flags and codec options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Per-vector dispatch on the calling thread.
    Scalar,
    /// Per-vector dispatch fanned across threads.
    ScalarParallel,
    /// Batched mode-major panels, chunked across threads (default).
    #[default]
    Panel,
}

/// Shared instances behind [`BackendKind::backend`].
static SCALAR: ScalarBackend = ScalarBackend::serial();
static SCALAR_PARALLEL: ScalarBackend = ScalarBackend::parallel();
static PANEL: PanelBackend = PanelBackend::with_width(DEFAULT_PANEL_WIDTH);

impl BackendKind {
    /// Every selectable backend, in documentation order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Scalar,
        BackendKind::ScalarParallel,
        BackendKind::Panel,
    ];

    /// The backend instance this selector names.
    pub fn backend(self) -> &'static dyn MeshBackend {
        match self {
            BackendKind::Scalar => &SCALAR,
            BackendKind::ScalarParallel => &SCALAR_PARALLEL,
            BackendKind::Panel => &PANEL,
        }
    }

    /// Stable name, accepted back by [`BackendKind::from_str`].
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::ScalarParallel => "scalar-parallel",
            BackendKind::Panel => "panel",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" | "serial" => Ok(BackendKind::Scalar),
            "scalar-parallel" | "parallel" => Ok(BackendKind::ScalarParallel),
            "panel" => Ok(BackendKind::Panel),
            other => Err(format!(
                "unknown backend {other:?} (expected scalar, scalar-parallel or panel)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mesh(dim: usize, layers: usize) -> Mesh {
        Mesh::random(dim, layers, &mut StdRng::seed_from_u64(314))
    }

    fn batch(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) as f64 * 0.29).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn every_kind_resolves_and_names_roundtrip() {
        for kind in BackendKind::ALL {
            let backend = kind.backend();
            assert_eq!(backend.name(), kind.name());
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            "serial".parse::<BackendKind>().unwrap(),
            BackendKind::Scalar
        );
        assert_eq!(
            "parallel".parse::<BackendKind>().unwrap(),
            BackendKind::ScalarParallel
        );
        assert!("simd".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Panel);
    }

    #[test]
    fn all_backends_match_the_scalar_reference_bitwise() {
        let m = mesh(10, 3);
        let xs = batch(10, 23); // ragged against every panel width
        let reference: Vec<Vec<f64>> = xs.iter().map(|x| m.forward_real_copy(x)).collect();
        let inverse_reference: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                let mut v = x.clone();
                m.inverse_real(&mut v);
                v
            })
            .collect();
        for kind in BackendKind::ALL {
            let b = kind.backend();
            assert_eq!(b.forward_batch(&m, &xs), reference, "{kind} forward");
            assert_eq!(
                b.inverse_batch(&m, &xs),
                inverse_reference,
                "{kind} inverse"
            );
        }
    }

    #[test]
    fn empty_batches_yield_empty_outputs() {
        let m = mesh(4, 1);
        for kind in BackendKind::ALL {
            assert!(kind.backend().forward_batch(&m, &[]).is_empty());
            assert!(kind.backend().inverse_batch(&m, &[]).is_empty());
        }
    }

    #[test]
    fn panel_widths_including_one_agree_with_scalar() {
        let m = mesh(6, 2);
        let xs = batch(6, 7);
        let reference = BackendKind::Scalar.backend().forward_batch(&m, &xs);
        for width in [1usize, 2, 3, 7, 8, 64] {
            let backend = PanelBackend::with_width(width);
            assert_eq!(backend.forward_batch(&m, &xs), reference, "width {width}");
        }
    }

    #[test]
    fn inverse_of_forward_restores_batch() {
        let m = mesh(8, 3);
        let xs = batch(8, 5);
        for kind in BackendKind::ALL {
            let b = kind.backend();
            let back = b.inverse_batch(&m, &b.forward_batch(&m, &xs));
            for (got, want) in back.iter().zip(&xs) {
                for (a, b) in got.iter().zip(want) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn default_panel_backend_uses_the_documented_width() {
        assert_eq!(PanelBackend::default().width(), DEFAULT_PANEL_WIDTH);
        assert_eq!(PanelBackend::with_width(7).width(), 7);
    }

    #[test]
    fn mismatched_vector_lengths_panic_like_the_scalar_path() {
        let m = mesh(6, 1);
        let bad = vec![vec![0.0; 5]];
        for kind in BackendKind::ALL {
            let result = std::panic::catch_unwind(|| kind.backend().forward_batch(&m, &bad));
            assert!(result.is_err(), "{kind} must reject a length-5 vector");
        }
    }

    #[test]
    fn descending_order_meshes_are_supported() {
        // Reversed meshes flip each layer's cascade direction — the
        // panel sweep must follow the same gate order.
        let m = mesh(9, 2).reversed();
        let xs = batch(9, 13);
        let reference = BackendKind::Scalar.backend().forward_batch(&m, &xs);
        assert_eq!(
            BackendKind::Panel.backend().forward_batch(&m, &xs),
            reference
        );
    }
}
