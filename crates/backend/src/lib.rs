//! Execution backends for interferometer-mesh passes.
//!
//! The codec, the trainer and every related mesh workload ultimately
//! reduce to the same primitive: apply a [`Mesh`] (or its inverse) to a
//! batch of real amplitude vectors. This crate abstracts that primitive
//! behind the [`MeshBackend`] trait so the *schedule* — one vector at a
//! time, fanned across threads, or packed into cache-friendly panels —
//! can vary while the *numbers* cannot:
//!
//! - [`ScalarBackend`] — the reference: per-vector dispatch through
//!   `Mesh::forward_real`, serial or thread-parallel;
//! - [`PanelBackend`] — packs vectors into mode-major
//!   [`qn_linalg::Panel`]s and sweeps each beam-splitter layer across
//!   the whole panel, chunked across threads;
//! - [`SimdBackend`] — panel execution over pruned gate tables with
//!   explicit lane-blocked rotations.
//!
//! All backends share the content-addressed gate-table cache
//! ([`tables::cached_tables`]): per-gate `sin_cos` is evaluated once
//! per model, ever, instead of once per gate per panel per batch.
//!
//! [`BackendKind`] is the value-level selector (CLI flags, codec
//! options) that maps onto shared backend instances. On top of the
//! trait, [`MeshBatcher`] coalesces passes submitted by independent
//! callers (e.g. concurrent server requests) into single backend
//! batches — sound precisely because a backend's per-vector output
//! never depends on batch composition.
//!
//! # Why numeric compatibility is part of the trait contract
//!
//! `.qnc` containers record quantized mesh outputs; a decoder that
//! produced even 1-ulp-different amplitudes could round a quantizer
//! level differently and emit different pixels — a silent format
//! incompatibility. Backends therefore declare an explicit
//! [`Equivalence`] contract against the scalar reference — bit-exact
//! for most, value-equal up to the sign of IEEE zeros for the pruning
//! `simd` backend (a distinction the quantizer provably cannot
//! observe) — and the cross-backend conformance suite plus the golden
//! bitstream vectors pin the resulting byte-compatibility in CI.

mod batch;
mod panel;
mod scalar;
mod simd;
pub mod tables;

pub use batch::{
    BatchHandle, BatchInfo, BatchKey, BatcherMetrics, FlushCause, MeshBatcher, MeshSource,
};
pub use panel::{PanelBackend, DEFAULT_PANEL_WIDTH};
pub use scalar::ScalarBackend;
pub use simd::SimdBackend;
pub use tables::{cached_tables, table_cache_stats, TableCacheStats};

use qn_photonic::Mesh;
use std::fmt;
use std::str::FromStr;

/// Executes mesh forward/inverse passes over batches of amplitude
/// vectors.
///
/// # Equivalence contract
///
/// For every implementation, every mesh `U`, and every batch,
/// `forward_batch(U, batch)[i]` must match `U.forward_real_copy(&batch[i])`
/// (and `inverse_batch` likewise against `U.inverse_real`) for all `i`,
/// in input order, regardless of thread count, batch size or internal
/// blocking — to the precision the backend *declares* via
/// [`BackendKind::equivalence`]:
///
/// - [`Equivalence::BitExact`] (scalar, scalar-parallel, panel): the
///   same `f64` bit patterns. Implementations keep the per-gate
///   arithmetic exactly as written in `MeshLayer::apply_real`
///   (`c·a − s·b`, `s·a + c·b`, `sin_cos`-derived coefficients) — no
///   reassociation, no FMA contraction, no extended-precision
///   accumulation.
/// - [`Equivalence::ZeroSignOnly`] (simd): every output compares equal
///   under `f64 ==` — the absolute difference is exactly `0.0`, a zero
///   tolerance budget — but the sign of an IEEE zero may differ
///   (identity-gate pruning preserves stored `-0.0` bits where the
///   reference's `0·a + 1·b` rewrites them to `+0.0`).
///
/// Either way `.qnc` containers encode and decode byte-identically
/// under every backend: quantization and pixel reconstruction cannot
/// distinguish `-0.0` from `+0.0`. The conformance suite
/// (`tests/codec_properties.rs`), the golden vectors
/// (`tests/golden_vectors.rs`) and the epsilon-budget test below
/// enforce all of this.
///
/// # Panics
///
/// Implementations panic (like the scalar reference) when a batch
/// vector's length differs from `mesh.dim()` or the mesh has complex
/// gates; malformed *file* input must be rejected by the codec layer
/// before reaching a backend.
pub trait MeshBackend: fmt::Debug + Sync {
    /// Stable human-readable name (used in logs and benchmarks).
    fn name(&self) -> &'static str;

    /// Apply `mesh` forward to every vector, returning outputs in input
    /// order.
    fn forward_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>>;

    /// Apply the exact inverse `U⁻¹` to every vector, returning outputs
    /// in input order.
    fn inverse_batch(&self, mesh: &Mesh, batch: &[Vec<f64>]) -> Vec<Vec<f64>>;
}

/// Declared numeric equivalence of a backend against the scalar
/// reference — the precision class the conformance suite holds it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Outputs are bit-identical `f64`s.
    BitExact,
    /// Outputs compare equal under `f64 ==` (absolute difference
    /// exactly `0.0`); only the sign of IEEE zeros may differ.
    ZeroSignOnly,
}

/// Value-level backend selector for CLI flags and codec options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Per-vector dispatch on the calling thread.
    Scalar,
    /// Per-vector dispatch fanned across threads.
    ScalarParallel,
    /// Batched mode-major panels, chunked across threads (default).
    #[default]
    Panel,
    /// Pruned gate tables + explicit lane-blocked rotations.
    Simd,
}

/// Shared instances behind [`BackendKind::backend`].
static SCALAR: ScalarBackend = ScalarBackend::serial();
static SCALAR_PARALLEL: ScalarBackend = ScalarBackend::parallel();
static PANEL: PanelBackend = PanelBackend::with_width(DEFAULT_PANEL_WIDTH);
static SIMD: SimdBackend = SimdBackend::with_width(DEFAULT_PANEL_WIDTH);

impl BackendKind {
    /// Every selectable backend, in documentation order.
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Scalar,
        BackendKind::ScalarParallel,
        BackendKind::Panel,
        BackendKind::Simd,
    ];

    /// The backend instance this selector names.
    pub fn backend(self) -> &'static dyn MeshBackend {
        match self {
            BackendKind::Scalar => &SCALAR,
            BackendKind::ScalarParallel => &SCALAR_PARALLEL,
            BackendKind::Panel => &PANEL,
            BackendKind::Simd => &SIMD,
        }
    }

    /// Stable name, accepted back by [`BackendKind::from_str`].
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::ScalarParallel => "scalar-parallel",
            BackendKind::Panel => "panel",
            BackendKind::Simd => "simd",
        }
    }

    /// The backend's declared equivalence contract against the scalar
    /// reference (see the [`MeshBackend`] rustdoc).
    pub fn equivalence(self) -> Equivalence {
        match self {
            BackendKind::Scalar | BackendKind::ScalarParallel | BackendKind::Panel => {
                Equivalence::BitExact
            }
            BackendKind::Simd => Equivalence::ZeroSignOnly,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" | "serial" => Ok(BackendKind::Scalar),
            "scalar-parallel" | "parallel" => Ok(BackendKind::ScalarParallel),
            "panel" => Ok(BackendKind::Panel),
            "simd" => Ok(BackendKind::Simd),
            other => Err(format!(
                "unknown backend {other:?} (expected scalar, scalar-parallel, panel or simd)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mesh(dim: usize, layers: usize) -> Mesh {
        Mesh::random(dim, layers, &mut StdRng::seed_from_u64(314))
    }

    fn batch(dim: usize, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * dim + j) as f64 * 0.29).sin())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn every_kind_resolves_and_names_roundtrip() {
        for kind in BackendKind::ALL {
            let backend = kind.backend();
            assert_eq!(backend.name(), kind.name());
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            "serial".parse::<BackendKind>().unwrap(),
            BackendKind::Scalar
        );
        assert_eq!(
            "parallel".parse::<BackendKind>().unwrap(),
            BackendKind::ScalarParallel
        );
        assert_eq!("simd".parse::<BackendKind>().unwrap(), BackendKind::Simd);
        assert!("vector".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Panel);
    }

    #[test]
    fn equivalence_contracts_are_declared_per_backend() {
        for kind in BackendKind::ALL {
            let expected = if kind == BackendKind::Simd {
                Equivalence::ZeroSignOnly
            } else {
                Equivalence::BitExact
            };
            assert_eq!(kind.equivalence(), expected, "{kind}");
        }
    }

    #[test]
    fn zero_width_backends_are_rejected_at_construction() {
        assert!(std::panic::catch_unwind(|| PanelBackend::with_width(0)).is_err());
        assert!(std::panic::catch_unwind(|| SimdBackend::with_width(0)).is_err());
    }

    #[test]
    fn simd_widths_including_one_agree_with_scalar() {
        let m = mesh(6, 2);
        let xs = batch(6, 7);
        let reference = BackendKind::Scalar.backend().forward_batch(&m, &xs);
        for width in [1usize, 2, 3, 4, 5, 7, 8, 64] {
            let backend = SimdBackend::with_width(width);
            assert_eq!(backend.forward_batch(&m, &xs), reference, "width {width}");
        }
    }

    #[test]
    fn simd_epsilon_budget_is_exactly_zero_and_divergence_is_zero_signs_only() {
        // The ZeroSignOnly contract, pinned bit-by-bit: on a mesh that
        // mixes identity (θ = 0) and active gates — the shape
        // ASAP-packed spectral models have — every simd output must
        // (a) compare equal to the scalar reference under `==`
        //     (absolute difference exactly 0.0: a zero epsilon budget),
        // (b) differ in bits only where both values are IEEE zeros.
        let mut m = mesh(10, 4);
        let thetas: Vec<f64> = m
            .thetas()
            .iter()
            .enumerate()
            .map(|(i, &t)| if i % 2 == 0 { 0.0 } else { t })
            .collect();
        m.set_thetas(&thetas);
        // Zero amplitudes included so zero-sign handling is exercised.
        let mut xs = batch(10, 23);
        xs[0] = vec![0.0; 10];
        xs[1] = vec![-0.0; 10];
        for m in [m.clone(), m.reversed()] {
            let reference = BackendKind::Scalar.backend().forward_batch(&m, &xs);
            let inv_reference = BackendKind::Scalar.backend().inverse_batch(&m, &xs);
            let simd = BackendKind::Simd.backend();
            for (got, want) in [
                (simd.forward_batch(&m, &xs), reference),
                (simd.inverse_batch(&m, &xs), inv_reference),
            ] {
                for (g, w) in got.iter().zip(&want) {
                    for (a, b) in g.iter().zip(w) {
                        assert!((a - b).abs() == 0.0, "epsilon budget exceeded: {a} vs {b}");
                        if a.to_bits() != b.to_bits() {
                            assert_eq!(*a, 0.0, "non-zero bit divergence: {a} vs {b}");
                            assert_eq!(*b, 0.0, "non-zero bit divergence: {a} vs {b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn all_backends_match_the_scalar_reference_bitwise() {
        let m = mesh(10, 3);
        let xs = batch(10, 23); // ragged against every panel width
        let reference: Vec<Vec<f64>> = xs.iter().map(|x| m.forward_real_copy(x)).collect();
        let inverse_reference: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                let mut v = x.clone();
                m.inverse_real(&mut v);
                v
            })
            .collect();
        for kind in BackendKind::ALL {
            let b = kind.backend();
            assert_eq!(b.forward_batch(&m, &xs), reference, "{kind} forward");
            assert_eq!(
                b.inverse_batch(&m, &xs),
                inverse_reference,
                "{kind} inverse"
            );
        }
    }

    #[test]
    fn empty_batches_yield_empty_outputs() {
        let m = mesh(4, 1);
        for kind in BackendKind::ALL {
            assert!(kind.backend().forward_batch(&m, &[]).is_empty());
            assert!(kind.backend().inverse_batch(&m, &[]).is_empty());
        }
    }

    #[test]
    fn panel_widths_including_one_agree_with_scalar() {
        let m = mesh(6, 2);
        let xs = batch(6, 7);
        let reference = BackendKind::Scalar.backend().forward_batch(&m, &xs);
        for width in [1usize, 2, 3, 7, 8, 64] {
            let backend = PanelBackend::with_width(width);
            assert_eq!(backend.forward_batch(&m, &xs), reference, "width {width}");
        }
    }

    #[test]
    fn inverse_of_forward_restores_batch() {
        let m = mesh(8, 3);
        let xs = batch(8, 5);
        for kind in BackendKind::ALL {
            let b = kind.backend();
            let back = b.inverse_batch(&m, &b.forward_batch(&m, &xs));
            for (got, want) in back.iter().zip(&xs) {
                for (a, b) in got.iter().zip(want) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn default_panel_backend_uses_the_documented_width() {
        assert_eq!(PanelBackend::default().width(), DEFAULT_PANEL_WIDTH);
        assert_eq!(PanelBackend::with_width(7).width(), 7);
    }

    #[test]
    fn mismatched_vector_lengths_panic_like_the_scalar_path() {
        let m = mesh(6, 1);
        let bad = vec![vec![0.0; 5]];
        for kind in BackendKind::ALL {
            let result = std::panic::catch_unwind(|| kind.backend().forward_batch(&m, &bad));
            assert!(result.is_err(), "{kind} must reject a length-5 vector");
        }
    }

    #[test]
    fn descending_order_meshes_are_supported() {
        // Reversed meshes flip each layer's cascade direction — the
        // panel sweep must follow the same gate order.
        let m = mesh(9, 2).reversed();
        let xs = batch(9, 13);
        let reference = BackendKind::Scalar.backend().forward_batch(&m, &xs);
        assert_eq!(
            BackendKind::Panel.backend().forward_batch(&m, &xs),
            reference
        );
    }
}
